//! Checkpoint/restore for the simulation engines, with bit-identical
//! resume.
//!
//! A checkpoint captures the complete state of a run at an outer-loop
//! boundary (no read or locate in flight): the simulation clock, the
//! pending queue, every drive's mounted tape / head position / in-flight
//! service list, the workload factory's stream position, the fault
//! injector's timers and RNG states, the scheduler's private state (the
//! envelope boundaries), the metrics accumulators, and the trace sequence
//! counter. A run resumed from a checkpoint continues the event stream
//! exactly where the interrupted run left off: the resumed trace suffix
//! is byte-identical to the uninterrupted run's, and the final
//! [`crate::MetricsReport`] is exactly equal.
//!
//! ## File format
//!
//! One flat JSON object per line, in the style of the trace schema
//! ([`crate::trace::jsonl`]): integer and string values only, fixed field
//! order, hand-rolled writer and parser (no serialization dependency).
//! Every file starts with a `header` line carrying the schema version and
//! a configuration fingerprint, and ends with an `end` line carrying the
//! number of preceding lines, so truncated files are detected. Large
//! vectors (delay samples, pending requests, service lists) are packed
//! into compact delimiter-separated string fields rather than one line
//! per element.
//!
//! ## Safety of resume
//!
//! Resuming into a *different* configuration would silently produce a run
//! that matches neither the checkpointed nor the new configuration, so
//! [`load`]ed checkpoints carry an FNV-1a fingerprint over the engine
//! kind, catalog contents, timing model, scheduler, workload
//! configuration, fault plan, and drive count; the engines refuse to
//! resume when it does not match ([`SimError::CheckpointConfigMismatch`]).
//! The workload factory is restored by *replaying* its RNG draws rather
//! than serializing RNG internals, and the restored stream position is
//! verified against a recorded stream fingerprint, so a wrong seed is
//! also refused.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use tapesim_layout::{BlockId, Catalog};
use tapesim_model::{
    DriveFaultSnapshot, FaultSnapshot, Micros, SimTime, SlotIndex, TapeFaultSnapshot, TapeId,
    TimingModel,
};
use tapesim_sched::{ScheduledRead, ServiceList, SweepPhase, SweepPlan};
use tapesim_workload::{Request, RequestId};

use crate::error::SimError;
use crate::metrics::MetricsSnapshot;

/// Current checkpoint schema version. Bumped whenever the line grammar or
/// the state captured changes incompatibly. Version 2 added the transient
/// copy-heal state (`heal_rng`, `healing`) to the faults line.
pub const SCHEMA_VERSION: u32 = 2;

/// Which engine wrote a checkpoint. Resuming a checkpoint into a
/// different engine is a configuration mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// [`crate::run_simulation_traced`] and friends.
    Single,
    /// [`crate::run_multi_drive_traced`] and friends.
    Multi,
    /// [`crate::run_with_writeback_traced`] and friends.
    WriteBack,
}

impl EngineKind {
    /// Stable name written into the header line.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Single => "single",
            EngineKind::Multi => "multi",
            EngineKind::WriteBack => "writeback",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "single" => Some(EngineKind::Single),
            "multi" => Some(EngineKind::Multi),
            "writeback" => Some(EngineKind::WriteBack),
            _ => None,
        }
    }
}

/// Checkpoint/resume options threaded through the engine entry points.
/// The default ([`CheckpointOpts::none`]) is completely inert: the
/// engines pay one `Option` check per outer-loop iteration.
#[derive(Debug, Clone, Default)]
pub struct CheckpointOpts {
    write_every: Option<(Micros, PathBuf)>,
    resume: Option<PathBuf>,
}

impl CheckpointOpts {
    /// No checkpointing, no resume (the inert default).
    pub fn none() -> Self {
        CheckpointOpts::default()
    }

    /// Writes a checkpoint to `path` every `every` of simulated time
    /// (atomically: written to a temp file and renamed, so the file is
    /// always a complete checkpoint even if the process dies mid-write).
    pub fn checkpoint_every(every: Micros, path: impl Into<PathBuf>) -> Self {
        CheckpointOpts {
            write_every: Some((every, path.into())),
            resume: None,
        }
    }

    /// Resumes a run from the checkpoint at `path`.
    pub fn resume_from(path: impl Into<PathBuf>) -> Self {
        CheckpointOpts {
            write_every: None,
            resume: Some(path.into()),
        }
    }

    /// Adds periodic checkpointing to an existing option set (so a
    /// resumed run can keep checkpointing).
    #[must_use]
    pub fn and_checkpoint_every(mut self, every: Micros, path: impl Into<PathBuf>) -> Self {
        self.write_every = Some((every, path.into()));
        self
    }

    /// The periodic-write configuration, if any.
    pub(crate) fn write_every(&self) -> Option<(Micros, &Path)> {
        self.write_every.as_ref().map(|(e, p)| (*e, p.as_path()))
    }

    /// The resume source, if any.
    pub(crate) fn resume(&self) -> Option<&Path> {
        self.resume.as_deref()
    }

    /// Rejects option sets the engines cannot honor. A zero periodic
    /// interval has no next-checkpoint instant (the schedule would never
    /// advance past the clock), so the engines refuse it up front
    /// instead of spinning in the schedule computation.
    pub(crate) fn validate(&self) -> Result<(), SimError> {
        match self.write_every {
            Some((every, _)) if every == Micros::ZERO => Err(SimError::InvalidConfig(
                "checkpoint interval must be positive",
            )),
            _ => Ok(()),
        }
    }
}

/// First whole multiple of `every` strictly after `now`: the periodic
/// checkpoint schedule shared by the three engines, both for the initial
/// instant (including when resume lands the clock mid-schedule) and for
/// advancing past the instant just written.
///
/// `every` is rejected as [`SimError::InvalidConfig`] by
/// [`CheckpointOpts::validate`] when zero; the `max(1)` below keeps this
/// helper total regardless.
pub(crate) fn next_checkpoint_after(now: SimTime, every: Micros) -> SimTime {
    let every_us = every.as_micros().max(1);
    let intervals_elapsed = now.as_micros() / every_us;
    SimTime::from_micros((intervals_elapsed + 1).saturating_mul(every_us))
}

/// One drive's state at the checkpoint boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriveCheckpoint {
    /// Mounted tape, if any.
    pub mounted: Option<TapeId>,
    /// Head position.
    pub head: SlotIndex,
    /// In-flight sweep plan (multi-drive engine only; the single-drive
    /// engines checkpoint between sweeps).
    pub plan: Option<SweepPlan>,
    /// Phase of the last traced read in the current sweep.
    pub cur_phase: Option<SweepPhase>,
    /// When the drive next acts, in microseconds.
    pub free_at_us: u64,
    /// Whether `free_at` was set by the idle branch.
    pub idle: bool,
}

/// Multi-drive-only state: the not-yet-visible arrival queue and the
/// shared robot arm.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MultiCheckpoint {
    /// Arrival-queue tiebreak counter.
    pub seq: u64,
    /// When the robot arm is next free, in microseconds. For fleet
    /// topologies this is robot 0's clock (kept for format stability).
    pub robot_free_us: u64,
    /// Per-robot free instants for fleet topologies (all robots, in
    /// global robot order). Empty for the legacy single-arm shape, whose
    /// only arm is `robot_free_us` — keeping legacy checkpoint bytes
    /// identical to the pre-fleet format.
    pub robots_free_us: Vec<u64>,
    /// Queued arrivals: `(at_us, seq, request)`.
    pub queued: Vec<(u64, u64, Request)>,
}

/// Write-back-only state: the delta buffer, the write stream's RNG, and
/// the destage counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WriteBackCheckpoint {
    /// Write-stream SplitMix64 state.
    pub wrng_state: u64,
    /// Write-stream destination counter.
    pub wrng_counter: u64,
    /// Next write arrival, in microseconds (absent when the stream ended).
    pub next_write_us: Option<u64>,
    /// Buffered deltas: `(created_us, dest_tape)`.
    pub buffer: Vec<(u64, u16)>,
    /// Delta blocks written to tape so far.
    pub deltas_flushed: u64,
    /// Largest buffer observed so far.
    pub peak_buffer: u64,
    /// Accumulated on-disk delta age, in microseconds.
    pub total_age_us: u64,
    /// Piggybacked flushes so far.
    pub piggyback_flushes: u64,
    /// Dedicated idle-time flushes so far.
    pub idle_flushes: u64,
}

/// Complete engine state at one outer-loop boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Which engine wrote this checkpoint.
    pub engine: EngineKind,
    /// Configuration fingerprint ([`run_fingerprint`]).
    pub fingerprint: u64,
    /// Simulation clock at the boundary, in microseconds.
    pub now_us: u64,
    /// Sequence number the next trace record will carry.
    pub trace_seq: u64,
    /// Next open-queue arrival instant, in microseconds.
    pub next_arrival_us: Option<u64>,
    /// Requests made by the workload factory so far.
    pub factory_makes: u64,
    /// Interarrival gaps drawn by the workload factory so far.
    pub factory_gaps: u64,
    /// Stream fingerprint of the factory at the boundary.
    pub factory_fp: u64,
    /// The pending list, in queue order.
    pub pending: Vec<Request>,
    /// Metrics accumulators.
    pub metrics: MetricsSnapshot,
    /// Requests disrupted by a fault, keyed by request id, with the tape
    /// the fault hit.
    pub faulted: Vec<(u64, u16)>,
    /// Scheduler-private state (envelope boundaries), if the scheduler
    /// carries any.
    pub sched_state: Option<String>,
    /// Fault-injector state, present when fault injection is active.
    pub faults: Option<FaultSnapshot>,
    /// Per-drive state (exactly one entry for the single-drive engines).
    pub drives: Vec<DriveCheckpoint>,
    /// Multi-drive extras.
    pub multi: Option<MultiCheckpoint>,
    /// Write-back extras.
    pub writeback: Option<WriteBackCheckpoint>,
}

// ---------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// FNV-1a fingerprint of everything a resumed run must share with the
/// checkpointed one: engine kind, catalog contents (placement and
/// replicas included, via per-tape slot maps), timing model, scheduler
/// name, workload configuration, simulation horizon, fault plan and
/// seed, drive count, and any engine-specific extra (the write-back
/// config). The workload *seed* is deliberately not part of the
/// fingerprint — a wrong seed is caught by the factory stream
/// fingerprint instead.
#[allow(clippy::too_many_arguments)]
pub fn run_fingerprint(
    engine: EngineKind,
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler_name: &str,
    factory_tag: &str,
    cfg_tag: &str,
    faults_tag: &str,
    fault_seed: u64,
    drives: u16,
    extra: &str,
) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, engine.name().as_bytes());
    for tape in catalog.geometry().tape_ids() {
        for (slot, block) in catalog.tape_contents(tape) {
            fnv1a(&mut h, &tape.0.to_le_bytes());
            fnv1a(&mut h, &slot.0.to_le_bytes());
            fnv1a(&mut h, &block.0.to_le_bytes());
        }
    }
    fnv1a(&mut h, &catalog.block_size().bytes().to_le_bytes());
    fnv1a(&mut h, format!("{timing:?}").as_bytes());
    fnv1a(&mut h, scheduler_name.as_bytes());
    fnv1a(&mut h, factory_tag.as_bytes());
    fnv1a(&mut h, cfg_tag.as_bytes());
    fnv1a(&mut h, faults_tag.as_bytes());
    fnv1a(&mut h, &fault_seed.to_le_bytes());
    fnv1a(&mut h, &drives.to_le_bytes());
    fnv1a(&mut h, extra.as_bytes());
    h
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Encodes requests as `id.block.arrival_us`, `;`-separated.
fn encode_requests(reqs: &[Request]) -> String {
    let mut s = String::with_capacity(reqs.len() * 12);
    for (i, r) in reqs.iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        let _ = write!(s, "{}.{}.{}", r.id.0, r.block.0, r.arrival.as_micros());
    }
    s
}

fn decode_request(s: &str) -> Result<Request, String> {
    let mut it = s.split('.');
    let id = parse_u64(it.next().unwrap_or(""), "request id")?;
    let block = parse_u64(it.next().unwrap_or(""), "request block")?;
    let arrival = parse_u64(it.next().unwrap_or(""), "request arrival")?;
    if it.next().is_some() {
        return Err(format!("trailing fields in request '{s}'"));
    }
    Ok(Request {
        id: RequestId(id),
        block: BlockId(u32::try_from(block).map_err(|_| "request block out of range")?),
        arrival: SimTime::from_micros(arrival),
    })
}

fn decode_requests(s: &str) -> Result<Vec<Request>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(';').map(decode_request).collect()
}

/// Encodes service-list stops as `slot:req,req|slot:req`, with requests
/// in the `encode_requests` grammar (`,`-separated within a stop).
fn encode_stops<'a>(stops: impl Iterator<Item = &'a ScheduledRead>) -> String {
    let mut s = String::new();
    for (i, stop) in stops.enumerate() {
        if i > 0 {
            s.push('|');
        }
        let _ = write!(s, "{}:", stop.slot.0);
        for (j, r) in stop.requests.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}.{}.{}", r.id.0, r.block.0, r.arrival.as_micros());
        }
    }
    s
}

fn decode_stops(s: &str) -> Result<Vec<ScheduledRead>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split('|')
        .map(|stop| {
            let (slot, reqs) = stop
                .split_once(':')
                .ok_or_else(|| format!("stop '{stop}' has no slot"))?;
            let slot = SlotIndex(
                u32::try_from(parse_u64(slot, "stop slot")?).map_err(|_| "slot out of range")?,
            );
            let requests = reqs
                .split(',')
                .map(decode_request)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(ScheduledRead { slot, requests })
        })
        .collect()
}

/// Encodes `u64` values `;`-separated.
fn encode_u64s(vals: &[u64]) -> String {
    let mut s = String::with_capacity(vals.len() * 8);
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        let _ = write!(s, "{v}");
    }
    s
}

fn decode_u64s(s: &str) -> Result<Vec<u64>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(';')
        .map(|v| parse_u64(v, "vector element"))
        .collect()
}

/// Encodes `(u64, u64)` pairs as `a.b`, `;`-separated.
fn encode_pairs(vals: impl Iterator<Item = (u64, u64)>) -> String {
    let mut s = String::new();
    for (i, (a, b)) in vals.enumerate() {
        if i > 0 {
            s.push(';');
        }
        let _ = write!(s, "{a}.{b}");
    }
    s
}

fn decode_pairs(s: &str) -> Result<Vec<(u64, u64)>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(';')
        .map(|p| {
            let (a, b) = p
                .split_once('.')
                .ok_or_else(|| format!("malformed pair '{p}'"))?;
            Ok((parse_u64(a, "pair")?, parse_u64(b, "pair")?))
        })
        .collect()
}

struct LineWriter {
    out: String,
    lines: u64,
}

impl LineWriter {
    fn new() -> Self {
        LineWriter {
            out: String::with_capacity(4096),
            lines: 0,
        }
    }

    /// Writes one flat JSON line; `fields` are `(key, already-encoded
    /// JSON value)` pairs emitted in order after the `k` discriminator.
    fn line(&mut self, kind: &str, fields: &[(&str, String)]) {
        let _ = write!(self.out, "{{\"k\":\"{kind}\"");
        for (key, val) in fields {
            let _ = write!(self.out, ",\"{key}\":{val}");
        }
        self.out.push_str("}\n");
        self.lines += 1;
    }
}

fn js(s: &str) -> String {
    format!("\"{s}\"")
}

/// Serializes a checkpoint to its JSONL text.
pub fn to_text(c: &Checkpoint) -> String {
    let mut w = LineWriter::new();
    let mut header = vec![
        ("version", SCHEMA_VERSION.to_string()),
        ("engine", js(c.engine.name())),
        ("fingerprint", c.fingerprint.to_string()),
        ("now_us", c.now_us.to_string()),
        ("trace_seq", c.trace_seq.to_string()),
    ];
    if let Some(t) = c.next_arrival_us {
        header.push(("next_arrival_us", t.to_string()));
    }
    w.line("header", &header);
    w.line(
        "factory",
        &[
            ("makes", c.factory_makes.to_string()),
            ("gaps", c.factory_gaps.to_string()),
            ("fp", c.factory_fp.to_string()),
        ],
    );
    w.line(
        "pending",
        &[
            ("n", c.pending.len().to_string()),
            ("data", js(&encode_requests(&c.pending))),
        ],
    );
    let m = &c.metrics;
    w.line(
        "metrics",
        &[
            ("window_start_us", m.window_start_us.to_string()),
            ("completed", m.completed.to_string()),
            ("bytes", m.bytes_delivered.to_string()),
            ("reads", m.physical_reads.to_string()),
            ("switches", m.tape_switches.to_string()),
            ("total_delay_us", m.total_delay_us.to_string()),
            ("max_delay_us", m.max_delay_us.to_string()),
            ("locating_us", m.time_locating_us.to_string()),
            ("reading_us", m.time_reading_us.to_string()),
            ("switching_us", m.time_switching_us.to_string()),
            ("idle_us", m.time_idle_us.to_string()),
            ("repairing_us", m.time_repairing_us.to_string()),
            ("admitted", m.admitted.to_string()),
            ("served", m.served.to_string()),
            ("failed", m.failed_requests.to_string()),
            ("failovers", m.replica_failovers.to_string()),
            ("delays", js(&encode_u64s(&m.delays_us))),
        ],
    );
    w.line(
        "faulted",
        &[(
            "data",
            js(&encode_pairs(
                c.faulted.iter().map(|&(r, t)| (r, u64::from(t))),
            )),
        )],
    );
    if let Some(state) = &c.sched_state {
        w.line("sched", &[("state", js(state))]);
    }
    if let Some(f) = &c.faults {
        let mut healing = String::new();
        for (i, &(t, s, us)) in f.healing.iter().enumerate() {
            if i > 0 {
                healing.push(';');
            }
            let _ = write!(healing, "{t}.{s}.{us}");
        }
        let mut fields = vec![
            ("media_rng", f.media_rng.to_string()),
            ("load_rng", f.load_rng.to_string()),
            ("heal_rng", f.heal_rng.to_string()),
            ("now_us", f.now_us.to_string()),
            ("degraded_us", f.degraded_us.to_string()),
            ("media_errors", f.media_errors.to_string()),
            ("permanent", f.permanent_damage.to_string()),
            (
                "bad",
                js(&encode_pairs(
                    f.bad_copies
                        .iter()
                        .map(|&(t, s)| (u64::from(t), u64::from(s))),
                )),
            ),
            ("healing", js(&healing)),
        ];
        if let Some(t) = f.degraded_since_us {
            fields.push(("degraded_since_us", t.to_string()));
        }
        w.line("faults", &fields);
        for (i, t) in f.tapes.iter().enumerate() {
            let mut fields = vec![
                ("i", i.to_string()),
                ("rng", t.rng.to_string()),
                ("online", t.online.to_string()),
                ("offline_since_us", t.offline_since_us.to_string()),
                ("downtime_us", t.downtime_us.to_string()),
                ("permanent", t.permanent.to_string()),
            ];
            if let Some(n) = t.next_change_us {
                fields.push(("next_change_us", n.to_string()));
            }
            w.line("fault_tape", &fields);
        }
        for (i, d) in f.drives.iter().enumerate() {
            let mut fields = vec![("i", i.to_string()), ("rng", d.rng.to_string())];
            if let Some(n) = d.next_fail_us {
                fields.push(("next_fail_us", n.to_string()));
            }
            w.line("fault_drive", &fields);
        }
    }
    for (i, d) in c.drives.iter().enumerate() {
        let mut fields = vec![
            ("i", i.to_string()),
            ("head", d.head.0.to_string()),
            ("free_at_us", d.free_at_us.to_string()),
            ("idle", d.idle.to_string()),
        ];
        if let Some(t) = d.mounted {
            fields.push(("mounted", t.0.to_string()));
        }
        if let Some(p) = d.cur_phase {
            fields.push(("phase", js(p.name())));
        }
        let plan_parts = d.plan.as_ref().map(|p| {
            (
                p.tape.0.to_string(),
                js(&encode_stops(p.list.forward_stops())),
                js(&encode_stops(p.list.reverse_stops())),
            )
        });
        if let Some((tape, fwd, rev)) = &plan_parts {
            fields.push(("plan_tape", tape.clone()));
            fields.push(("fwd", fwd.clone()));
            fields.push(("rev", rev.clone()));
        }
        w.line("drive", &fields);
    }
    if let Some(mc) = &c.multi {
        let mut queued = String::new();
        for (i, (at, seq, r)) in mc.queued.iter().enumerate() {
            if i > 0 {
                queued.push(';');
            }
            let _ = write!(
                queued,
                "{at}.{seq}.{}.{}.{}",
                r.id.0,
                r.block.0,
                r.arrival.as_micros()
            );
        }
        let mut fields = vec![
            ("seq", mc.seq.to_string()),
            ("robot_free_us", mc.robot_free_us.to_string()),
        ];
        let robots = mc
            .robots_free_us
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(";");
        if !mc.robots_free_us.is_empty() {
            fields.push(("robots_free_us", js(&robots)));
        }
        fields.push(("queued", js(&queued)));
        w.line("multi", &fields);
    }
    if let Some(wb) = &c.writeback {
        let mut fields = vec![
            ("wrng_state", wb.wrng_state.to_string()),
            ("wrng_counter", wb.wrng_counter.to_string()),
            ("flushed", wb.deltas_flushed.to_string()),
            ("peak", wb.peak_buffer.to_string()),
            ("age_us", wb.total_age_us.to_string()),
            ("piggy", wb.piggyback_flushes.to_string()),
            ("idle_flushes", wb.idle_flushes.to_string()),
            (
                "buffer",
                js(&encode_pairs(
                    wb.buffer.iter().map(|&(c, d)| (c, u64::from(d))),
                )),
            ),
        ];
        if let Some(t) = wb.next_write_us {
            fields.push(("next_write_us", t.to_string()));
        }
        w.line("writeback", &fields);
    }
    let lines = w.lines;
    w.line("end", &[("lines", lines.to_string())]);
    w.out
}

/// Writes a checkpoint to `path` atomically and durably: the text goes
/// to `<path>.tmp` first, is fsynced, and is renamed into place — then
/// the parent directory is fsynced (on Unix) so the rename itself
/// survives a power loss. `path` therefore always holds a complete
/// checkpoint even if the process dies mid-write; a torn temp file is
/// simply overwritten by the next save.
pub fn save(c: &Checkpoint, path: &Path) -> Result<(), SimError> {
    use std::io::Write as _;
    let text = to_text(c);
    let tmp = path.with_extension("ckpt.tmp");
    let mut file = std::fs::File::create(&tmp)
        .map_err(|e| SimError::CheckpointIo(format!("creating {}: {e}", tmp.display())))?;
    file.write_all(text.as_bytes())
        .map_err(|e| SimError::CheckpointIo(format!("writing {}: {e}", tmp.display())))?;
    // Flush file contents to stable storage before the rename: a rename
    // is atomic in the namespace but says nothing about the data blocks,
    // so without this barrier a crash could leave `path` pointing at a
    // complete-looking name with torn contents.
    file.sync_all()
        .map_err(|e| SimError::CheckpointIo(format!("syncing {}: {e}", tmp.display())))?;
    drop(file);
    std::fs::rename(&tmp, path)
        .map_err(|e| SimError::CheckpointIo(format!("renaming into {}: {e}", path.display())))?;
    #[cfg(unix)]
    {
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        let dh = std::fs::File::open(dir).map_err(|e| {
            SimError::CheckpointIo(format!("opening directory {}: {e}", dir.display()))
        })?;
        dh.sync_all().map_err(|e| {
            SimError::CheckpointIo(format!("syncing directory {}: {e}", dir.display()))
        })?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("{what} '{s}' is not an integer"))
}

/// Parses one flat JSON object of the checkpoint schema (same grammar as
/// the trace schema: quoted keys, integer / string / boolean values, no
/// nesting).
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, String>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut map = BTreeMap::new();
    let mut rest = body;
    while !rest.is_empty() {
        rest = rest.trim_start_matches(',');
        let key_start = rest.strip_prefix('"').ok_or("expected quoted key")?;
        let key_end = key_start.find('"').ok_or("unterminated key")?;
        let key = &key_start[..key_end];
        let after = key_start[key_end + 1..]
            .strip_prefix(':')
            .ok_or("expected ':' after key")?;
        let (value, remainder) = if let Some(v) = after.strip_prefix('"') {
            let end = v.find('"').ok_or("unterminated string value")?;
            (v[..end].to_string(), &v[end + 1..])
        } else {
            let end = after.find(',').unwrap_or(after.len());
            if after[..end].is_empty() {
                return Err(format!("empty value for key '{key}'"));
            }
            (after[..end].to_string(), &after[end..])
        };
        if map.insert(key.to_string(), value).is_some() {
            return Err(format!("duplicate key '{key}'"));
        }
        rest = remainder;
    }
    Ok(map)
}

struct Fields<'a> {
    map: &'a BTreeMap<String, String>,
}

impl Fields<'_> {
    fn u64(&self, key: &str) -> Result<u64, String> {
        parse_u64(
            self.map
                .get(key)
                .ok_or_else(|| format!("missing field '{key}'"))?,
            key,
        )
    }

    fn opt_u64(&self, key: &str) -> Result<Option<u64>, String> {
        self.map.get(key).map(|v| parse_u64(v, key)).transpose()
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        u32::try_from(self.u64(key)?).map_err(|_| format!("field '{key}' out of range"))
    }

    fn u16(&self, key: &str) -> Result<u16, String> {
        u16::try_from(self.u64(key)?).map_err(|_| format!("field '{key}' out of range"))
    }

    fn boolean(&self, key: &str) -> Result<bool, String> {
        match self.map.get(key).map(String::as_str) {
            Some("true") => Ok(true),
            Some("false") => Ok(false),
            _ => Err(format!("field '{key}' is not a boolean")),
        }
    }

    fn string(&self, key: &str) -> Result<&str, String> {
        self.map
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing field '{key}'"))
    }
}

fn corrupt(line: usize, msg: impl std::fmt::Display) -> SimError {
    SimError::CheckpointCorrupt(format!("line {line}: {msg}"))
}

/// Parses checkpoint text (see [`to_text`]) back into a [`Checkpoint`].
///
/// # Errors
/// [`SimError::CheckpointVersion`] when the header carries an unsupported
/// schema version; [`SimError::CheckpointCorrupt`] for every structural
/// problem — missing header or footer, a line-count mismatch (truncated
/// file), malformed lines, or fields out of range.
pub fn from_text(text: &str) -> Result<Checkpoint, SimError> {
    let mut lines = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        let map = parse_flat_object(raw).map_err(|m| corrupt(i + 1, m))?;
        lines.push((i + 1, map));
    }
    let Some((footer_no, footer)) = lines.last() else {
        return Err(SimError::CheckpointCorrupt("file is empty".into()));
    };
    if footer.get("k").map(String::as_str) != Some("end") {
        return Err(SimError::CheckpointCorrupt(
            "missing end line (file truncated)".into(),
        ));
    }
    let declared = Fields { map: footer }
        .u64("lines")
        .map_err(|m| corrupt(*footer_no, m))?;
    if declared != (lines.len() - 1) as u64 {
        return Err(SimError::CheckpointCorrupt(format!(
            "end line declares {declared} lines but {} are present (file truncated)",
            lines.len() - 1
        )));
    }

    let Some((header_no, header)) = lines.first() else {
        // Unreachable: the footer check above required at least one line.
        return Err(SimError::CheckpointCorrupt("file is empty".into()));
    };
    let h = Fields { map: header };
    if header.get("k").map(String::as_str) != Some("header") {
        return Err(corrupt(*header_no, "first line is not the header"));
    }
    let version = h.u32("version").map_err(|m| corrupt(*header_no, m))?;
    if version != SCHEMA_VERSION {
        return Err(SimError::CheckpointVersion {
            found: version,
            expected: SCHEMA_VERSION,
        });
    }
    let engine = EngineKind::from_name(h.string("engine").map_err(|m| corrupt(*header_no, m))?)
        .ok_or_else(|| corrupt(*header_no, "unknown engine kind"))?;

    let mut c = Checkpoint {
        engine,
        fingerprint: h.u64("fingerprint").map_err(|m| corrupt(*header_no, m))?,
        now_us: h.u64("now_us").map_err(|m| corrupt(*header_no, m))?,
        trace_seq: h.u64("trace_seq").map_err(|m| corrupt(*header_no, m))?,
        next_arrival_us: h
            .opt_u64("next_arrival_us")
            .map_err(|m| corrupt(*header_no, m))?,
        factory_makes: 0,
        factory_gaps: 0,
        factory_fp: 0,
        pending: Vec::new(),
        metrics: MetricsSnapshot {
            window_start_us: 0,
            completed: 0,
            bytes_delivered: 0,
            physical_reads: 0,
            tape_switches: 0,
            total_delay_us: 0,
            max_delay_us: 0,
            delays_us: Vec::new(),
            time_locating_us: 0,
            time_reading_us: 0,
            time_switching_us: 0,
            time_idle_us: 0,
            time_repairing_us: 0,
            admitted: 0,
            served: 0,
            failed_requests: 0,
            replica_failovers: 0,
        },
        faulted: Vec::new(),
        sched_state: None,
        faults: None,
        drives: Vec::new(),
        multi: None,
        writeback: None,
    };
    let mut seen_factory = false;
    let mut seen_metrics = false;

    for (no, map) in &lines[1..lines.len() - 1] {
        let f = Fields { map };
        let kind = map
            .get("k")
            .map(String::as_str)
            .ok_or_else(|| corrupt(*no, "line has no kind"))?;
        let res: Result<(), String> = (|| {
            match kind {
                "factory" => {
                    c.factory_makes = f.u64("makes")?;
                    c.factory_gaps = f.u64("gaps")?;
                    c.factory_fp = f.u64("fp")?;
                    seen_factory = true;
                }
                "pending" => {
                    c.pending = decode_requests(f.string("data")?)?;
                    if c.pending.len() as u64 != f.u64("n")? {
                        return Err("pending count does not match data".into());
                    }
                }
                "metrics" => {
                    c.metrics = MetricsSnapshot {
                        window_start_us: f.u64("window_start_us")?,
                        completed: f.u64("completed")?,
                        bytes_delivered: f.u64("bytes")?,
                        physical_reads: f.u64("reads")?,
                        tape_switches: f.u64("switches")?,
                        total_delay_us: f.u64("total_delay_us")?,
                        max_delay_us: f.u64("max_delay_us")?,
                        delays_us: decode_u64s(f.string("delays")?)?,
                        time_locating_us: f.u64("locating_us")?,
                        time_reading_us: f.u64("reading_us")?,
                        time_switching_us: f.u64("switching_us")?,
                        time_idle_us: f.u64("idle_us")?,
                        time_repairing_us: f.u64("repairing_us")?,
                        admitted: f.u64("admitted")?,
                        served: f.u64("served")?,
                        failed_requests: f.u64("failed")?,
                        replica_failovers: f.u64("failovers")?,
                    };
                    seen_metrics = true;
                }
                "faulted" => {
                    c.faulted = decode_pairs(f.string("data")?)?
                        .into_iter()
                        .map(|(r, t)| {
                            Ok((
                                r,
                                u16::try_from(t).map_err(|_| "faulted tape out of range")?,
                            ))
                        })
                        .collect::<Result<Vec<_>, String>>()?;
                }
                "sched" => {
                    c.sched_state = Some(f.string("state")?.to_string());
                }
                "faults" => {
                    c.faults = Some(FaultSnapshot {
                        media_rng: f.u64("media_rng")?,
                        load_rng: f.u64("load_rng")?,
                        heal_rng: f.u64("heal_rng")?,
                        now_us: f.u64("now_us")?,
                        degraded_since_us: f.opt_u64("degraded_since_us")?,
                        degraded_us: f.u64("degraded_us")?,
                        media_errors: f.u64("media_errors")?,
                        permanent_damage: f.boolean("permanent")?,
                        tapes: Vec::new(),
                        drives: Vec::new(),
                        bad_copies: decode_pairs(f.string("bad")?)?
                            .into_iter()
                            .map(|(t, s)| {
                                Ok((
                                    u16::try_from(t).map_err(|_| "bad-copy tape out of range")?,
                                    u32::try_from(s).map_err(|_| "bad-copy slot out of range")?,
                                ))
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                        healing: {
                            let enc = f.string("healing")?;
                            let mut v = Vec::new();
                            if !enc.is_empty() {
                                for part in enc.split(';') {
                                    let mut it = part.split('.');
                                    let t = parse_u64(it.next().unwrap_or(""), "healing tape")?;
                                    let s = parse_u64(it.next().unwrap_or(""), "healing slot")?;
                                    let us = parse_u64(it.next().unwrap_or(""), "healing instant")?;
                                    if it.next().is_some() {
                                        return Err("healing entry has extra fields".into());
                                    }
                                    v.push((
                                        u16::try_from(t)
                                            .map_err(|_| "healing tape out of range")?,
                                        u32::try_from(s)
                                            .map_err(|_| "healing slot out of range")?,
                                        us,
                                    ));
                                }
                            }
                            v
                        },
                    });
                }
                "fault_tape" => {
                    let snap = c
                        .faults
                        .as_mut()
                        .ok_or("fault_tape line before faults line")?;
                    if f.u64("i")? != snap.tapes.len() as u64 {
                        return Err("fault_tape lines out of order".into());
                    }
                    snap.tapes.push(TapeFaultSnapshot {
                        rng: f.u64("rng")?,
                        online: f.boolean("online")?,
                        next_change_us: f.opt_u64("next_change_us")?,
                        offline_since_us: f.u64("offline_since_us")?,
                        downtime_us: f.u64("downtime_us")?,
                        permanent: f.boolean("permanent")?,
                    });
                }
                "fault_drive" => {
                    let snap = c
                        .faults
                        .as_mut()
                        .ok_or("fault_drive line before faults line")?;
                    if f.u64("i")? != snap.drives.len() as u64 {
                        return Err("fault_drive lines out of order".into());
                    }
                    snap.drives.push(DriveFaultSnapshot {
                        rng: f.u64("rng")?,
                        next_fail_us: f.opt_u64("next_fail_us")?,
                    });
                }
                "drive" => {
                    if f.u64("i")? != c.drives.len() as u64 {
                        return Err("drive lines out of order".into());
                    }
                    let plan = match map.get("plan_tape") {
                        Some(_) => {
                            let tape = TapeId(f.u16("plan_tape")?);
                            let forward = decode_stops(f.string("fwd")?)?;
                            let reverse = decode_stops(f.string("rev")?)?;
                            let list = ServiceList::from_parts(forward, reverse)
                                .map_err(|m| format!("bad service list: {m}"))?;
                            Some(SweepPlan { tape, list })
                        }
                        None => None,
                    };
                    let cur_phase = match map.get("phase").map(String::as_str) {
                        Some("forward") => Some(SweepPhase::Forward),
                        Some("reverse") => Some(SweepPhase::Reverse),
                        Some(other) => return Err(format!("bad phase '{other}'")),
                        None => None,
                    };
                    c.drives.push(DriveCheckpoint {
                        mounted: map
                            .get("mounted")
                            .map(|_| f.u16("mounted").map(TapeId))
                            .transpose()?,
                        head: SlotIndex(f.u32("head")?),
                        plan,
                        cur_phase,
                        free_at_us: f.u64("free_at_us")?,
                        idle: f.boolean("idle")?,
                    });
                }
                "multi" => {
                    let mut queued = Vec::new();
                    let data = f.string("queued")?;
                    if !data.is_empty() {
                        for q in data.split(';') {
                            let mut it = q.split('.');
                            let (Some(at), Some(qs), Some(id), Some(blk), Some(arr), None) = (
                                it.next(),
                                it.next(),
                                it.next(),
                                it.next(),
                                it.next(),
                                it.next(),
                            ) else {
                                return Err(format!("malformed queued arrival '{q}'"));
                            };
                            queued.push((
                                parse_u64(at, "queued at")?,
                                parse_u64(qs, "queued seq")?,
                                Request {
                                    id: RequestId(parse_u64(id, "queued id")?),
                                    block: BlockId(
                                        u32::try_from(parse_u64(blk, "queued block")?)
                                            .map_err(|_| "queued block out of range")?,
                                    ),
                                    arrival: SimTime::from_micros(parse_u64(
                                        arr,
                                        "queued arrival",
                                    )?),
                                },
                            ));
                        }
                    }
                    let robots_free_us = match f.map.get("robots_free_us") {
                        Some(raw) => raw
                            .split(';')
                            .filter(|t| !t.is_empty())
                            .map(|t| parse_u64(t, "robots_free_us"))
                            .collect::<Result<Vec<u64>, String>>()?,
                        None => Vec::new(),
                    };
                    c.multi = Some(MultiCheckpoint {
                        seq: f.u64("seq")?,
                        robot_free_us: f.u64("robot_free_us")?,
                        robots_free_us,
                        queued,
                    });
                }
                "writeback" => {
                    c.writeback = Some(WriteBackCheckpoint {
                        wrng_state: f.u64("wrng_state")?,
                        wrng_counter: f.u64("wrng_counter")?,
                        next_write_us: f.opt_u64("next_write_us")?,
                        buffer: decode_pairs(f.string("buffer")?)?
                            .into_iter()
                            .map(|(created, d)| {
                                Ok((
                                    created,
                                    u16::try_from(d).map_err(|_| "delta dest out of range")?,
                                ))
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                        deltas_flushed: f.u64("flushed")?,
                        peak_buffer: f.u64("peak")?,
                        total_age_us: f.u64("age_us")?,
                        piggyback_flushes: f.u64("piggy")?,
                        idle_flushes: f.u64("idle_flushes")?,
                    });
                }
                other => return Err(format!("unknown line kind '{other}'")),
            }
            Ok(())
        })();
        res.map_err(|m| corrupt(*no, m))?;
    }
    if !seen_factory {
        return Err(SimError::CheckpointCorrupt("missing factory line".into()));
    }
    if !seen_metrics {
        return Err(SimError::CheckpointCorrupt("missing metrics line".into()));
    }
    if c.drives.is_empty() {
        return Err(SimError::CheckpointCorrupt("missing drive lines".into()));
    }
    Ok(c)
}

/// Reads and parses the checkpoint at `path`.
///
/// # Errors
/// [`SimError::CheckpointIo`] when the file cannot be read, plus
/// everything [`from_text`] raises.
pub fn load(path: &Path) -> Result<Checkpoint, SimError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SimError::CheckpointIo(format!("reading {}: {e}", path.display())))?;
    from_text(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_checkpoint_after_is_strictly_after_and_aligned() {
        let every = Micros::from_micros(10);
        // Fresh run: first instant is one full interval in.
        assert_eq!(
            next_checkpoint_after(SimTime::ZERO, every),
            SimTime::from_micros(10)
        );
        // Mid-interval and exactly-on-boundary clocks both advance to the
        // next aligned multiple, never returning `now` itself.
        assert_eq!(
            next_checkpoint_after(SimTime::from_micros(7), every),
            SimTime::from_micros(10)
        );
        assert_eq!(
            next_checkpoint_after(SimTime::from_micros(10), every),
            SimTime::from_micros(20)
        );
        // A resume landing far into the schedule skips straight past the
        // elapsed intervals (the old per-interval loop made this O(now)).
        assert_eq!(
            next_checkpoint_after(SimTime::from_micros(1_000_000_007), every),
            SimTime::from_micros(1_000_000_010)
        );
    }

    #[test]
    fn zero_interval_is_rejected_by_validate() {
        // Regression: a zero interval used to hang the engines' schedule
        // advance; `validate` now refuses it before any loop runs.
        let opts = CheckpointOpts::checkpoint_every(Micros::ZERO, "x.ckpt");
        assert!(matches!(opts.validate(), Err(SimError::InvalidConfig(_))));
        let opts = CheckpointOpts::resume_from("x.ckpt").and_checkpoint_every(Micros::ZERO, "y");
        assert!(matches!(opts.validate(), Err(SimError::InvalidConfig(_))));
        assert!(CheckpointOpts::none().validate().is_ok());
        assert!(
            CheckpointOpts::checkpoint_every(Micros::from_micros(1), "x.ckpt")
                .validate()
                .is_ok()
        );
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            engine: EngineKind::Multi,
            fingerprint: 0xDEAD_BEEF_0123_4567,
            now_us: 42_000_000,
            trace_seq: 1234,
            next_arrival_us: Some(43_000_000),
            factory_makes: 99,
            factory_gaps: 100,
            factory_fp: 0x0BAD_F00D,
            pending: vec![
                Request {
                    id: RequestId(7),
                    block: BlockId(11),
                    arrival: SimTime::from_micros(41_000_000),
                },
                Request {
                    id: RequestId(8),
                    block: BlockId(0),
                    arrival: SimTime::from_micros(41_500_000),
                },
            ],
            metrics: MetricsSnapshot {
                window_start_us: 10_000_000,
                completed: 5,
                bytes_delivered: 5 << 20,
                physical_reads: 5,
                tape_switches: 3,
                total_delay_us: 700,
                max_delay_us: 300,
                delays_us: vec![100, 200, 300, 50, 50],
                time_locating_us: 11,
                time_reading_us: 22,
                time_switching_us: 33,
                time_idle_us: 44,
                time_repairing_us: 0,
                admitted: 9,
                served: 5,
                failed_requests: 0,
                replica_failovers: 1,
            },
            faulted: vec![(7, 2)],
            sched_state: Some("3,5,9".into()),
            faults: Some(FaultSnapshot {
                media_rng: 1,
                load_rng: 2,
                heal_rng: 3,
                now_us: 42_000_000,
                degraded_since_us: None,
                degraded_us: 500,
                media_errors: 4,
                permanent_damage: false,
                tapes: vec![
                    TapeFaultSnapshot {
                        rng: 10,
                        online: true,
                        next_change_us: Some(50_000_000),
                        offline_since_us: 0,
                        downtime_us: 0,
                        permanent: false,
                    },
                    TapeFaultSnapshot {
                        rng: 11,
                        online: false,
                        next_change_us: None,
                        offline_since_us: 40_000_000,
                        downtime_us: 123,
                        permanent: true,
                    },
                ],
                drives: vec![DriveFaultSnapshot {
                    rng: 20,
                    next_fail_us: Some(60_000_000),
                }],
                bad_copies: vec![(1, 42)],
                healing: vec![(2, 7, 55_000_000)],
            }),
            drives: vec![DriveCheckpoint {
                mounted: Some(TapeId(3)),
                head: SlotIndex(17),
                plan: Some(SweepPlan {
                    tape: TapeId(3),
                    list: ServiceList::from_parts(
                        vec![
                            ScheduledRead {
                                slot: SlotIndex(20),
                                requests: vec![Request {
                                    id: RequestId(9),
                                    block: BlockId(5),
                                    arrival: SimTime::from_micros(100),
                                }],
                            },
                            ScheduledRead {
                                slot: SlotIndex(30),
                                requests: vec![
                                    Request {
                                        id: RequestId(10),
                                        block: BlockId(6),
                                        arrival: SimTime::from_micros(200),
                                    },
                                    Request {
                                        id: RequestId(11),
                                        block: BlockId(6),
                                        arrival: SimTime::from_micros(300),
                                    },
                                ],
                            },
                        ],
                        vec![ScheduledRead {
                            slot: SlotIndex(12),
                            requests: vec![Request {
                                id: RequestId(12),
                                block: BlockId(7),
                                arrival: SimTime::from_micros(400),
                            }],
                        }],
                    )
                    .expect("valid list"),
                }),
                cur_phase: Some(SweepPhase::Forward),
                free_at_us: 42_000_100,
                idle: false,
            }],
            multi: Some(MultiCheckpoint {
                seq: 55,
                robot_free_us: 41_999_000,
                robots_free_us: Vec::new(),
                queued: vec![(
                    42_500_000,
                    54,
                    Request {
                        id: RequestId(13),
                        block: BlockId(8),
                        arrival: SimTime::from_micros(42_500_000),
                    },
                )],
            }),
            writeback: None,
        }
    }

    #[test]
    fn round_trips_through_text() {
        let c = sample();
        let text = to_text(&c);
        // Legacy (single-robot) checkpoints carry no fleet field, keeping
        // the on-disk format identical to the pre-fleet schema.
        assert!(!text.contains("robots_free_us"));
        let back = from_text(&text).expect("parse back");
        assert_eq!(back, c);
        // Serialization is deterministic.
        assert_eq!(to_text(&back), text);
    }

    #[test]
    fn round_trips_fleet_robot_clocks() {
        let mut c = sample();
        if let Some(mc) = &mut c.multi {
            mc.robots_free_us = vec![41_999_000, 0, 12_345];
        }
        let text = to_text(&c);
        assert!(text.contains("robots_free_us"));
        let back = from_text(&text).expect("parse back");
        assert_eq!(back, c);
        assert_eq!(to_text(&back), text);
    }

    #[test]
    fn round_trips_writeback_extras() {
        let mut c = sample();
        c.engine = EngineKind::WriteBack;
        c.multi = None;
        c.faults = None;
        c.sched_state = None;
        c.drives[0].plan = None;
        c.drives[0].cur_phase = None;
        c.writeback = Some(WriteBackCheckpoint {
            wrng_state: 777,
            wrng_counter: 12,
            next_write_us: Some(43_100_000),
            buffer: vec![(41_000_000, 0), (41_200_000, 5)],
            deltas_flushed: 30,
            peak_buffer: 9,
            total_age_us: 1_000_000,
            piggyback_flushes: 2,
            idle_flushes: 3,
        });
        let back = from_text(&to_text(&c)).expect("parse back");
        assert_eq!(back, c);
    }

    #[test]
    #[cfg_attr(miri, ignore = "file I/O is unsupported under Miri isolation")]
    fn truncated_file_is_detected() {
        let text = to_text(&sample());
        // Drop the footer entirely.
        let without_footer: String = text
            .lines()
            .take(text.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(matches!(
            from_text(&without_footer),
            Err(SimError::CheckpointCorrupt(_))
        ));
        // Drop an interior line: the footer count no longer matches.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.remove(2);
        let shortened = lines.join("\n");
        assert!(matches!(
            from_text(&shortened),
            Err(SimError::CheckpointCorrupt(_))
        ));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let text = to_text(&sample());
        let bumped = text.replace(&format!("\"version\":{SCHEMA_VERSION}"), "\"version\":999");
        assert_eq!(
            from_text(&bumped),
            Err(SimError::CheckpointVersion {
                found: 999,
                expected: SCHEMA_VERSION,
            })
        );
    }

    #[test]
    fn garbage_is_corrupt_not_a_panic() {
        assert!(matches!(
            from_text("total nonsense"),
            Err(SimError::CheckpointCorrupt(_))
        ));
        assert!(matches!(from_text(""), Err(SimError::CheckpointCorrupt(_))));
        // Valid framing, malformed payload.
        let bad = format!(
            "{{\"k\":\"header\",\"version\":{SCHEMA_VERSION},\"engine\":\"single\",\
             \"fingerprint\":1,\"now_us\":nope,\"trace_seq\":0}}\n{{\"k\":\"end\",\"lines\":1}}\n"
        );
        let bad = bad.as_str();
        assert!(matches!(
            from_text(bad),
            Err(SimError::CheckpointCorrupt(_))
        ));
    }

    #[test]
    #[cfg_attr(miri, ignore = "file I/O is unsupported under Miri isolation")]
    fn save_and_load_round_trip_on_disk() {
        let c = sample();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tapesim-ckpt-test-{}.ckpt", std::process::id()));
        save(&c, &path).expect("save");
        let back = load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, c);
    }

    #[test]
    #[cfg_attr(miri, ignore = "file I/O is unsupported under Miri isolation")]
    fn missing_file_is_an_io_error() {
        let err = load(Path::new("/nonexistent/definitely/not/here.ckpt"));
        assert!(matches!(err, Err(SimError::CheckpointIo(_))));
    }

    #[test]
    #[cfg_attr(miri, ignore = "file I/O is unsupported under Miri isolation")]
    fn truncation_mid_record_is_corrupt_not_a_panic() {
        // A file cut off in the *middle of a line* — the torn-write shape
        // the fsync-before-rename in `save` prevents, and the shape a
        // reader must survive if it ever meets one (e.g. a checkpoint
        // copied off a dying disk). Every prefix that ends mid-record
        // must parse as CheckpointCorrupt, never panic or half-load.
        let text = to_text(&sample());
        // Cut inside the third line, two-thirds of the way through it.
        let third_line_start = text
            .match_indices('\n')
            .nth(1)
            .map(|(i, _)| i + 1)
            .expect("at least three lines");
        let third_line_end = text[third_line_start..]
            .find('\n')
            .map(|i| third_line_start + i)
            .expect("line terminator");
        let cut = third_line_start + (third_line_end - third_line_start) * 2 / 3;
        let torn = &text[..cut];
        assert!(
            matches!(from_text(torn), Err(SimError::CheckpointCorrupt(_))),
            "mid-record truncation must be typed corruption"
        );

        // Same shape through the on-disk path.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tapesim-ckpt-torn-{}.ckpt", std::process::id()));
        std::fs::write(&path, torn).expect("write torn file");
        let err = load(&path);
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, Err(SimError::CheckpointCorrupt(_))));
    }
}
