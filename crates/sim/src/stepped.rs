//! Shared vocabulary of the poll-driven stepped engine cores.
//!
//! Every batch entry point (`run_simulation*`, `run_multi_drive*`,
//! `run_with_writeback*`) is a thin driver over a stepped core:
//! construct the core, call [`step`](crate::SteppedEngine::step) until it
//! reports completion, then `finish()` for the report. A `step()`
//! executes exactly the statements the old monolithic loop executed for
//! one event, in the same order, so a stepped run and a batch run of the
//! same configuration produce **byte-identical traces and exactly equal
//! metrics reports** — the equivalence contract defended by
//! `tests/tests/stepped_differential.rs`.
//!
//! The cores also run in *external-arrival* mode (no workload factory
//! draws): requests enter through `submit_at` and leave through
//! [`EngineEvent`]s drained between steps. This is the substrate of the
//! [`crate::service::JukeboxService`] layer.

use tapesim_model::SimTime;
use tapesim_workload::RequestId;

/// Whether a stepped core has more work to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// More events remain; call `step()` again.
    Running,
    /// The horizon was reached (or the run saturated); only `finish()`
    /// remains.
    Done,
}

/// An externally observable request outcome, produced by a stepped core
/// running in external-arrival mode and drained by the caller between
/// steps (batch runs never produce these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// The request's block was read; the request left the system served.
    Completed {
        /// The completed request.
        req: RequestId,
        /// Completion instant.
        at: SimTime,
    },
    /// Every replica of the request's block is permanently lost; the
    /// request left the system failed.
    Failed {
        /// The failed request.
        req: RequestId,
        /// Failure instant.
        at: SimTime,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_events_carry_identity_and_time() {
        let c = EngineEvent::Completed {
            req: RequestId(3),
            at: SimTime::from_secs(2),
        };
        let f = EngineEvent::Failed {
            req: RequestId(3),
            at: SimTime::from_secs(2),
        };
        assert_ne!(c, f);
        assert_eq!(c, c);
    }
}
