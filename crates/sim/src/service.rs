//! `JukeboxService`: a long-running request service over the stepped
//! multi-drive engine core.
//!
//! The batch entry points answer "what would this workload have done";
//! the service layer answers "what does this system do to the requests I
//! hand it": a bounded admission queue with typed backpressure, optional
//! per-request deadlines with typed timeout expiry, retry with capped
//! exponential backoff after permanent read failures, and graceful
//! degradation when drives are taken offline.
//!
//! ## Lifecycle
//!
//! Construct a [`SteppedMultiDrive`] in external-arrival mode, wrap it in
//! a [`JukeboxService`], then interleave [`JukeboxService::submit`] and
//! [`JukeboxService::run_until`] calls as simulated time advances;
//! [`JukeboxService::drain`] runs the engine to its horizon, resolves
//! every open ticket, and returns the final [`MetricsReport`] plus
//! [`ServiceStats`].
//!
//! ## Conservation
//!
//! Every submission resolves to **exactly one** of completed / rejected /
//! expired:
//! - *completed*: the block was delivered no later than the deadline;
//! - *rejected*: backpressure refused admission (the queue was full under
//!   [`AdmissionPolicy::RejectNew`], or the ticket was the shed victim
//!   under [`AdmissionPolicy::ShedOldest`]), or no drive was online;
//! - *expired*: the deadline passed while waiting, the block was
//!   delivered after the deadline, retries ran out, or the run drained
//!   with the ticket unresolved.
//!
//! `ServiceStats::check_conservation` asserts the sum; the chaos soak
//! (`tapesim-bench --bin chaos`) asserts it across seeded fault and
//! overload schedules.

use std::collections::BTreeMap;

use tapesim_layout::BlockId;
use tapesim_model::{Micros, SimTime};
use tapesim_workload::RequestId;

use crate::error::SimError;
use crate::metrics::MetricsReport;
use crate::multidrive::SteppedMultiDrive;
use crate::stepped::EngineEvent;

/// What the admission layer does when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse the new submission with [`SimError::Overloaded`].
    RejectNew,
    /// Cancel the oldest still-waiting ticket to make room; if nothing
    /// is cancellable (everything is in-flight), refuse the new
    /// submission instead.
    ShedOldest,
}

/// Configuration of a [`JukeboxService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum number of tickets waiting for service (queued in the
    /// engine or awaiting a retry). Submissions beyond this are subject
    /// to the admission policy.
    pub queue_capacity: usize,
    /// Behavior when the queue is full.
    pub admission: AdmissionPolicy,
    /// Per-request deadline, measured from the submission instant.
    /// `None` disables expiry.
    pub deadline: Option<Micros>,
    /// How many times a permanently failed read is resubmitted before
    /// the ticket expires. Each resubmission lets the scheduler fail
    /// over to any replica that is alive (or has healed) by then.
    pub max_retries: u32,
    /// Backoff before the first retry; doubled per attempt.
    pub backoff_base: Micros,
    /// Upper bound on the per-attempt backoff.
    pub backoff_cap: Micros,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1024,
            admission: AdmissionPolicy::RejectNew,
            deadline: None,
            max_retries: 2,
            backoff_base: Micros::from_secs(60),
            backoff_cap: Micros::from_secs(960),
        }
    }
}

impl ServiceConfig {
    fn validate(&self) -> Result<(), SimError> {
        if self.queue_capacity == 0 {
            return Err(SimError::InvalidConfig("queue_capacity must be positive"));
        }
        if self.deadline.is_some_and(|d| d.is_zero()) {
            return Err(SimError::InvalidConfig("deadline must be positive"));
        }
        if self.max_retries > 0 && self.backoff_base.is_zero() {
            return Err(SimError::InvalidConfig(
                "backoff_base must be positive when retries are enabled",
            ));
        }
        if self.backoff_cap < self.backoff_base {
            return Err(SimError::InvalidConfig(
                "backoff_cap must be at least backoff_base",
            ));
        }
        Ok(())
    }
}

/// Handle to one submission, returned by [`JukeboxService::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ticket(pub u64);

/// Externally observable state of a ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketState {
    /// Waiting for or receiving service in the engine.
    Queued,
    /// A read attempt failed permanently; the ticket waits out its
    /// backoff before resubmission.
    AwaitingRetry,
    /// Delivered no later than its deadline.
    Completed,
    /// Refused admission (backpressure or no drive online), or shed.
    Rejected,
    /// Timed out: deadline passed, retries exhausted, or unresolved at
    /// drain.
    Expired,
}

/// Counters over every submission the service has seen. Conservation:
/// `submitted == completed + rejected + expired` once
/// [`JukeboxService::drain`] has run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Submissions, including rejected ones.
    pub submitted: u64,
    /// Tickets delivered within their deadline.
    pub completed: u64,
    /// Tickets refused admission or shed.
    pub rejected: u64,
    /// Tickets that timed out (waiting, late delivery, or retries
    /// exhausted).
    pub expired: u64,
    /// Resubmissions performed (not counted in `submitted`).
    pub retries: u64,
}

impl ServiceStats {
    /// True when every submission is accounted for exactly once.
    pub fn check_conservation(&self) -> bool {
        self.submitted == self.completed + self.rejected + self.expired
    }
}

#[derive(Debug, Clone, Copy)]
enum TicketPhase {
    /// Live in the engine under this request id.
    Active(RequestId),
    /// Backing off; resubmit at the instant.
    Retry(SimTime),
    Completed,
    Rejected,
    Expired,
}

#[derive(Debug, Clone, Copy)]
struct TicketRecord {
    block: BlockId,
    deadline: Option<SimTime>,
    attempts: u32,
    phase: TicketPhase,
}

/// The resilient service facade over a [`SteppedMultiDrive`] in
/// external-arrival mode. See the module docs for semantics.
pub struct JukeboxService<'a> {
    engine: SteppedMultiDrive<'a>,
    cfg: ServiceConfig,
    tickets: Vec<TicketRecord>,
    /// Engine request id → ticket index (retries mint fresh engine ids).
    by_request: BTreeMap<RequestId, usize>,
    stats: ServiceStats,
    /// Service-side clock: the latest instant the caller has driven the
    /// run to. Never behind the engine clock, but can be ahead of it when
    /// the engine parked with nothing schedulable.
    clock: SimTime,
}

impl<'a> JukeboxService<'a> {
    /// Wraps an external-arrival stepped engine. Fails when the engine
    /// generates its own workload or the config is inconsistent.
    pub fn new(engine: SteppedMultiDrive<'a>, cfg: ServiceConfig) -> Result<Self, SimError> {
        if !engine.is_external() {
            return Err(SimError::InvalidConfig(
                "JukeboxService requires an external-arrival engine",
            ));
        }
        cfg.validate()?;
        Ok(JukeboxService {
            engine,
            cfg,
            tickets: Vec::new(),
            by_request: BTreeMap::new(),
            stats: ServiceStats::default(),
            clock: SimTime::ZERO,
        })
    }

    /// Counters so far (final only after [`JukeboxService::drain`]).
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// The service clock (the latest instant driven to).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// State of a ticket, if it exists.
    pub fn state(&self, t: Ticket) -> Option<TicketState> {
        let idx = usize::try_from(t.0).ok()?;
        self.tickets.get(idx).map(|r| match r.phase {
            TicketPhase::Active(_) => TicketState::Queued,
            TicketPhase::Retry(_) => TicketState::AwaitingRetry,
            TicketPhase::Completed => TicketState::Completed,
            TicketPhase::Rejected => TicketState::Rejected,
            TicketPhase::Expired => TicketState::Expired,
        })
    }

    /// Tickets waiting for service: live in the engine's admission
    /// backlog or backing off before a retry. This is the quantity
    /// metered against [`ServiceConfig::queue_capacity`].
    pub fn backlog(&self) -> usize {
        let retrying = self
            .tickets
            .iter()
            .filter(|t| matches!(t.phase, TicketPhase::Retry(_)))
            .count();
        self.engine.waiting() + retrying
    }

    /// Takes a drive out of service or brings it back (administrative,
    /// not the fault model). With survivors remaining the service
    /// degrades gracefully — the victims' requests re-queue onto the
    /// other drives. Losing the *last* drive drains the backlog: every
    /// waiting ticket expires and new submissions are rejected until a
    /// drive returns.
    pub fn set_drive_offline(&mut self, d: usize, offline: bool) -> Result<(), SimError> {
        self.engine.set_drive_offline(d, offline)?;
        if self.engine.drives_online() == 0 {
            let clock = self.clock;
            self.expire_where(clock, |_| true);
        }
        Ok(())
    }

    /// Number of drives currently available.
    pub fn drives_online(&self) -> usize {
        self.engine.drives_online()
    }

    /// Enables or disables partitioned-horizon parallel stepping in the
    /// underlying engine (see [`SteppedMultiDrive::set_parallel`]). The
    /// worker count never changes observable behavior — tickets, stats,
    /// traces, and reports are identical at any setting.
    pub fn set_parallel(&mut self, workers: usize) {
        self.engine.set_parallel(workers);
    }

    /// Parallel windows committed by the underlying engine so far (see
    /// [`SteppedMultiDrive::windows_stepped`]).
    pub fn windows_stepped(&self) -> u64 {
        self.engine.windows_stepped()
    }

    /// Submits one block read at instant `at` (not before the service
    /// clock). Applies backpressure per the admission policy and starts
    /// the deadline clock at `at`. Returns the ticket, or
    /// [`SimError::Overloaded`] when the submission was rejected (the
    /// rejection is still counted in the stats).
    pub fn submit(&mut self, block: BlockId, at: SimTime) -> Result<Ticket, SimError> {
        self.run_until(at)?;
        let at = at.max(self.clock);
        self.stats.submitted += 1;
        if self.engine.drives_online() == 0 {
            self.stats.rejected += 1;
            return Err(SimError::Overloaded);
        }
        if self.backlog() >= self.cfg.queue_capacity {
            let made_room = match self.cfg.admission {
                AdmissionPolicy::RejectNew => false,
                AdmissionPolicy::ShedOldest => self.shed_oldest(),
            };
            if !made_room {
                self.stats.rejected += 1;
                return Err(SimError::Overloaded);
            }
        }
        let req = self.engine.submit_at(block, at)?;
        let idx = self.tickets.len();
        self.tickets.push(TicketRecord {
            block,
            deadline: self.cfg.deadline.map(|d| at + d),
            attempts: 0,
            phase: TicketPhase::Active(req),
        });
        self.by_request.insert(req, idx);
        Ok(Ticket(idx as u64))
    }

    /// Advances the run to instant `t` (clamped to the horizon):
    /// services requests, resolves completions and failures, expires
    /// deadlines, and performs due retries.
    pub fn run_until(&mut self, t: SimTime) -> Result<(), SimError> {
        let t = t.min(self.engine.horizon()).max(self.clock);
        loop {
            // Perform retries due before the target so resubmission
            // happens at the backoff instant, not late at `t`.
            let due_retry = self
                .tickets
                .iter()
                .filter_map(|r| match r.phase {
                    TicketPhase::Retry(when) if when <= t => Some(when),
                    _ => None,
                })
                .min();
            let stop_at = due_retry.unwrap_or(t);
            self.engine.step_until(stop_at)?;
            self.clock = self.clock.max(stop_at);
            self.pump()?;
            if due_retry.is_none() {
                break;
            }
        }
        Ok(())
    }

    /// Runs the engine to its horizon and resolves every open ticket
    /// (unresolved ones expire). Returns the engine's metrics report —
    /// with the service-level rejected/expired counters installed — and
    /// the service stats.
    pub fn drain(self) -> Result<(MetricsReport, ServiceStats), SimError> {
        let (report, stats, _) = self.drain_with_tickets()?;
        Ok((report, stats))
    }

    /// [`JukeboxService::drain`], additionally returning the final state
    /// of every ticket in submission order. After draining, each ticket
    /// is exactly one of completed / rejected / expired — the per-ticket
    /// conservation invariant the chaos soak asserts.
    pub fn drain_with_tickets(
        mut self,
    ) -> Result<(MetricsReport, ServiceStats, Vec<TicketState>), SimError> {
        let end = self.engine.horizon();
        self.run_until(end)?;
        // Let the engine run down whatever is still in flight past the
        // park point (it stops at the horizon regardless).
        while self.engine.step_parallel()? == crate::stepped::StepOutcome::Running {}
        self.clock = end;
        self.pump()?;
        let clock = self.clock;
        self.expire_where(clock, |_| true);
        // A ticket can survive `expire_where` only when its request was
        // still inside an active sweep when the horizon hit (cancel
        // refuses in-flight work). The run is over, so it was not
        // delivered: it expires unresolved.
        for idx in 0..self.tickets.len() {
            if let TicketPhase::Active(req) = self.tickets[idx].phase {
                self.by_request.remove(&req);
                self.tickets[idx].phase = TicketPhase::Expired;
                self.stats.expired += 1;
            }
        }
        let states = self
            .tickets
            .iter()
            .map(|r| match r.phase {
                TicketPhase::Active(_) => TicketState::Queued,
                TicketPhase::Retry(_) => TicketState::AwaitingRetry,
                TicketPhase::Completed => TicketState::Completed,
                TicketPhase::Rejected => TicketState::Rejected,
                TicketPhase::Expired => TicketState::Expired,
            })
            .collect();
        let mut report = self.engine.finish();
        report.rejected = self.stats.rejected;
        report.expired = self.stats.expired;
        Ok((report, self.stats, states))
    }

    /// Drains engine events and applies deadline expiry at the current
    /// clock.
    fn pump(&mut self) -> Result<(), SimError> {
        for ev in self.engine.drain_events() {
            match ev {
                EngineEvent::Completed { req, at } => {
                    let Some(idx) = self.by_request.remove(&req) else {
                        continue;
                    };
                    // Deadline tie-break: a completion at *exactly* the
                    // deadline instant counts as served — the contract is
                    // "delivered no later than the deadline", so expiry
                    // requires `deadline < completion`. The symmetric
                    // rule below expires waiting tickets only once the
                    // clock is strictly past the deadline.
                    let met = self.tickets[idx].deadline.is_none_or(|d| at <= d);
                    if met {
                        self.tickets[idx].phase = TicketPhase::Completed;
                        self.stats.completed += 1;
                    } else {
                        self.tickets[idx].phase = TicketPhase::Expired;
                        self.stats.expired += 1;
                    }
                }
                EngineEvent::Failed { req, at } => {
                    let Some(idx) = self.by_request.remove(&req) else {
                        continue;
                    };
                    self.schedule_retry(idx, at);
                }
            }
        }
        // Expire tickets whose deadline is strictly past while they are
        // still cancellable (waiting in the engine, or backing off). A
        // ticket already scheduled into a sweep runs to completion and is
        // classified by its completion instant above.
        let clock = self.clock;
        self.expire_where(clock, |r| r.deadline.is_some_and(|d| d < clock));
        // Resubmit due retries.
        for idx in 0..self.tickets.len() {
            if let TicketPhase::Retry(when) = self.tickets[idx].phase {
                if when <= self.clock {
                    let block = self.tickets[idx].block;
                    let req = self.engine.submit_at(block, when)?;
                    self.tickets[idx].phase = TicketPhase::Active(req);
                    self.by_request.insert(req, idx);
                    self.stats.retries += 1;
                }
            }
        }
        Ok(())
    }

    /// Moves a failed ticket into backoff, or expires it when retries
    /// are exhausted or the backoff could not beat the deadline.
    fn schedule_retry(&mut self, idx: usize, failed_at: SimTime) {
        let rec = &mut self.tickets[idx];
        if rec.attempts >= self.cfg.max_retries {
            rec.phase = TicketPhase::Expired;
            self.stats.expired += 1;
            return;
        }
        let shift = rec.attempts.min(63);
        let backoff = self
            .cfg
            .backoff_base
            .as_micros()
            .saturating_mul(1u64 << shift)
            .min(self.cfg.backoff_cap.as_micros());
        let retry_at = failed_at + Micros::from_micros(backoff);
        // A retry submitted at or after the deadline can never complete
        // in time (completion is strictly after submission), so expire
        // immediately instead of burning the attempt.
        let viable = rec.deadline.is_none_or(|d| retry_at < d);
        if !viable {
            rec.phase = TicketPhase::Expired;
            self.stats.expired += 1;
            return;
        }
        rec.attempts += 1;
        rec.phase = TicketPhase::Retry(retry_at);
    }

    /// Expires every matching ticket that is still cancellable: waiting
    /// in the engine (cancel succeeds) or backing off. In-flight work is
    /// never preempted.
    fn expire_where<F: Fn(&TicketRecord) -> bool>(&mut self, _clock: SimTime, pred: F) {
        for idx in 0..self.tickets.len() {
            if !pred(&self.tickets[idx]) {
                continue;
            }
            match self.tickets[idx].phase {
                TicketPhase::Active(req) if self.engine.cancel(req) => {
                    self.by_request.remove(&req);
                    self.tickets[idx].phase = TicketPhase::Expired;
                    self.stats.expired += 1;
                }
                TicketPhase::Retry(_) => {
                    self.tickets[idx].phase = TicketPhase::Expired;
                    self.stats.expired += 1;
                }
                _ => {}
            }
        }
    }

    /// Sheds the oldest cancellable waiting ticket (lowest index =
    /// earliest submission). Returns whether room was made.
    fn shed_oldest(&mut self) -> bool {
        for idx in 0..self.tickets.len() {
            match self.tickets[idx].phase {
                TicketPhase::Active(req) if self.engine.cancel(req) => {
                    self.by_request.remove(&req);
                    self.tickets[idx].phase = TicketPhase::Rejected;
                    self.stats.rejected += 1;
                    return true;
                }
                TicketPhase::Retry(_) => {
                    self.tickets[idx].phase = TicketPhase::Rejected;
                    self.stats.rejected += 1;
                    return true;
                }
                _ => {}
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;
    use crate::trace::NullSink;
    use tapesim_layout::{build_placement, Catalog, LayoutKind, PlacementConfig, PlacementScheme};
    use tapesim_model::{BlockSize, FaultConfig, JukeboxGeometry, TimingModel};
    use tapesim_sched::{make_scheduler, AlgorithmId, Scheduler, TapeSelectPolicy};
    use tapesim_workload::{ArrivalProcess, BlockSampler, RequestFactory};

    fn catalog() -> Catalog {
        build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig {
                layout: LayoutKind::Horizontal,
                ph_percent: 10.0,
                scheme: PlacementScheme::Replication { nr: 0 },
                sp: 0.0,
            },
        )
        .unwrap()
        .catalog
    }

    fn factory(catalog: &Catalog) -> RequestFactory {
        let sampler = BlockSampler::from_catalog(catalog, 40.0);
        RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 1 }, 1)
    }

    fn engine<'a>(
        catalog: &'a Catalog,
        timing: &'a TimingModel,
        sched: &'a mut dyn Scheduler,
        fac: &'a mut RequestFactory,
        cfg: &SimConfig,
        drives: u16,
        sink: &'a mut NullSink,
    ) -> SteppedMultiDrive<'a> {
        SteppedMultiDrive::new_external(
            catalog,
            timing,
            sched,
            fac,
            cfg,
            drives,
            &FaultConfig::NONE,
            7,
            sink,
        )
        .unwrap()
    }

    #[test]
    fn happy_path_conserves_and_completes() {
        let cat = catalog();
        let timing = TimingModel::paper_default();
        let cfg = SimConfig::quick();
        let mut sched = make_scheduler(AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth));
        let mut fac = factory(&cat);
        let mut sink = NullSink;
        let eng = engine(&cat, &timing, sched.as_mut(), &mut fac, &cfg, 2, &mut sink);
        let mut svc = JukeboxService::new(eng, ServiceConfig::default()).unwrap();
        let mut tickets = Vec::new();
        for i in 0..25u32 {
            let t = svc
                .submit(
                    BlockId(i * 41),
                    SimTime::ZERO + Micros::from_secs(u64::from(i) * 40),
                )
                .unwrap();
            tickets.push(t);
        }
        let (report, stats) = svc.drain().unwrap();
        assert!(stats.check_conservation(), "{stats:?}");
        assert_eq!(stats.submitted, 25);
        assert_eq!(stats.completed, 25);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.expired, 0);
        assert_eq!(report.served, 25);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.expired, 0);
    }

    #[test]
    fn reject_new_applies_backpressure() {
        let cat = catalog();
        let timing = TimingModel::paper_default();
        let cfg = SimConfig::quick();
        let mut sched = make_scheduler(AlgorithmId::Fifo);
        let mut fac = factory(&cat);
        let mut sink = NullSink;
        let eng = engine(&cat, &timing, sched.as_mut(), &mut fac, &cfg, 1, &mut sink);
        let mut svc = JukeboxService::new(
            eng,
            ServiceConfig {
                queue_capacity: 4,
                admission: AdmissionPolicy::RejectNew,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        // A burst at t=0 overwhelms the 4-slot queue.
        let mut rejected = 0u64;
        for i in 0..12u32 {
            match svc.submit(BlockId(i * 17), SimTime::ZERO) {
                Ok(_) => {}
                Err(SimError::Overloaded) => rejected += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(rejected > 0, "burst should trip backpressure");
        let (report, stats) = svc.drain().unwrap();
        assert!(stats.check_conservation(), "{stats:?}");
        assert_eq!(stats.rejected, rejected);
        assert_eq!(report.rejected, rejected);
        // Admitted work is eventually served.
        assert_eq!(stats.completed, stats.submitted - rejected);
    }

    #[test]
    fn shed_oldest_prefers_new_work() {
        let cat = catalog();
        let timing = TimingModel::paper_default();
        let cfg = SimConfig::quick();
        let mut sched = make_scheduler(AlgorithmId::Fifo);
        let mut fac = factory(&cat);
        let mut sink = NullSink;
        let eng = engine(&cat, &timing, sched.as_mut(), &mut fac, &cfg, 1, &mut sink);
        let mut svc = JukeboxService::new(
            eng,
            ServiceConfig {
                queue_capacity: 4,
                admission: AdmissionPolicy::ShedOldest,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let mut tickets = Vec::new();
        for i in 0..12u32 {
            // Under shed-oldest the burst is admitted by evicting the
            // head of the queue; nothing should error.
            tickets.push(svc.submit(BlockId(i * 17), SimTime::ZERO).unwrap());
        }
        // The earliest cancellable submissions were shed.
        assert_eq!(svc.state(tickets[1]), Some(TicketState::Rejected));
        let (_, stats) = svc.drain().unwrap();
        assert!(stats.check_conservation(), "{stats:?}");
        assert!(stats.rejected > 0, "shedding counts as rejection");
        assert!(stats.completed > 0);
    }

    #[test]
    fn deadlines_expire_waiting_work() {
        let cat = catalog();
        let timing = TimingModel::paper_default();
        let cfg = SimConfig::quick();
        let blocks: Vec<BlockId> = (0..40u32).map(|i| BlockId(i * 17)).collect();

        // Calibrate: learn the completion-delay spread of this burst
        // without deadlines, then set the deadline to the midpoint so
        // the head of the burst completes in time and the tail cannot.
        let (min_delay, max_delay) = {
            let mut sched = make_scheduler(AlgorithmId::Fifo);
            let mut fac = factory(&cat);
            let mut sink = NullSink;
            let mut eng = engine(&cat, &timing, sched.as_mut(), &mut fac, &cfg, 1, &mut sink);
            for b in &blocks {
                eng.submit_at(*b, SimTime::ZERO).unwrap();
            }
            eng.step_until(eng.horizon()).unwrap();
            let delays: Vec<u64> = eng
                .drain_events()
                .iter()
                .map(|e| match e {
                    EngineEvent::Completed { at, .. } => at.as_micros(),
                    EngineEvent::Failed { .. } => panic!("fault-free run failed a request"),
                })
                .collect();
            assert_eq!(delays.len(), blocks.len());
            (*delays.iter().min().unwrap(), *delays.iter().max().unwrap())
        };
        assert!(min_delay < max_delay);

        let mut sched = make_scheduler(AlgorithmId::Fifo);
        let mut fac = factory(&cat);
        let mut sink = NullSink;
        let eng = engine(&cat, &timing, sched.as_mut(), &mut fac, &cfg, 1, &mut sink);
        let mut svc = JukeboxService::new(
            eng,
            ServiceConfig {
                deadline: Some(Micros::from_micros((min_delay + max_delay) / 2)),
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        for b in &blocks {
            let _ = svc.submit(*b, SimTime::ZERO);
        }
        let (report, stats) = svc.drain().unwrap();
        assert!(stats.check_conservation(), "{stats:?}");
        assert!(stats.expired > 0, "tail of the burst must time out");
        assert_eq!(report.expired, stats.expired);
        assert!(stats.completed > 0, "head of the burst is served in time");
    }

    #[test]
    fn deadline_equal_to_completion_counts_served() {
        // Tie-break coverage: learn the exact completion instant of a
        // lone request, then re-run with the deadline set to exactly that
        // instant (must complete) and to one microsecond earlier (must
        // expire). Determinism makes the twin runs comparable.
        let cat = catalog();
        let timing = TimingModel::paper_default();
        let cfg = SimConfig::quick();
        let block = BlockId(123);
        let submit_at = SimTime::ZERO + Micros::from_secs(10);

        let completion = {
            let mut sched = make_scheduler(AlgorithmId::Fifo);
            let mut fac = factory(&cat);
            let mut sink = NullSink;
            let mut eng = engine(&cat, &timing, sched.as_mut(), &mut fac, &cfg, 1, &mut sink);
            eng.submit_at(block, submit_at).unwrap();
            eng.step_until(eng.horizon()).unwrap();
            let evs = eng.drain_events();
            match evs.as_slice() {
                [EngineEvent::Completed { at, .. }] => *at,
                other => panic!("expected one completion, got {other:?}"),
            }
        };
        let deadline_exact = completion.duration_since(submit_at);

        for (deadline, expect_completed) in [
            (deadline_exact, true),
            (deadline_exact - Micros::from_micros(1), false),
        ] {
            let mut sched = make_scheduler(AlgorithmId::Fifo);
            let mut fac = factory(&cat);
            let mut sink = NullSink;
            let eng = engine(&cat, &timing, sched.as_mut(), &mut fac, &cfg, 1, &mut sink);
            let mut svc = JukeboxService::new(
                eng,
                ServiceConfig {
                    deadline: Some(deadline),
                    ..ServiceConfig::default()
                },
            )
            .unwrap();
            let t = svc.submit(block, submit_at).unwrap();
            let (_, stats) = svc.drain().unwrap();
            assert!(stats.check_conservation(), "{stats:?}");
            if expect_completed {
                assert_eq!(stats.completed, 1, "exact-deadline completion is served");
            } else {
                assert_eq!(stats.expired, 1, "one microsecond short must expire");
            }
            let _ = t;
        }
    }

    #[test]
    fn last_drive_loss_drains_and_rejects() {
        let cat = catalog();
        let timing = TimingModel::paper_default();
        let cfg = SimConfig::quick();
        let mut sched = make_scheduler(AlgorithmId::Fifo);
        let mut fac = factory(&cat);
        let mut sink = NullSink;
        let eng = engine(&cat, &timing, sched.as_mut(), &mut fac, &cfg, 2, &mut sink);
        let mut svc = JukeboxService::new(eng, ServiceConfig::default()).unwrap();
        for i in 0..10u32 {
            svc.submit(
                BlockId(i * 29),
                SimTime::ZERO + Micros::from_secs(u64::from(i)),
            )
            .unwrap();
        }
        svc.run_until(SimTime::ZERO + Micros::from_secs(200))
            .unwrap();
        // One drive down: keep serving on the survivor.
        svc.set_drive_offline(0, true).unwrap();
        assert_eq!(svc.drives_online(), 1);
        svc.run_until(SimTime::ZERO + Micros::from_secs(400))
            .unwrap();
        // Last drive down: backlog drains (expires), new work bounces.
        svc.set_drive_offline(1, true).unwrap();
        assert_eq!(svc.drives_online(), 0);
        assert_eq!(
            svc.submit(BlockId(1), SimTime::ZERO + Micros::from_secs(401)),
            Err(SimError::Overloaded)
        );
        let (_, stats) = svc.drain().unwrap();
        assert!(stats.check_conservation(), "{stats:?}");
        assert_eq!(stats.submitted, 11);
        assert_eq!(stats.rejected, 1);
        assert!(stats.expired > 0, "backlog expired on last-drive loss");
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let cat = catalog();
        let timing = TimingModel::paper_default();
        let cfg = SimConfig::quick();
        let mut sched = make_scheduler(AlgorithmId::Fifo);
        let mut fac = factory(&cat);
        let mut sink = NullSink;
        let eng = engine(&cat, &timing, sched.as_mut(), &mut fac, &cfg, 1, &mut sink);
        assert!(JukeboxService::new(
            eng,
            ServiceConfig {
                queue_capacity: 0,
                ..ServiceConfig::default()
            }
        )
        .is_err());
    }
}
