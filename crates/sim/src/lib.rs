//! # tapesim-sim
//!
//! Discrete-event simulator for the tape-jukebox service model of
//! *Scheduling and Data Replication to Improve Tape Jukebox Performance*
//! (ICDE 1999), Section 2.2.
//!
//! The [`engine`] executes the four-step service loop (major reschedule,
//! tape switch, sweep execution with incremental scheduling of arrivals,
//! idle wait) against any [`tapesim_sched::Scheduler`], a
//! [`tapesim_layout::Catalog`], and a [`tapesim_workload::RequestFactory`].
//! [`metrics`] collects throughput/delay/switch statistics over a
//! measurement window, and [`runner`] averages runs across seeds in
//! parallel.

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod metrics;
pub mod multidrive;
pub mod runner;
pub mod writeback;

pub use engine::{run_simulation, run_simulation_with_faults, SimConfig};
pub use error::SimError;
pub use metrics::{MetricsCollector, MetricsReport};
pub use multidrive::{run_multi_drive, run_multi_drive_with_faults};
pub use runner::{default_seeds, run_one, run_paired, run_seeds, RunSpec};
pub use writeback::{run_with_writeback, FlushPolicy, WriteBackConfig, WriteBackReport};
