//! # tapesim-sim
//!
//! Discrete-event simulator for the tape-jukebox service model of
//! *Scheduling and Data Replication to Improve Tape Jukebox Performance*
//! (ICDE 1999), Section 2.2.
//!
//! The [`engine`] executes the four-step service loop (major reschedule,
//! tape switch, sweep execution with incremental scheduling of arrivals,
//! idle wait) against any [`tapesim_sched::Scheduler`], a
//! [`tapesim_layout::Catalog`], and a [`tapesim_workload::RequestFactory`].
//! [`metrics`] collects throughput/delay/switch statistics over a
//! measurement window, and [`runner`] averages runs across seeds in
//! parallel. [`trace`] records the per-event timeline of a run (mounts,
//! locates, reads, sweep boundaries, faults) for invariant checking and
//! golden-trace testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod ec;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod multidrive;
pub(crate) mod par;
pub mod queue;
pub mod runner;
pub mod service;
pub mod stepped;
pub mod trace;
pub mod writeback;

pub use checkpoint::{Checkpoint, CheckpointOpts, EngineKind};
pub use ec::run_erasure_simulation;
pub use engine::{
    run_simulation, run_simulation_checkpointed, run_simulation_traced, run_simulation_with_faults,
    SimConfig, SteppedEngine,
};
pub use error::SimError;
pub use metrics::{DelayPercentiles, MetricsCollector, MetricsReport};
pub use multidrive::{
    run_fleet, run_fleet_traced, run_multi_drive, run_multi_drive_checkpointed,
    run_multi_drive_parallel, run_multi_drive_parallel_traced, run_multi_drive_traced,
    run_multi_drive_with_faults, SteppedMultiDrive,
};
pub use queue::{BinaryHeapQueue, CalendarQueue, EventQueue, TimeKeyed};
pub use runner::{default_seeds, run_one, run_paired, run_seeds, run_seeds_pooled, RunSpec};
pub use service::{
    AdmissionPolicy, JukeboxService, ServiceConfig, ServiceStats, Ticket, TicketState,
};
pub use stepped::{EngineEvent, StepOutcome};
pub use trace::{
    check_trace, JsonlSink, MemorySink, NullSink, RingSink, TraceEvent, TraceRecord, TraceSink,
    Tracer,
};
pub use writeback::{
    run_with_writeback, run_with_writeback_checkpointed, run_with_writeback_traced, FlushPolicy,
    SteppedWriteBack, WriteBackConfig, WriteBackReport,
};
