//! Write-back simulation — exercising the paper's write-handling
//! assumption.
//!
//! Section 4 scopes the study to reads: "Writes would be directed to
//! disk-resident delta files, occasionally written to tape during idle
//! time or piggybacked on the read schedule." This module implements that
//! assumption so it can be measured instead of assumed: writes arrive as
//! a Poisson stream, accumulate in a disk-resident delta buffer, and are
//! destaged to the tapes either
//!
//! * **during idle time only** — when no reads are pending and the buffer
//!   holds at least a flush batch, the drive mounts the tape owed the
//!   most deltas and streams them out; or
//! * **piggybacked** — additionally, whenever a read sweep finishes on a
//!   tape that is owed deltas, they are appended while the tape is still
//!   mounted (saving the extra switch).
//!
//! Deltas are appended to a per-tape append region after the data blocks;
//! writing a block is assumed to cost the same as reading one. Reads
//! always have priority: a flush never starts while reads are pending,
//! and read arrivals interrupt a flush at the next block boundary.
//!
//! Like the base engine, the loop is factored into a poll-driven
//! [`SteppedWriteBack`] core: each [`SteppedWriteBack::step`] executes
//! exactly one iteration of the original monolithic loop (a read sweep,
//! an idle-time flush, or an idle period), so the batch driver
//! [`run_with_writeback`] — construct, step to completion, finish — is
//! byte-for-byte equivalent to the pre-refactor code.
#![allow(clippy::cast_possible_truncation)] // buffer and slot counts are bounded by jukebox geometry
#![allow(clippy::cast_precision_loss)] // delta counters stay far below 2^53

use std::collections::VecDeque;

use tapesim_layout::Catalog;
use tapesim_model::{
    LocateDirection, Micros, ReadContext, SimTime, SlotIndex, TapeId, TimingModel,
};
use tapesim_sched::{JukeboxView, PendingList, Scheduler, SweepPlan};
use tapesim_workload::RequestFactory;

use crate::checkpoint::{
    self, Checkpoint, CheckpointOpts, DriveCheckpoint, EngineKind, WriteBackCheckpoint,
};
use crate::engine::SimConfig;
use crate::error::SimError;
use crate::metrics::{MetricsCollector, MetricsReport};
use crate::stepped::StepOutcome;
use crate::trace::{NullSink, TraceEvent, TraceSink, Tracer, SYSTEM_DRIVE};
use crate::trace_event;

/// The single drive the write-back simulation models.
const DRIVE0: u16 = 0;

/// When delta blocks are destaged to tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushPolicy {
    /// Only during idle periods, in batches.
    IdleOnly,
    /// Idle-time batches plus piggybacking on read sweeps.
    Piggyback,
}

/// Configuration of the write stream and destage policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteBackConfig {
    /// Mean interarrival time of delta-block writes.
    pub write_mean_interarrival: Micros,
    /// Minimum buffered deltas before an idle flush starts.
    pub flush_batch: u32,
    /// Minimum deltas owed to the mounted tape before a piggyback flush
    /// is worth the extra sweep time (ignored for [`FlushPolicy::IdleOnly`]).
    pub piggyback_min: u32,
    /// Destage policy.
    pub policy: FlushPolicy,
}

/// Results of a write-back run: the read-side metrics plus write-side
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteBackReport {
    /// Read metrics, directly comparable with a write-free run.
    pub reads: MetricsReport,
    /// Delta blocks written to tape.
    pub deltas_flushed: u64,
    /// Delta blocks still buffered at the end of the run.
    pub deltas_buffered: u64,
    /// Largest delta buffer observed (blocks).
    pub peak_buffer: u64,
    /// Mean time a delta spent on disk before reaching tape, in seconds.
    pub mean_delta_age_s: f64,
    /// Flushes that were piggybacked on a read sweep.
    pub piggyback_flushes: u64,
    /// Dedicated idle-time flush mounts.
    pub idle_flushes: u64,
}

#[derive(Debug, Clone, Copy)]
struct Delta {
    created: SimTime,
    dest: TapeId,
}

/// Runs an open-queuing read workload with a concurrent write stream
/// destaged per `wb`.
///
/// # Errors
/// Returns [`SimError::ClosedArrivalStream`] if the factory's arrival
/// process is closed (write-back idle time only exists in open systems)
/// and [`SimError::InvalidConfig`] if `warmup >= duration`.
pub fn run_with_writeback(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    wb: &WriteBackConfig,
    write_seed: u64,
) -> Result<WriteBackReport, SimError> {
    run_with_writeback_traced(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        wb,
        write_seed,
        &mut NullSink,
    )
}

/// [`run_with_writeback`] with an event-trace sink attached. Read sweeps
/// emit the same vocabulary as the base engine; destage activity appears
/// as [`TraceEvent::DeltaFlush`] records.
///
/// # Errors
/// Same as [`run_with_writeback`].
#[allow(clippy::too_many_arguments)]
pub fn run_with_writeback_traced(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    wb: &WriteBackConfig,
    write_seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<WriteBackReport, SimError> {
    run_with_writeback_checkpointed(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        wb,
        write_seed,
        sink,
        &CheckpointOpts::none(),
    )
}

/// [`run_with_writeback_traced`] with checkpoint/resume support (see
/// [`crate::checkpoint`]). With [`CheckpointOpts::none`] this is exactly
/// [`run_with_writeback_traced`]. The delta buffer and the write
/// stream's RNG are part of the checkpoint, so a resumed run destages
/// the same deltas at the same instants.
///
/// # Errors
/// Same as [`run_with_writeback`], plus the checkpoint errors of
/// [`crate::checkpoint::load`] and
/// [`SimError::CheckpointConfigMismatch`] when resuming into a different
/// configuration.
#[allow(clippy::too_many_arguments)]
pub fn run_with_writeback_checkpointed(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    wb: &WriteBackConfig,
    write_seed: u64,
    sink: &mut dyn TraceSink,
    opts: &CheckpointOpts,
) -> Result<WriteBackReport, SimError> {
    let mut engine = SteppedWriteBack::new(
        catalog, timing, scheduler, factory, cfg, wb, write_seed, sink, opts,
    )?;
    while engine.step()? == StepOutcome::Running {}
    Ok(engine.finish())
}

/// Poll-driven core of the write-back simulation.
///
/// Each [`step`](SteppedWriteBack::step) executes one iteration of the
/// destage loop — a full read sweep (with optional piggyback flush), a
/// dedicated idle-time flush, or one idle period — and advances the
/// clock accordingly. [`finish`](SteppedWriteBack::finish) closes the
/// accounting and yields the [`WriteBackReport`].
///
/// Unlike [`crate::SteppedEngine`] there is no external-arrival mode:
/// the write-back study only makes sense against the generated open
/// Poisson read stream whose idle time it measures.
pub struct SteppedWriteBack<'a> {
    catalog: &'a Catalog,
    timing: &'a TimingModel,
    scheduler: &'a mut dyn Scheduler,
    factory: &'a mut RequestFactory,
    cfg: SimConfig,
    wb: WriteBackConfig,
    opts: CheckpointOpts,
    fp: u64,
    tracer: Tracer<'a>,
    block: tapesim_model::BlockSize,
    block_bytes: u64,
    end: SimTime,
    tapes: u16,
    append_at: Vec<SlotIndex>,
    wrng: WriteStream,
    next_write: Option<SimTime>,
    now: SimTime,
    mounted: Option<TapeId>,
    head: SlotIndex,
    pending: PendingList,
    metrics: MetricsCollector,
    buffer: VecDeque<Delta>,
    next_arrival: Option<SimTime>,
    deltas_flushed: u64,
    peak_buffer: u64,
    total_age: Micros,
    piggyback_flushes: u64,
    idle_flushes: u64,
    stranded: u64,
    next_ckpt_at: Option<SimTime>,
    /// How far an idle drive may advance when nothing is schedulable.
    /// Batch drivers leave this at the horizon (reproducing the
    /// monolithic loop exactly); [`SteppedWriteBack::step_until`] lowers
    /// it so a stepping caller regains control at its chosen instant.
    park: SimTime,
    done: bool,
}

impl<'a> SteppedWriteBack<'a> {
    /// Builds a stepped write-back engine whose workload, destage
    /// schedule, tracing, and checkpointing exactly match
    /// [`run_with_writeback_checkpointed`] with the same arguments.
    ///
    /// # Errors
    /// Same as [`run_with_writeback_checkpointed`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        catalog: &'a Catalog,
        timing: &'a TimingModel,
        scheduler: &'a mut dyn Scheduler,
        factory: &'a mut RequestFactory,
        cfg: &SimConfig,
        wb: &WriteBackConfig,
        write_seed: u64,
        sink: &'a mut dyn TraceSink,
        opts: &CheckpointOpts,
    ) -> Result<Self, SimError> {
        if cfg.warmup >= cfg.duration {
            return Err(SimError::InvalidConfig("warmup must precede the horizon"));
        }
        opts.validate()?;
        let fp = checkpoint::run_fingerprint(
            EngineKind::WriteBack,
            catalog,
            timing,
            scheduler.name(),
            &factory.config_tag(),
            &format!("{cfg:?}"),
            "",
            write_seed,
            1,
            &format!("{wb:?}"),
        );
        let resumed = match opts.resume() {
            Some(path) => {
                let ckpt = checkpoint::load(path)?;
                if ckpt.fingerprint != fp {
                    return Err(SimError::CheckpointConfigMismatch {
                        found: ckpt.fingerprint,
                        expected: fp,
                    });
                }
                Some(ckpt)
            }
            None => None,
        };
        // Probe the arrival stream first (this consumes one interarrival
        // draw, matching the stream position of earlier releases). On
        // resume the factory is replayed past this draw instead.
        if resumed.is_none()
            && factory.next_interarrival().is_none()
            && factory.process().initial_requests() != 0
        {
            return Err(SimError::ClosedArrivalStream);
        }
        let block = catalog.block_size();
        let block_bytes = block.bytes();
        let end = SimTime::ZERO + cfg.duration;
        let warmup_end = SimTime::ZERO + cfg.warmup;
        let tapes = catalog.geometry().tapes;
        // Append region start per tape: just past the last occupied slot.
        let append_at: Vec<SlotIndex> = catalog
            .geometry()
            .tape_ids()
            .map(|t| {
                catalog
                    .tape_contents(t)
                    .last()
                    .map(|(s, _)| s.next())
                    .unwrap_or(SlotIndex::BOT)
            })
            .collect();

        // Deterministic write stream, independent of the read stream.
        let mut wrng = WriteStream::new(wb.write_mean_interarrival, tapes, write_seed);
        let mut next_write = if resumed.is_none() {
            Some(SimTime::ZERO + wrng.next_gap())
        } else {
            None
        };

        let tracer = match &resumed {
            Some(ckpt) => Tracer::with_seq(sink, ckpt.trace_seq),
            None => Tracer::new(sink),
        };
        let mut now = SimTime::ZERO;
        let mut mounted: Option<TapeId> = None;
        let mut head = SlotIndex::BOT;
        let mut pending = PendingList::new();
        let mut metrics = MetricsCollector::new(warmup_end);
        let mut buffer: VecDeque<Delta> = VecDeque::new();
        let mut next_arrival = if resumed.is_none() {
            let gap = factory
                .next_interarrival()
                .ok_or(SimError::ClosedArrivalStream)?;
            Some(SimTime::ZERO + gap)
        } else {
            None
        };

        let mut deltas_flushed = 0u64;
        let mut peak_buffer = 0u64;
        let mut total_age = Micros::ZERO;
        let mut piggyback_flushes = 0u64;
        let mut idle_flushes = 0u64;

        if let Some(ckpt) = &resumed {
            factory
                .replay(ckpt.factory_makes, ckpt.factory_gaps)
                .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
            if factory.stream_fingerprint() != ckpt.factory_fp {
                return Err(SimError::CheckpointConfigMismatch {
                    found: ckpt.factory_fp,
                    expected: factory.stream_fingerprint(),
                });
            }
            if let Some(state) = &ckpt.sched_state {
                scheduler
                    .restore_state(state)
                    .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
            }
            let drive = ckpt.drives.first().ok_or_else(|| {
                SimError::CheckpointCorrupt("write-back checkpoint has no drive line".into())
            })?;
            let wbs = ckpt.writeback.as_ref().ok_or_else(|| {
                SimError::CheckpointCorrupt("write-back checkpoint has no writeback line".into())
            })?;
            now = SimTime::from_micros(ckpt.now_us);
            mounted = drive.mounted;
            head = drive.head;
            for req in ckpt.pending.iter() {
                pending.push(*req);
            }
            metrics = MetricsCollector::from_snapshot(&ckpt.metrics);
            next_arrival = ckpt.next_arrival_us.map(SimTime::from_micros);
            next_write = wbs.next_write_us.map(SimTime::from_micros);
            wrng.state = wbs.wrng_state;
            wrng.counter = wbs.wrng_counter;
            buffer = wbs
                .buffer
                .iter()
                .map(|&(created, dest)| Delta {
                    created: SimTime::from_micros(created),
                    dest: TapeId(dest),
                })
                .collect();
            deltas_flushed = wbs.deltas_flushed;
            peak_buffer = wbs.peak_buffer;
            total_age = Micros::from_micros(wbs.total_age_us);
            piggyback_flushes = wbs.piggyback_flushes;
            idle_flushes = wbs.idle_flushes;
        }
        // First periodic-checkpoint instant strictly after the current clock.
        let next_ckpt_at = opts
            .write_every()
            .map(|(every, _)| checkpoint::next_checkpoint_after(now, every));

        Ok(SteppedWriteBack {
            catalog,
            timing,
            scheduler,
            factory,
            cfg: *cfg,
            wb: *wb,
            opts: opts.clone(),
            fp,
            tracer,
            block,
            block_bytes,
            end,
            tapes,
            append_at,
            wrng,
            next_write,
            now,
            mounted,
            head,
            pending,
            metrics,
            buffer,
            next_arrival,
            deltas_flushed,
            peak_buffer,
            total_age,
            piggyback_flushes,
            idle_flushes,
            stranded: 0,
            next_ckpt_at,
            park: end,
            done: false,
        })
    }

    /// The engine clock: the instant of the last executed event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// True once the horizon was reached or the run saturated.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Read requests waiting on the pending list.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Delta blocks currently buffered on disk.
    pub fn buffered_deltas(&self) -> usize {
        self.buffer.len()
    }

    /// The tape currently in the drive.
    pub fn mounted(&self) -> Option<TapeId> {
        self.mounted
    }

    /// Pops every due read/write event at `at`.
    fn deliver(&mut self, at: SimTime) -> Result<(), SimError> {
        while let Some(t) = self.next_arrival {
            if t > at {
                break;
            }
            let r = self.factory.make(t);
            trace_event!(
                self.tracer,
                t,
                SYSTEM_DRIVE,
                TraceEvent::Arrival {
                    req: r.id,
                    block: r.block,
                }
            );
            self.pending.push(r);
            self.metrics.record_admission();
            let gap = self
                .factory
                .next_interarrival()
                .ok_or(SimError::ClosedArrivalStream)?;
            self.next_arrival = Some(t + gap);
        }
        while let Some(t) = self.next_write {
            if t > at {
                break;
            }
            self.buffer.push_back(Delta {
                created: t,
                dest: self.wrng.next_dest(),
            });
            self.peak_buffer = self.peak_buffer.max(self.buffer.len() as u64);
            self.next_write = Some(t + self.wrng.next_gap());
        }
        Ok(())
    }

    /// Rewinds/unmounts the current tape if needed and mounts `tape`,
    /// attributing the switch time. No-op when `tape` is already in the
    /// drive.
    fn switch_to(&mut self, tape: TapeId) {
        if self.mounted == Some(tape) {
            return;
        }
        let mut switch = Micros::ZERO;
        let mut rewind = Micros::ZERO;
        if let Some(old) = self.mounted {
            rewind = self.timing.drive.rewind(self.head, self.block);
            switch += rewind + self.timing.drive.eject();
            trace_event!(
                self.tracer,
                self.now + rewind,
                DRIVE0,
                TraceEvent::Rewind {
                    tape: old,
                    from: self.head,
                    dur: rewind,
                }
            );
            trace_event!(
                self.tracer,
                self.now + rewind,
                DRIVE0,
                TraceEvent::Unmount { tape: old }
            );
        }
        switch += self.timing.robot.exchange() + self.timing.drive.load();
        self.now += switch;
        self.metrics.add_switch_time(self.now, switch);
        self.metrics.record_tape_switch(self.now);
        trace_event!(
            self.tracer,
            self.now,
            DRIVE0,
            TraceEvent::Mount {
                tape,
                dur: switch - rewind,
            }
        );
        self.mounted = Some(tape);
        self.head = SlotIndex::BOT;
    }

    /// Executes one read sweep end-to-end, then a piggyback flush if the
    /// policy allows and enough deltas are owed to the mounted tape.
    fn run_sweep(&mut self, mut plan: SweepPlan) -> Result<(), SimError> {
        trace_event!(
            self.tracer,
            self.now,
            DRIVE0,
            TraceEvent::SweepStart {
                tape: plan.tape,
                stops: plan.list.stops() as u32,
                requests: plan.list.requests() as u32,
            }
        );
        // Read sweep, exactly as in the base engine.
        self.switch_to(plan.tape);
        let mut cur_phase = None;
        loop {
            self.deliver(self.now)?;
            if self.now >= self.end {
                self.stranded = plan.list.requests() as u64;
                self.done = true;
                return Ok(());
            }
            // Route due reads through the incremental scheduler.
            // (deliver already pushed them to pending; good enough —
            // static semantics for the write-back study keeps the
            // comparison between flush policies apples-to-apples.)
            let Some((stop, phase)) = plan.list.pop() else {
                trace_event!(
                    self.tracer,
                    self.now,
                    DRIVE0,
                    TraceEvent::SweepEnd { tape: plan.tape }
                );
                break;
            };
            if self.tracer.on && cur_phase != Some(phase) {
                cur_phase = Some(phase);
                self.tracer.push(
                    self.now,
                    DRIVE0,
                    TraceEvent::PhaseStart {
                        tape: plan.tape,
                        phase,
                    },
                );
            }
            let (lt, dir) = self.timing.drive.locate(self.head, stop.slot, self.block);
            let ctx = match dir {
                None => ReadContext::Streaming,
                Some(LocateDirection::Forward) => ReadContext::AfterForwardLocate,
                Some(LocateDirection::Reverse) => ReadContext::AfterReverseLocate,
            };
            let rt = self.timing.drive.read_block(self.block, ctx);
            trace_event!(
                self.tracer,
                self.now + lt,
                DRIVE0,
                TraceEvent::Locate {
                    tape: plan.tape,
                    from: self.head,
                    to: stop.slot,
                    dur: lt,
                }
            );
            self.now += lt + rt;
            self.metrics.add_locate_time(self.now, lt);
            self.metrics.add_read_time(self.now, rt);
            self.head = stop.slot.next();
            self.metrics.record_physical_read(self.now);
            trace_event!(
                self.tracer,
                self.now,
                DRIVE0,
                TraceEvent::Read {
                    tape: plan.tape,
                    slot: stop.slot,
                    phase,
                    dur: rt,
                }
            );
            for r in &stop.requests {
                self.metrics
                    .record_completion(r.arrival, self.now, self.block_bytes);
                trace_event!(
                    self.tracer,
                    self.now,
                    DRIVE0,
                    TraceEvent::Complete {
                        req: r.id,
                        tape: plan.tape,
                        delay: self.now.duration_since(r.arrival),
                    }
                );
            }
        }
        // Piggyback: the tape is still mounted; append its deltas.
        if self.wb.policy == FlushPolicy::Piggyback {
            let tape = plan.tape;
            let owed = self.buffer.iter().filter(|d| d.dest == tape).count();
            if owed as u32 >= self.wb.piggyback_min.max(1) && self.now < self.end {
                self.piggyback_flushes += 1;
                let before = self.deltas_flushed;
                flush_deltas(
                    self.catalog,
                    self.timing,
                    &mut self.buffer,
                    tape,
                    self.append_at[tape.index()],
                    &mut self.now,
                    &mut self.head,
                    &mut self.deltas_flushed,
                    &mut self.total_age,
                );
                trace_event!(
                    self.tracer,
                    self.now,
                    DRIVE0,
                    TraceEvent::DeltaFlush {
                        tape,
                        blocks: (self.deltas_flushed - before) as u32,
                        piggyback: true,
                    }
                );
            }
        }
        Ok(())
    }

    /// Mounts the tape owed the most deltas and streams the batch out.
    fn idle_flush(&mut self) -> Result<(), SimError> {
        // The tape owed the most deltas.
        let mut owed = vec![0u32; self.tapes as usize];
        for d in &self.buffer {
            owed[d.dest.index()] += 1;
        }
        let Some((ti, _)) = owed
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
        else {
            return Err(SimError::InvalidConfig("jukebox has no tapes"));
        };
        let tape = TapeId(ti as u16);
        self.switch_to(tape);
        self.idle_flushes += 1;
        let before = self.deltas_flushed;
        flush_deltas(
            self.catalog,
            self.timing,
            &mut self.buffer,
            tape,
            self.append_at[tape.index()],
            &mut self.now,
            &mut self.head,
            &mut self.deltas_flushed,
            &mut self.total_age,
        );
        trace_event!(
            self.tracer,
            self.now,
            DRIVE0,
            TraceEvent::DeltaFlush {
                tape,
                blocks: (self.deltas_flushed - before) as u32,
                piggyback: false,
            }
        );
        Ok(())
    }

    /// Executes one iteration of the destage loop: a read sweep, a
    /// dedicated flush, or one idle period. Returns whether more work
    /// remains before the horizon.
    ///
    /// # Errors
    /// Same as [`run_with_writeback_checkpointed`].
    pub fn step(&mut self) -> Result<StepOutcome, SimError> {
        if self.done {
            return Ok(StepOutcome::Done);
        }
        if self.now >= self.end {
            self.done = true;
            return Ok(StepOutcome::Done);
        }
        if let (Some(at), Some((every, path))) = (self.next_ckpt_at, self.opts.write_every()) {
            if self.now >= at {
                let ckpt = Checkpoint {
                    engine: EngineKind::WriteBack,
                    fingerprint: self.fp,
                    now_us: self.now.as_micros(),
                    trace_seq: self.tracer.next_seq(),
                    next_arrival_us: self.next_arrival.map(|t| t.as_micros()),
                    factory_makes: self.factory.minted(),
                    factory_gaps: self.factory.gaps_drawn(),
                    factory_fp: self.factory.stream_fingerprint(),
                    pending: self.pending.iter().cloned().collect(),
                    metrics: self.metrics.snapshot(),
                    faulted: Vec::new(),
                    sched_state: self.scheduler.checkpoint_state(),
                    faults: None,
                    drives: vec![DriveCheckpoint {
                        mounted: self.mounted,
                        head: self.head,
                        plan: None,
                        cur_phase: None,
                        free_at_us: self.now.as_micros(),
                        idle: false,
                    }],
                    multi: None,
                    writeback: Some(WriteBackCheckpoint {
                        wrng_state: self.wrng.state,
                        wrng_counter: self.wrng.counter,
                        next_write_us: self.next_write.map(|t| t.as_micros()),
                        buffer: self
                            .buffer
                            .iter()
                            .map(|d| (d.created.as_micros(), d.dest.0))
                            .collect(),
                        deltas_flushed: self.deltas_flushed,
                        peak_buffer: self.peak_buffer,
                        total_age_us: self.total_age.as_micros(),
                        piggyback_flushes: self.piggyback_flushes,
                        idle_flushes: self.idle_flushes,
                    }),
                };
                checkpoint::save(&ckpt, path)?;
                self.next_ckpt_at = Some(checkpoint::next_checkpoint_after(self.now, every));
            }
        }
        self.deliver(self.now)?;
        if self.pending.len() > self.cfg.max_pending {
            self.done = true;
            return Ok(StepOutcome::Done);
        }

        let view = JukeboxView {
            catalog: self.catalog,
            timing: self.timing,
            mounted: self.mounted,
            head: self.head,
            now: self.now,
            unavailable: &[],
            offline: &[],
            fleet: tapesim_sched::FleetView::SINGLE,
        };

        view.debug_assert_sorted();
        if let Some(plan) = self.scheduler.major_reschedule(&view, &mut self.pending) {
            self.run_sweep(plan)?;
            return Ok(if self.done {
                StepOutcome::Done
            } else {
                StepOutcome::Running
            });
        }

        // No reads pending: flush during idle time if a batch is owed.
        if self.buffer.len() as u32 >= self.wb.flush_batch {
            self.idle_flush()?;
            return Ok(StepOutcome::Running);
        }

        // Nothing to do at all: idle to the next event (or to `park`,
        // whichever is first, so a stepping caller regains control).
        let mut next = self.end;
        if let Some(t) = self.next_arrival {
            next = next.min(t);
        }
        if let Some(t) = self.next_write {
            // Waking for a write only matters once a batch could form (or
            // when there is no read stream to wake us at all).
            if (self.buffer.len() as u32) + 1 >= self.wb.flush_batch || self.next_arrival.is_none()
            {
                next = next.min(t);
            }
        }
        if next <= self.now {
            next = self.now + Micros::from_micros(1);
        }
        let capped = next.min(self.end).min(self.park);
        let dur = capped.duration_since(self.now);
        self.metrics.add_idle_time(capped, dur);
        trace_event!(self.tracer, capped, DRIVE0, TraceEvent::Idle { dur });
        self.now = capped;
        if self.now >= self.end {
            self.done = true;
            return Ok(StepOutcome::Done);
        }
        Ok(StepOutcome::Running)
    }

    /// Steps until the clock reaches `until` (clamped to the horizon) or
    /// the run finishes. When nothing is schedulable the drive parks at
    /// `until` instead of idling to the horizon. Parked idle periods are
    /// split into multiple `Idle` trace records (one per call), but the
    /// total idle time — and every metric — is unchanged.
    ///
    /// # Errors
    /// Same as [`SteppedWriteBack::step`].
    pub fn step_until(&mut self, until: SimTime) -> Result<(), SimError> {
        self.park = until.min(self.end);
        while !self.done && self.now < self.park {
            self.step()?;
        }
        self.park = self.end;
        Ok(())
    }

    /// Closes the run and produces the report. Call after [`step`]
    /// returns [`StepOutcome::Done`]; calling earlier reports the state
    /// as of the current clock.
    ///
    /// [`step`]: SteppedWriteBack::step
    pub fn finish(mut self) -> WriteBackReport {
        let window = self.cfg.duration - self.cfg.warmup;
        self.metrics.set_fault_accounting(
            0,
            Vec::new(),
            Micros::ZERO,
            self.pending.len() as u64 + self.stranded,
        );
        WriteBackReport {
            reads: self.metrics.report(window, false),
            deltas_flushed: self.deltas_flushed,
            deltas_buffered: self.buffer.len() as u64,
            peak_buffer: self.peak_buffer,
            mean_delta_age_s: if self.deltas_flushed > 0 {
                self.total_age.as_secs_f64() / self.deltas_flushed as f64
            } else {
                0.0
            },
            piggyback_flushes: self.piggyback_flushes,
            idle_flushes: self.idle_flushes,
        }
    }
}

/// Streams every buffered delta destined for `tape` into its append
/// region: one locate to the region, then sequential block writes.
#[allow(clippy::too_many_arguments)]
fn flush_deltas(
    catalog: &Catalog,
    timing: &TimingModel,
    buffer: &mut VecDeque<Delta>,
    tape: TapeId,
    append_at: SlotIndex,
    now: &mut SimTime,
    head: &mut SlotIndex,
    deltas_flushed: &mut u64,
    total_age: &mut Micros,
) {
    let block = catalog.block_size();
    let mut first = true;
    let mut kept: VecDeque<Delta> = VecDeque::with_capacity(buffer.len());
    for delta in buffer.drain(..) {
        if delta.dest != tape {
            kept.push_back(delta);
            continue;
        }
        if first {
            let (lt, _) = timing.drive.locate(*head, append_at, block);
            *now += lt;
            *head = append_at;
            first = false;
        }
        // Writing a block is modeled like reading one (a positioning
        // startup for the first block, streaming afterwards).
        let ctx = if *head == append_at {
            ReadContext::AfterForwardLocate
        } else {
            ReadContext::Streaming
        };
        let wt = timing.drive.read_block(block, ctx);
        *now += wt;
        *head = head.next();
        *deltas_flushed += 1;
        *total_age += now.duration_since(delta.created);
    }
    *buffer = kept;
}

/// Deterministic Poisson write stream with round-robin-ish destinations.
#[derive(Debug)]
struct WriteStream {
    mean: Micros,
    tapes: u16,
    state: u64,
    counter: u64,
}

impl WriteStream {
    fn new(mean: Micros, tapes: u16, seed: u64) -> Self {
        WriteStream {
            mean,
            tapes,
            state: seed | 1,
            counter: 0,
        }
    }

    /// SplitMix64 step.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_gap(&mut self) -> Micros {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let u = u.max(f64::MIN_POSITIVE);
        Micros::from_secs_f64(-u.ln() * self.mean.as_secs_f64())
    }

    fn next_dest(&mut self) -> TapeId {
        self.counter += 1;
        TapeId(((self.next_u64() % self.tapes as u64) & 0xFFFF) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{build_placement, PlacementConfig};
    use tapesim_model::{BlockSize, JukeboxGeometry};
    use tapesim_sched::{make_scheduler, AlgorithmId};
    use tapesim_workload::{ArrivalProcess, BlockSampler};

    fn run(policy: FlushPolicy, read_gap_s: u64, write_gap_s: u64) -> WriteBackReport {
        let placed = build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig::paper_baseline(),
        )
        .unwrap();
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
        let mut factory = RequestFactory::new(
            sampler,
            ArrivalProcess::OpenPoisson {
                mean_interarrival: Micros::from_secs(read_gap_s),
            },
            7,
        );
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        run_with_writeback(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            &WriteBackConfig {
                write_mean_interarrival: Micros::from_secs(write_gap_s),
                flush_batch: 5,
                piggyback_min: 2,
                policy,
            },
            99,
        )
        .expect("write-back run failed")
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn idle_flushes_drain_the_buffer() {
        let r = run(FlushPolicy::IdleOnly, 400, 200);
        assert!(r.deltas_flushed > 100, "flushed {}", r.deltas_flushed);
        assert!(r.idle_flushes > 0);
        assert_eq!(r.piggyback_flushes, 0);
        // The buffer can grow during long busy read stretches but stays
        // bounded at this write rate (~500 writes arrive in total).
        assert!(r.peak_buffer < 300, "peak {}", r.peak_buffer);
        assert!(
            r.deltas_flushed + r.deltas_buffered >= 400,
            "writes lost: {} + {}",
            r.deltas_flushed,
            r.deltas_buffered
        );
        assert!(r.reads.completed > 50);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn piggybacking_reduces_delta_age() {
        let idle = run(FlushPolicy::IdleOnly, 300, 150);
        let piggy = run(FlushPolicy::Piggyback, 300, 150);
        assert!(piggy.piggyback_flushes > 0);
        assert!(
            piggy.mean_delta_age_s < idle.mean_delta_age_s,
            "piggyback age {:.0}s vs idle-only {:.0}s",
            piggy.mean_delta_age_s,
            idle.mean_delta_age_s
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn reads_still_complete_under_write_load() {
        let quiet = run(FlushPolicy::Piggyback, 300, 1_000_000);
        let busy = run(FlushPolicy::Piggyback, 300, 120);
        assert!(busy.reads.completed > 0);
        // Destaging steals drive time, so reads do get slower under a
        // heavy write load — but the system keeps serving, not collapsing.
        assert!(busy.reads.mean_delay_s > quiet.reads.mean_delay_s);
        assert!(
            busy.reads.mean_delay_s < quiet.reads.mean_delay_s * 8.0 + 600.0,
            "busy {:.0}s vs quiet {:.0}s",
            busy.reads.mean_delay_s,
            quiet.reads.mean_delay_s
        );
    }

    #[test]
    fn closed_read_workload_is_rejected() {
        let placed = build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig::paper_baseline(),
        )
        .unwrap();
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
        let mut factory =
            RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 10 }, 7);
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let err = run_with_writeback(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            &WriteBackConfig {
                write_mean_interarrival: Micros::from_secs(100),
                flush_batch: 5,
                piggyback_min: 2,
                policy: FlushPolicy::IdleOnly,
            },
            99,
        );
        assert_eq!(err, Err(SimError::ClosedArrivalStream));
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn writeback_is_deterministic() {
        let a = run(FlushPolicy::Piggyback, 300, 150);
        let b = run(FlushPolicy::Piggyback, 300, 150);
        assert_eq!(a, b);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn stepped_writeback_matches_batch() {
        let placed = build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig::paper_baseline(),
        )
        .unwrap();
        let timing = TimingModel::paper_default();
        let wb = WriteBackConfig {
            write_mean_interarrival: Micros::from_secs(150),
            flush_batch: 5,
            piggyback_min: 2,
            policy: FlushPolicy::Piggyback,
        };
        let mk_factory = || {
            RequestFactory::new(
                BlockSampler::from_catalog(&placed.catalog, 40.0),
                ArrivalProcess::OpenPoisson {
                    mean_interarrival: Micros::from_secs(300),
                },
                7,
            )
        };
        let batch = {
            let mut factory = mk_factory();
            let mut sched = make_scheduler(AlgorithmId::paper_recommended());
            run_with_writeback(
                &placed.catalog,
                &timing,
                sched.as_mut(),
                &mut factory,
                &SimConfig::quick(),
                &wb,
                99,
            )
            .unwrap()
        };
        let stepped = {
            let mut factory = mk_factory();
            let mut sched = make_scheduler(AlgorithmId::paper_recommended());
            let mut sink = NullSink;
            let mut engine = SteppedWriteBack::new(
                &placed.catalog,
                &timing,
                sched.as_mut(),
                &mut factory,
                &SimConfig::quick(),
                &wb,
                99,
                &mut sink,
                &CheckpointOpts::none(),
            )
            .unwrap();
            // Drive it through step_until checkpoints rather than one
            // straight run; the split idle periods must not change any
            // metric.
            engine
                .step_until(SimTime::ZERO + Micros::from_secs(20_000))
                .unwrap();
            assert!(!engine.is_done());
            let _ = (engine.now(), engine.pending_len(), engine.buffered_deltas());
            engine
                .step_until(SimTime::ZERO + Micros::from_secs(100_000))
                .unwrap();
            while engine.step().unwrap() == StepOutcome::Running {}
            engine.finish()
        };
        assert_eq!(batch, stepped);
    }
}
