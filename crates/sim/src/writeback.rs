//! Write-back simulation — exercising the paper's write-handling
//! assumption.
//!
//! Section 4 scopes the study to reads: "Writes would be directed to
//! disk-resident delta files, occasionally written to tape during idle
//! time or piggybacked on the read schedule." This module implements that
//! assumption so it can be measured instead of assumed: writes arrive as
//! a Poisson stream, accumulate in a disk-resident delta buffer, and are
//! destaged to the tapes either
//!
//! * **during idle time only** — when no reads are pending and the buffer
//!   holds at least a flush batch, the drive mounts the tape owed the
//!   most deltas and streams them out; or
//! * **piggybacked** — additionally, whenever a read sweep finishes on a
//!   tape that is owed deltas, they are appended while the tape is still
//!   mounted (saving the extra switch).
//!
//! Deltas are appended to a per-tape append region after the data blocks;
//! writing a block is assumed to cost the same as reading one. Reads
//! always have priority: a flush never starts while reads are pending,
//! and read arrivals interrupt a flush at the next block boundary.
#![allow(clippy::cast_possible_truncation)] // buffer and slot counts are bounded by jukebox geometry
#![allow(clippy::cast_precision_loss)] // delta counters stay far below 2^53

use std::collections::VecDeque;

use tapesim_layout::Catalog;
use tapesim_model::{
    LocateDirection, Micros, ReadContext, SimTime, SlotIndex, TapeId, TimingModel,
};
use tapesim_sched::{JukeboxView, PendingList, Scheduler};
use tapesim_workload::RequestFactory;

use crate::checkpoint::{
    self, Checkpoint, CheckpointOpts, DriveCheckpoint, EngineKind, WriteBackCheckpoint,
};
use crate::engine::SimConfig;
use crate::error::SimError;
use crate::metrics::{MetricsCollector, MetricsReport};
use crate::trace::{NullSink, TraceEvent, TraceSink, Tracer, SYSTEM_DRIVE};
use crate::trace_event;

/// The single drive the write-back simulation models.
const DRIVE0: u16 = 0;

/// When delta blocks are destaged to tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushPolicy {
    /// Only during idle periods, in batches.
    IdleOnly,
    /// Idle-time batches plus piggybacking on read sweeps.
    Piggyback,
}

/// Configuration of the write stream and destage policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteBackConfig {
    /// Mean interarrival time of delta-block writes.
    pub write_mean_interarrival: Micros,
    /// Minimum buffered deltas before an idle flush starts.
    pub flush_batch: u32,
    /// Minimum deltas owed to the mounted tape before a piggyback flush
    /// is worth the extra sweep time (ignored for [`FlushPolicy::IdleOnly`]).
    pub piggyback_min: u32,
    /// Destage policy.
    pub policy: FlushPolicy,
}

/// Results of a write-back run: the read-side metrics plus write-side
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteBackReport {
    /// Read metrics, directly comparable with a write-free run.
    pub reads: MetricsReport,
    /// Delta blocks written to tape.
    pub deltas_flushed: u64,
    /// Delta blocks still buffered at the end of the run.
    pub deltas_buffered: u64,
    /// Largest delta buffer observed (blocks).
    pub peak_buffer: u64,
    /// Mean time a delta spent on disk before reaching tape, in seconds.
    pub mean_delta_age_s: f64,
    /// Flushes that were piggybacked on a read sweep.
    pub piggyback_flushes: u64,
    /// Dedicated idle-time flush mounts.
    pub idle_flushes: u64,
}

#[derive(Debug, Clone, Copy)]
struct Delta {
    created: SimTime,
    dest: TapeId,
}

/// Runs an open-queuing read workload with a concurrent write stream
/// destaged per `wb`.
///
/// # Errors
/// Returns [`SimError::ClosedArrivalStream`] if the factory's arrival
/// process is closed (write-back idle time only exists in open systems)
/// and [`SimError::InvalidConfig`] if `warmup >= duration`.
pub fn run_with_writeback(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    wb: &WriteBackConfig,
    write_seed: u64,
) -> Result<WriteBackReport, SimError> {
    run_with_writeback_traced(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        wb,
        write_seed,
        &mut NullSink,
    )
}

/// [`run_with_writeback`] with an event-trace sink attached. Read sweeps
/// emit the same vocabulary as the base engine; destage activity appears
/// as [`TraceEvent::DeltaFlush`] records.
///
/// # Errors
/// Same as [`run_with_writeback`].
#[allow(clippy::too_many_arguments)]
pub fn run_with_writeback_traced(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    wb: &WriteBackConfig,
    write_seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<WriteBackReport, SimError> {
    run_with_writeback_checkpointed(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        wb,
        write_seed,
        sink,
        &CheckpointOpts::none(),
    )
}

/// [`run_with_writeback_traced`] with checkpoint/resume support (see
/// [`crate::checkpoint`]). With [`CheckpointOpts::none`] this is exactly
/// [`run_with_writeback_traced`]. The delta buffer and the write
/// stream's RNG are part of the checkpoint, so a resumed run destages
/// the same deltas at the same instants.
///
/// # Errors
/// Same as [`run_with_writeback`], plus the checkpoint errors of
/// [`crate::checkpoint::load`] and
/// [`SimError::CheckpointConfigMismatch`] when resuming into a different
/// configuration.
#[allow(clippy::too_many_arguments)]
pub fn run_with_writeback_checkpointed(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    wb: &WriteBackConfig,
    write_seed: u64,
    sink: &mut dyn TraceSink,
    opts: &CheckpointOpts,
) -> Result<WriteBackReport, SimError> {
    if cfg.warmup >= cfg.duration {
        return Err(SimError::InvalidConfig("warmup must precede the horizon"));
    }
    opts.validate()?;
    let fp = checkpoint::run_fingerprint(
        EngineKind::WriteBack,
        catalog,
        timing,
        scheduler.name(),
        &factory.config_tag(),
        &format!("{cfg:?}"),
        "",
        write_seed,
        1,
        &format!("{wb:?}"),
    );
    let resumed = match opts.resume() {
        Some(path) => {
            let ckpt = checkpoint::load(path)?;
            if ckpt.fingerprint != fp {
                return Err(SimError::CheckpointConfigMismatch {
                    found: ckpt.fingerprint,
                    expected: fp,
                });
            }
            Some(ckpt)
        }
        None => None,
    };
    // Probe the arrival stream first (this consumes one interarrival draw,
    // matching the stream position of earlier releases). On resume the
    // factory is replayed past this draw instead.
    if resumed.is_none()
        && factory.next_interarrival().is_none()
        && factory.process().initial_requests() != 0
    {
        return Err(SimError::ClosedArrivalStream);
    }
    let block = catalog.block_size();
    let block_bytes = block.bytes();
    let end = SimTime::ZERO + cfg.duration;
    let warmup_end = SimTime::ZERO + cfg.warmup;
    let tapes = catalog.geometry().tapes;
    // Append region start per tape: just past the last occupied slot.
    let append_at: Vec<SlotIndex> = catalog
        .geometry()
        .tape_ids()
        .map(|t| {
            catalog
                .tape_contents(t)
                .last()
                .map(|(s, _)| s.next())
                .unwrap_or(SlotIndex::BOT)
        })
        .collect();

    // Deterministic write stream, independent of the read stream.
    let mut wrng = WriteStream::new(wb.write_mean_interarrival, tapes, write_seed);
    let mut next_write = if resumed.is_none() {
        Some(SimTime::ZERO + wrng.next_gap())
    } else {
        None
    };

    let mut tracer = match &resumed {
        Some(ckpt) => Tracer::with_seq(sink, ckpt.trace_seq),
        None => Tracer::new(sink),
    };
    let mut now = SimTime::ZERO;
    let mut mounted: Option<TapeId> = None;
    let mut head = SlotIndex::BOT;
    let mut pending = PendingList::new();
    let mut metrics = MetricsCollector::new(warmup_end);
    let mut buffer: VecDeque<Delta> = VecDeque::new();
    let mut next_arrival = if resumed.is_none() {
        let gap = factory
            .next_interarrival()
            .ok_or(SimError::ClosedArrivalStream)?;
        Some(SimTime::ZERO + gap)
    } else {
        None
    };

    let mut deltas_flushed = 0u64;
    let mut peak_buffer = 0u64;
    let mut total_age = Micros::ZERO;
    let mut piggyback_flushes = 0u64;
    let mut idle_flushes = 0u64;
    let mut stranded: u64 = 0;

    if let Some(ckpt) = &resumed {
        factory
            .replay(ckpt.factory_makes, ckpt.factory_gaps)
            .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
        if factory.stream_fingerprint() != ckpt.factory_fp {
            return Err(SimError::CheckpointConfigMismatch {
                found: ckpt.factory_fp,
                expected: factory.stream_fingerprint(),
            });
        }
        if let Some(state) = &ckpt.sched_state {
            scheduler
                .restore_state(state)
                .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
        }
        let drive = ckpt.drives.first().ok_or_else(|| {
            SimError::CheckpointCorrupt("write-back checkpoint has no drive line".into())
        })?;
        let wbs = ckpt.writeback.as_ref().ok_or_else(|| {
            SimError::CheckpointCorrupt("write-back checkpoint has no writeback line".into())
        })?;
        now = SimTime::from_micros(ckpt.now_us);
        mounted = drive.mounted;
        head = drive.head;
        for req in ckpt.pending.iter() {
            pending.push(*req);
        }
        metrics = MetricsCollector::from_snapshot(&ckpt.metrics);
        next_arrival = ckpt.next_arrival_us.map(SimTime::from_micros);
        next_write = wbs.next_write_us.map(SimTime::from_micros);
        wrng.state = wbs.wrng_state;
        wrng.counter = wbs.wrng_counter;
        buffer = wbs
            .buffer
            .iter()
            .map(|&(created, dest)| Delta {
                created: SimTime::from_micros(created),
                dest: TapeId(dest),
            })
            .collect();
        deltas_flushed = wbs.deltas_flushed;
        peak_buffer = wbs.peak_buffer;
        total_age = Micros::from_micros(wbs.total_age_us);
        piggyback_flushes = wbs.piggyback_flushes;
        idle_flushes = wbs.idle_flushes;
    }
    // First periodic-checkpoint instant strictly after the current clock.
    let mut next_ckpt_at = opts
        .write_every()
        .map(|(every, _)| checkpoint::next_checkpoint_after(now, every));

    // Pops every due read/write event at `now`.
    macro_rules! deliver {
        ($now:expr) => {{
            while let Some(t) = next_arrival {
                if t > $now {
                    break;
                }
                let r = factory.make(t);
                trace_event!(
                    tracer,
                    t,
                    SYSTEM_DRIVE,
                    TraceEvent::Arrival {
                        req: r.id,
                        block: r.block,
                    }
                );
                pending.push(r);
                metrics.record_admission();
                let gap = factory
                    .next_interarrival()
                    .ok_or(SimError::ClosedArrivalStream)?;
                next_arrival = Some(t + gap);
            }
            while let Some(t) = next_write {
                if t > $now {
                    break;
                }
                buffer.push_back(Delta {
                    created: t,
                    dest: wrng.next_dest(),
                });
                peak_buffer = peak_buffer.max(buffer.len() as u64);
                next_write = Some(t + wrng.next_gap());
            }
        }};
    }

    'outer: while now < end {
        if let (Some(at), Some((every, path))) = (next_ckpt_at, opts.write_every()) {
            if now >= at {
                let ckpt = Checkpoint {
                    engine: EngineKind::WriteBack,
                    fingerprint: fp,
                    now_us: now.as_micros(),
                    trace_seq: tracer.next_seq(),
                    next_arrival_us: next_arrival.map(|t| t.as_micros()),
                    factory_makes: factory.minted(),
                    factory_gaps: factory.gaps_drawn(),
                    factory_fp: factory.stream_fingerprint(),
                    pending: pending.iter().cloned().collect(),
                    metrics: metrics.snapshot(),
                    faulted: Vec::new(),
                    sched_state: scheduler.checkpoint_state(),
                    faults: None,
                    drives: vec![DriveCheckpoint {
                        mounted,
                        head,
                        plan: None,
                        cur_phase: None,
                        free_at_us: now.as_micros(),
                        idle: false,
                    }],
                    multi: None,
                    writeback: Some(WriteBackCheckpoint {
                        wrng_state: wrng.state,
                        wrng_counter: wrng.counter,
                        next_write_us: next_write.map(|t| t.as_micros()),
                        buffer: buffer
                            .iter()
                            .map(|d| (d.created.as_micros(), d.dest.0))
                            .collect(),
                        deltas_flushed,
                        peak_buffer,
                        total_age_us: total_age.as_micros(),
                        piggyback_flushes,
                        idle_flushes,
                    }),
                };
                checkpoint::save(&ckpt, path)?;
                next_ckpt_at = Some(checkpoint::next_checkpoint_after(now, every));
            }
        }
        deliver!(now);
        if pending.len() > cfg.max_pending {
            break 'outer;
        }

        let view = JukeboxView {
            catalog,
            timing,
            mounted,
            head,
            now,
            unavailable: &[],
            offline: &[],
        };
        if let Some(mut plan) = scheduler.major_reschedule(&view, &mut pending) {
            trace_event!(
                tracer,
                now,
                DRIVE0,
                TraceEvent::SweepStart {
                    tape: plan.tape,
                    stops: plan.list.stops() as u32,
                    requests: plan.list.requests() as u32,
                }
            );
            // Read sweep, exactly as in the base engine.
            if mounted != Some(plan.tape) {
                let mut switch = Micros::ZERO;
                let mut rewind = Micros::ZERO;
                if let Some(old) = mounted {
                    rewind = timing.drive.rewind(head, block);
                    switch += rewind + timing.drive.eject();
                    trace_event!(
                        tracer,
                        now + rewind,
                        DRIVE0,
                        TraceEvent::Rewind {
                            tape: old,
                            from: head,
                            dur: rewind,
                        }
                    );
                    trace_event!(
                        tracer,
                        now + rewind,
                        DRIVE0,
                        TraceEvent::Unmount { tape: old }
                    );
                }
                switch += timing.robot.exchange() + timing.drive.load();
                now += switch;
                metrics.add_switch_time(now, switch);
                metrics.record_tape_switch(now);
                trace_event!(
                    tracer,
                    now,
                    DRIVE0,
                    TraceEvent::Mount {
                        tape: plan.tape,
                        dur: switch - rewind,
                    }
                );
                mounted = Some(plan.tape);
                head = SlotIndex::BOT;
            }
            let mut cur_phase = None;
            loop {
                deliver!(now);
                if now >= end {
                    stranded = plan.list.requests() as u64;
                    break 'outer;
                }
                // Route due reads through the incremental scheduler.
                // (deliver! already pushed them to pending; good enough —
                // static semantics for the write-back study keeps the
                // comparison between flush policies apples-to-apples.)
                let Some((stop, phase)) = plan.list.pop() else {
                    trace_event!(
                        tracer,
                        now,
                        DRIVE0,
                        TraceEvent::SweepEnd { tape: plan.tape }
                    );
                    break;
                };
                if tracer.on && cur_phase != Some(phase) {
                    cur_phase = Some(phase);
                    tracer.push(
                        now,
                        DRIVE0,
                        TraceEvent::PhaseStart {
                            tape: plan.tape,
                            phase,
                        },
                    );
                }
                let (lt, dir) = timing.drive.locate(head, stop.slot, block);
                let ctx = match dir {
                    None => ReadContext::Streaming,
                    Some(LocateDirection::Forward) => ReadContext::AfterForwardLocate,
                    Some(LocateDirection::Reverse) => ReadContext::AfterReverseLocate,
                };
                let rt = timing.drive.read_block(block, ctx);
                trace_event!(
                    tracer,
                    now + lt,
                    DRIVE0,
                    TraceEvent::Locate {
                        tape: plan.tape,
                        from: head,
                        to: stop.slot,
                        dur: lt,
                    }
                );
                now += lt + rt;
                metrics.add_locate_time(now, lt);
                metrics.add_read_time(now, rt);
                head = stop.slot.next();
                metrics.record_physical_read(now);
                trace_event!(
                    tracer,
                    now,
                    DRIVE0,
                    TraceEvent::Read {
                        tape: plan.tape,
                        slot: stop.slot,
                        phase,
                        dur: rt,
                    }
                );
                for r in &stop.requests {
                    metrics.record_completion(r.arrival, now, block_bytes);
                    trace_event!(
                        tracer,
                        now,
                        DRIVE0,
                        TraceEvent::Complete {
                            req: r.id,
                            tape: plan.tape,
                            delay: now.duration_since(r.arrival),
                        }
                    );
                }
            }
            // Piggyback: the tape is still mounted; append its deltas.
            if wb.policy == FlushPolicy::Piggyback {
                let tape = plan.tape;
                let owed = buffer.iter().filter(|d| d.dest == tape).count();
                if owed as u32 >= wb.piggyback_min.max(1) && now < end {
                    piggyback_flushes += 1;
                    let before = deltas_flushed;
                    flush_deltas(
                        catalog,
                        timing,
                        &mut buffer,
                        tape,
                        append_at[tape.index()],
                        &mut now,
                        &mut head,
                        &mut deltas_flushed,
                        &mut total_age,
                    );
                    trace_event!(
                        tracer,
                        now,
                        DRIVE0,
                        TraceEvent::DeltaFlush {
                            tape,
                            blocks: (deltas_flushed - before) as u32,
                            piggyback: true,
                        }
                    );
                }
            }
            continue;
        }

        // No reads pending: flush during idle time if a batch is owed.
        if buffer.len() as u32 >= wb.flush_batch {
            // The tape owed the most deltas.
            let mut owed = vec![0u32; tapes as usize];
            for d in &buffer {
                owed[d.dest.index()] += 1;
            }
            let Some((ti, _)) = owed
                .iter()
                .enumerate()
                .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            else {
                return Err(SimError::InvalidConfig("jukebox has no tapes"));
            };
            let tape = TapeId(ti as u16);
            if mounted != Some(tape) {
                let mut switch = Micros::ZERO;
                let mut rewind = Micros::ZERO;
                if let Some(old) = mounted {
                    rewind = timing.drive.rewind(head, block);
                    switch += rewind + timing.drive.eject();
                    trace_event!(
                        tracer,
                        now + rewind,
                        DRIVE0,
                        TraceEvent::Rewind {
                            tape: old,
                            from: head,
                            dur: rewind,
                        }
                    );
                    trace_event!(
                        tracer,
                        now + rewind,
                        DRIVE0,
                        TraceEvent::Unmount { tape: old }
                    );
                }
                switch += timing.robot.exchange() + timing.drive.load();
                now += switch;
                metrics.add_switch_time(now, switch);
                metrics.record_tape_switch(now);
                trace_event!(
                    tracer,
                    now,
                    DRIVE0,
                    TraceEvent::Mount {
                        tape,
                        dur: switch - rewind,
                    }
                );
                mounted = Some(tape);
                head = SlotIndex::BOT;
            }
            idle_flushes += 1;
            let before = deltas_flushed;
            flush_deltas(
                catalog,
                timing,
                &mut buffer,
                tape,
                append_at[tape.index()],
                &mut now,
                &mut head,
                &mut deltas_flushed,
                &mut total_age,
            );
            trace_event!(
                tracer,
                now,
                DRIVE0,
                TraceEvent::DeltaFlush {
                    tape,
                    blocks: (deltas_flushed - before) as u32,
                    piggyback: false,
                }
            );
            continue;
        }

        // Nothing to do at all: idle to the next event.
        let mut next = end;
        if let Some(t) = next_arrival {
            next = next.min(t);
        }
        if let Some(t) = next_write {
            // Waking for a write only matters once a batch could form (or
            // when there is no read stream to wake us at all).
            if (buffer.len() as u32) + 1 >= wb.flush_batch || next_arrival.is_none() {
                next = next.min(t);
            }
        }
        if next <= now {
            next = now + Micros::from_micros(1);
        }
        let capped = next.min(end);
        let dur = capped.duration_since(now);
        metrics.add_idle_time(capped, dur);
        trace_event!(tracer, capped, DRIVE0, TraceEvent::Idle { dur });
        now = capped;
        if now >= end {
            break;
        }
    }

    let window = cfg.duration - cfg.warmup;
    metrics.set_fault_accounting(0, Vec::new(), Micros::ZERO, pending.len() as u64 + stranded);
    Ok(WriteBackReport {
        reads: metrics.report(window, false),
        deltas_flushed,
        deltas_buffered: buffer.len() as u64,
        peak_buffer,
        mean_delta_age_s: if deltas_flushed > 0 {
            total_age.as_secs_f64() / deltas_flushed as f64
        } else {
            0.0
        },
        piggyback_flushes,
        idle_flushes,
    })
}

/// Streams every buffered delta destined for `tape` into its append
/// region: one locate to the region, then sequential block writes.
#[allow(clippy::too_many_arguments)]
fn flush_deltas(
    catalog: &Catalog,
    timing: &TimingModel,
    buffer: &mut VecDeque<Delta>,
    tape: TapeId,
    append_at: SlotIndex,
    now: &mut SimTime,
    head: &mut SlotIndex,
    deltas_flushed: &mut u64,
    total_age: &mut Micros,
) {
    let block = catalog.block_size();
    let mut first = true;
    let mut kept: VecDeque<Delta> = VecDeque::with_capacity(buffer.len());
    for delta in buffer.drain(..) {
        if delta.dest != tape {
            kept.push_back(delta);
            continue;
        }
        if first {
            let (lt, _) = timing.drive.locate(*head, append_at, block);
            *now += lt;
            *head = append_at;
            first = false;
        }
        // Writing a block is modeled like reading one (a positioning
        // startup for the first block, streaming afterwards).
        let ctx = if *head == append_at {
            ReadContext::AfterForwardLocate
        } else {
            ReadContext::Streaming
        };
        let wt = timing.drive.read_block(block, ctx);
        *now += wt;
        *head = head.next();
        *deltas_flushed += 1;
        *total_age += now.duration_since(delta.created);
    }
    *buffer = kept;
}

/// Deterministic Poisson write stream with round-robin-ish destinations.
#[derive(Debug)]
struct WriteStream {
    mean: Micros,
    tapes: u16,
    state: u64,
    counter: u64,
}

impl WriteStream {
    fn new(mean: Micros, tapes: u16, seed: u64) -> Self {
        WriteStream {
            mean,
            tapes,
            state: seed | 1,
            counter: 0,
        }
    }

    /// SplitMix64 step.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_gap(&mut self) -> Micros {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let u = u.max(f64::MIN_POSITIVE);
        Micros::from_secs_f64(-u.ln() * self.mean.as_secs_f64())
    }

    fn next_dest(&mut self) -> TapeId {
        self.counter += 1;
        TapeId(((self.next_u64() % self.tapes as u64) & 0xFFFF) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{build_placement, PlacementConfig};
    use tapesim_model::{BlockSize, JukeboxGeometry};
    use tapesim_sched::{make_scheduler, AlgorithmId};
    use tapesim_workload::{ArrivalProcess, BlockSampler};

    fn run(policy: FlushPolicy, read_gap_s: u64, write_gap_s: u64) -> WriteBackReport {
        let placed = build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig::paper_baseline(),
        )
        .unwrap();
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
        let mut factory = RequestFactory::new(
            sampler,
            ArrivalProcess::OpenPoisson {
                mean_interarrival: Micros::from_secs(read_gap_s),
            },
            7,
        );
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        run_with_writeback(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            &WriteBackConfig {
                write_mean_interarrival: Micros::from_secs(write_gap_s),
                flush_batch: 5,
                piggyback_min: 2,
                policy,
            },
            99,
        )
        .expect("write-back run failed")
    }

    #[test]
    fn idle_flushes_drain_the_buffer() {
        let r = run(FlushPolicy::IdleOnly, 400, 200);
        assert!(r.deltas_flushed > 100, "flushed {}", r.deltas_flushed);
        assert!(r.idle_flushes > 0);
        assert_eq!(r.piggyback_flushes, 0);
        // The buffer can grow during long busy read stretches but stays
        // bounded at this write rate (~500 writes arrive in total).
        assert!(r.peak_buffer < 300, "peak {}", r.peak_buffer);
        assert!(
            r.deltas_flushed + r.deltas_buffered >= 400,
            "writes lost: {} + {}",
            r.deltas_flushed,
            r.deltas_buffered
        );
        assert!(r.reads.completed > 50);
    }

    #[test]
    fn piggybacking_reduces_delta_age() {
        let idle = run(FlushPolicy::IdleOnly, 300, 150);
        let piggy = run(FlushPolicy::Piggyback, 300, 150);
        assert!(piggy.piggyback_flushes > 0);
        assert!(
            piggy.mean_delta_age_s < idle.mean_delta_age_s,
            "piggyback age {:.0}s vs idle-only {:.0}s",
            piggy.mean_delta_age_s,
            idle.mean_delta_age_s
        );
    }

    #[test]
    fn reads_still_complete_under_write_load() {
        let quiet = run(FlushPolicy::Piggyback, 300, 1_000_000);
        let busy = run(FlushPolicy::Piggyback, 300, 120);
        assert!(busy.reads.completed > 0);
        // Destaging steals drive time, so reads do get slower under a
        // heavy write load — but the system keeps serving, not collapsing.
        assert!(busy.reads.mean_delay_s > quiet.reads.mean_delay_s);
        assert!(
            busy.reads.mean_delay_s < quiet.reads.mean_delay_s * 8.0 + 600.0,
            "busy {:.0}s vs quiet {:.0}s",
            busy.reads.mean_delay_s,
            quiet.reads.mean_delay_s
        );
    }

    #[test]
    fn closed_read_workload_is_rejected() {
        let placed = build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig::paper_baseline(),
        )
        .unwrap();
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
        let mut factory =
            RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 10 }, 7);
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let err = run_with_writeback(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            &WriteBackConfig {
                write_mean_interarrival: Micros::from_secs(100),
                flush_batch: 5,
                piggyback_min: 2,
                policy: FlushPolicy::IdleOnly,
            },
            99,
        );
        assert_eq!(err, Err(SimError::ClosedArrivalStream));
    }

    #[test]
    fn writeback_is_deterministic() {
        let a = run(FlushPolicy::Piggyback, 300, 150);
        let b = run(FlushPolicy::Piggyback, 300, 150);
        assert_eq!(a, b);
    }
}
