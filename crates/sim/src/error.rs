//! Typed simulation errors.
//!
//! The simulator used to `panic!`/`expect` on impossible-by-construction
//! conditions (a closed workload yielding no interarrival gap, a drive
//! count of zero). Those conditions are reachable from configuration, so
//! they are surfaced as values instead: every entry point returns
//! `Result<_, SimError>` and the process never aborts on bad input.

use std::fmt;

/// An error raised by a simulation entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A configuration parameter is out of range or inconsistent (for
    /// example `warmup >= duration`, zero drives, more drives than tapes,
    /// or an invalid fault probability).
    InvalidConfig(&'static str),
    /// An open-queuing code path asked the workload factory for an
    /// interarrival gap but the factory models a closed queue.
    ClosedArrivalStream,
    /// A per-seed simulation worker thread panicked; the payload is the
    /// panic message when one was available.
    WorkerPanicked(String),
    /// A checkpoint file could not be read or written; the payload names
    /// the path and the underlying I/O error.
    CheckpointIo(String),
    /// A checkpoint file was written by an incompatible schema version;
    /// the payload carries the found and expected versions.
    CheckpointVersion {
        /// Schema version found in the file header.
        found: u32,
        /// Schema version this build writes and understands.
        expected: u32,
    },
    /// A checkpoint file is structurally invalid: truncated (footer
    /// missing or line count short), a malformed line, or a field out of
    /// range. The payload describes what was wrong.
    CheckpointCorrupt(String),
    /// The service admission queue is full and the admission policy
    /// rejects new work ([`crate::service::AdmissionPolicy::RejectNew`],
    /// or shed-oldest with nothing cancellable to shed). Typed
    /// backpressure: the caller should retry later or slow down.
    Overloaded,
    /// A checkpoint was taken under a different simulation configuration
    /// (engine, scheduler, workload, timing, geometry, fault plan, or
    /// seed) than the one it is being resumed into. Resuming would not
    /// reproduce the uninterrupted run, so it is refused.
    CheckpointConfigMismatch {
        /// Config fingerprint recorded in the checkpoint.
        found: u64,
        /// Config fingerprint of the resuming run.
        expected: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
            SimError::ClosedArrivalStream => {
                write!(f, "open-queuing arrivals requested from a closed workload")
            }
            SimError::WorkerPanicked(msg) => write!(f, "simulation worker panicked: {msg}"),
            SimError::CheckpointIo(msg) => write!(f, "checkpoint i/o error: {msg}"),
            SimError::CheckpointVersion { found, expected } => write!(
                f,
                "checkpoint schema version {found} is not the supported version {expected}"
            ),
            SimError::Overloaded => {
                write!(f, "admission queue full: request rejected (backpressure)")
            }
            SimError::CheckpointCorrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            SimError::CheckpointConfigMismatch { found, expected } => write!(
                f,
                "checkpoint was taken under a different configuration \
                 (fingerprint {found:#018x}, resuming run has {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(SimError::InvalidConfig("warmup must precede the horizon")
            .to_string()
            .contains("warmup"));
        assert!(SimError::ClosedArrivalStream.to_string().contains("closed"));
        assert!(SimError::WorkerPanicked("boom".into())
            .to_string()
            .contains("boom"));
    }
}
