//! Typed simulation errors.
//!
//! The simulator used to `panic!`/`expect` on impossible-by-construction
//! conditions (a closed workload yielding no interarrival gap, a drive
//! count of zero). Those conditions are reachable from configuration, so
//! they are surfaced as values instead: every entry point returns
//! `Result<_, SimError>` and the process never aborts on bad input.

use std::fmt;

/// An error raised by a simulation entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A configuration parameter is out of range or inconsistent (for
    /// example `warmup >= duration`, zero drives, more drives than tapes,
    /// or an invalid fault probability).
    InvalidConfig(&'static str),
    /// An open-queuing code path asked the workload factory for an
    /// interarrival gap but the factory models a closed queue.
    ClosedArrivalStream,
    /// A per-seed simulation worker thread panicked; the payload is the
    /// panic message when one was available.
    WorkerPanicked(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
            SimError::ClosedArrivalStream => {
                write!(f, "open-queuing arrivals requested from a closed workload")
            }
            SimError::WorkerPanicked(msg) => write!(f, "simulation worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(SimError::InvalidConfig("warmup must precede the horizon")
            .to_string()
            .contains("warmup"));
        assert!(SimError::ClosedArrivalStream.to_string().contains("closed"));
        assert!(SimError::WorkerPanicked("boom".into())
            .to_string()
            .contains("boom"));
    }
}
