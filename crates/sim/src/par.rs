//! Partitioned-horizon parallel stepping for the multi-drive core.
//!
//! Between two global events (an arrival becoming due, a checkpoint
//! instant, the park/horizon boundary, any fault activity, a sweep-end
//! reschedule) the multi-drive engine's drives are fully independent:
//! each dispatch sets `now` to the dispatched drive's `free_at`, and a
//! stop execution touches only that drive's head/plan/clock plus the
//! *order-sensitive* shared collectors (tracer, metrics, external event
//! list). [`SteppedMultiDrive::try_step_window`] exploits this: it
//! computes the window end `W` (the earliest upcoming global event),
//! ships every eligible drive's sweep to a worker as a [`WindowTask`],
//! and the workers execute stops *speculatively* — all shared-state side
//! effects are buffered as [`WinOp`]s inside per-stop [`StopBatch`]es
//! instead of being applied.
//!
//! Committing is where determinism is restored: batches merge by
//! `(dispatch instant, drive index)` — exactly the serial core's
//! dispatch order (`next_drive` picks the minimum `(free_at, index)`,
//! and `free_at` never decreases) — and each batch's ops replay in the
//! serial statement order. The tracer therefore assigns the same
//! sequence numbers, the metrics collector's insertion-ordered delay
//! vector matches byte-for-byte, and the external event list drains in
//! the same order, regardless of worker count.
//!
//! A drive that runs out of stops inside the window would next execute a
//! sweep-end reschedule — a global event. The commit therefore cuts off
//! at the earliest such frontier (again keyed `(instant, drive)`);
//! batches past the cutoff are discarded and re-executed after the
//! serial core has handled the reschedule. The same cutoff applies when
//! a worker stops at the per-window stop cap, which bounds both window
//! latency and discarded speculation.
//!
//! [`SteppedMultiDrive::try_step_window`]: crate::multidrive::SteppedMultiDrive
//! [`SteppedMultiDrive`]: crate::multidrive::SteppedMultiDrive

use std::sync::mpsc;

use tapesim_model::{
    BlockSize, LocateDirection, Micros, ReadContext, SimTime, SlotIndex, TimingModel,
};
use tapesim_sched::{SweepPhase, SweepPlan};

use crate::error::SimError;
use crate::stepped::EngineEvent;
use crate::trace::TraceEvent;

/// Most stops one drive executes per window: bounds window latency and
/// the speculation discarded when a drive exhausts its sweep mid-window.
pub(crate) const MAX_STOPS_PER_WINDOW: usize = 256;

/// Slack added to the per-window stop budget beyond the shortest
/// participant plan. The commit cuts off at the first sweep exhaustion,
/// so stops speculated much past the shortest plan are discarded and
/// re-simulated; the margin only needs to absorb stop-duration variance
/// between drives.
pub(crate) const STOP_BUDGET_MARGIN: usize = 32;

/// One buffered side effect of a speculatively executed stop, replayed
/// at commit in the exact serial statement order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WinOp {
    /// `tracer.push(at, drive, event)`.
    Trace(SimTime, TraceEvent),
    /// `metrics.add_locate_time(at, dur)`.
    Locate(SimTime, Micros),
    /// `metrics.add_read_time(at, dur)` then `record_physical_read(at)`.
    Read(SimTime, Micros),
    /// `metrics.record_completion(arrival, done, block_bytes)`.
    Complete {
        /// The completed request's arrival instant.
        arrival: SimTime,
        /// The completion instant.
        done: SimTime,
    },
    /// `events.push(event)` (external-arrival mode).
    Event(EngineEvent),
}

/// One speculatively executed stop: its dispatch instant (= the drive's
/// `free_at` when the serial core would have dispatched it), the drive
/// state after it, and the buffered side effects.
#[derive(Debug)]
pub(crate) struct StopBatch {
    pub dispatch_at: SimTime,
    pub head_after: SlotIndex,
    pub free_at_after: SimTime,
    pub phase_after: Option<SweepPhase>,
    pub ops: Vec<WinOp>,
}

/// A window of one drive's sweep, shipped to a worker thread. Owns
/// clones of everything it reads so the task is `Send + 'static`.
#[derive(Debug)]
pub(crate) struct WindowTask {
    pub d: usize,
    pub plan: SweepPlan,
    pub head: SlotIndex,
    pub free_at: SimTime,
    pub cur_phase: Option<SweepPhase>,
    /// Exclusive bound: only stops dispatched strictly before it run.
    pub window_end: SimTime,
    /// Most stops to execute this window (≤ [`MAX_STOPS_PER_WINDOW`]).
    /// The engine sets it just past the shortest participant plan, since
    /// the first exhaustion cuts the commit off anyway; hitting the
    /// budget reports a cutoff exactly like hitting the hard cap.
    pub stop_budget: usize,
    pub trace_on: bool,
    pub external: bool,
    pub block: BlockSize,
    pub timing: TimingModel,
}

/// A worker's output for one drive's window.
#[derive(Debug)]
pub(crate) struct WindowResult {
    pub d: usize,
    /// The plan handed in, untouched; the commit pops exactly the
    /// committed stops from it.
    pub plan: SweepPlan,
    pub batches: Vec<StopBatch>,
    /// The drive's `free_at` where the worker stopped for a reason
    /// *other* than reaching `window_end` (sweep exhausted, or the
    /// per-window stop cap): the serial core must take over there, so no
    /// batch at or past `(cutoff_at, d)` may commit.
    pub cutoff_at: Option<SimTime>,
}

/// Executes one drive's stops for the window, buffering every shared
/// side effect. This mirrors the fault-free stop path of
/// `SteppedMultiDrive::step_drive` statement for statement — the window
/// eligibility gate guarantees the fault branches are unreachable.
pub(crate) fn simulate_window(task: WindowTask) -> WindowResult {
    let tape = task.plan.tape;
    // Walk the plan in pop order without consuming (or cloning) it: the
    // commit pops exactly the committed prefix from the returned plan.
    let mut work = task
        .plan
        .list
        .forward_stops()
        .map(|s| (s, SweepPhase::Forward))
        .chain(
            task.plan
                .list
                .reverse_stops()
                .map(|s| (s, SweepPhase::Reverse)),
        );
    let budget = task.stop_budget.min(MAX_STOPS_PER_WINDOW);
    let mut head = task.head;
    let mut free_at = task.free_at;
    let mut cur_phase = task.cur_phase;
    let mut batches = Vec::new();
    let mut cutoff_at = None;
    loop {
        if free_at >= task.window_end {
            break;
        }
        if batches.len() >= budget {
            cutoff_at = Some(free_at);
            break;
        }
        let Some((stop, phase)) = work.next() else {
            cutoff_at = Some(free_at);
            break;
        };
        let dispatch_at = free_at;
        let mut ops = Vec::with_capacity(4 + 2 * stop.requests.len());
        if task.trace_on && cur_phase != Some(phase) {
            cur_phase = Some(phase);
            ops.push(WinOp::Trace(
                dispatch_at,
                TraceEvent::PhaseStart { tape, phase },
            ));
        }
        let (lt, dir) = task.timing.drive.locate(head, stop.slot, task.block);
        let ctx = match dir {
            None => ReadContext::Streaming,
            Some(LocateDirection::Forward) => ReadContext::AfterForwardLocate,
            Some(LocateDirection::Reverse) => ReadContext::AfterReverseLocate,
        };
        let rt = task.timing.drive.read_block(task.block, ctx);
        let t = dispatch_at + lt;
        ops.push(WinOp::Locate(t, lt));
        if task.trace_on {
            ops.push(WinOp::Trace(
                t,
                TraceEvent::Locate {
                    tape,
                    from: head,
                    to: stop.slot,
                    dur: lt,
                },
            ));
        }
        let done = t + rt;
        ops.push(WinOp::Read(done, rt));
        head = stop.slot.next();
        free_at = done;
        if task.trace_on {
            ops.push(WinOp::Trace(
                done,
                TraceEvent::Read {
                    tape,
                    slot: stop.slot,
                    phase,
                    dur: rt,
                },
            ));
        }
        for r in &stop.requests {
            ops.push(WinOp::Complete {
                arrival: r.arrival,
                done,
            });
            if task.trace_on {
                ops.push(WinOp::Trace(
                    done,
                    TraceEvent::Complete {
                        req: r.id,
                        tape,
                        delay: done.duration_since(r.arrival),
                    },
                ));
            }
            if task.external {
                ops.push(WinOp::Event(EngineEvent::Completed {
                    req: r.id,
                    at: done,
                }));
            }
        }
        batches.push(StopBatch {
            dispatch_at,
            head_after: head,
            free_at_after: free_at,
            phase_after: cur_phase,
            ops,
        });
    }
    // End the plan borrow explicitly: the opaque stop iterators have drop
    // glue, so the borrow otherwise outlives the move below.
    drop(work);
    WindowResult {
        d: task.d,
        plan: task.plan,
        batches,
        cutoff_at,
    }
}

/// A persistent pool of worker threads executing [`WindowTask`]s. Tasks
/// round-robin over the workers; results return over one shared channel
/// and carry their drive index, so arrival order does not matter.
#[derive(Debug)]
pub(crate) struct WorkerPool {
    senders: Vec<mpsc::Sender<WindowTask>>,
    results: mpsc::Receiver<WindowResult>,
    handles: Vec<std::thread::JoinHandle<()>>,
    pub workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (result_tx, results) = mpsc::channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<WindowTask>();
            let out = result_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(task) = rx.recv() {
                    if out.send(simulate_window(task)).is_err() {
                        break;
                    }
                }
            }));
            senders.push(tx);
        }
        WorkerPool {
            senders,
            results,
            handles,
            workers,
        }
    }

    /// Runs one window: ships every task, collects every result. The
    /// results come back in nondeterministic order but are keyed by
    /// drive index; commit ordering does not depend on this order.
    pub fn run(&self, tasks: Vec<WindowTask>) -> Result<Vec<WindowResult>, SimError> {
        let n = tasks.len();
        for (i, task) in tasks.into_iter().enumerate() {
            self.senders[i % self.senders.len()]
                .send(task)
                .map_err(|_| SimError::WorkerPanicked("window worker exited early".into()))?;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(
                self.results
                    .recv()
                    .map_err(|_| SimError::WorkerPanicked("window worker exited early".into()))?,
            );
        }
        Ok(out)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the task channels ends the workers' recv loops.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::TapeId;
    use tapesim_sched::{ScheduledRead, ServiceList, SweepPlan};
    use tapesim_workload::{Request, RequestId};

    fn one_stop_plan(slot: u32, arrival_us: u64) -> SweepPlan {
        let req = Request {
            id: RequestId(7),
            block: tapesim_layout::BlockId(0),
            arrival: SimTime::from_micros(arrival_us),
        };
        SweepPlan {
            tape: TapeId(0),
            list: ServiceList::from_forward(vec![ScheduledRead {
                slot: SlotIndex(slot),
                requests: vec![req],
            }]),
        }
    }

    #[test]
    fn worker_buffers_stop_side_effects_and_leaves_plan_untouched() {
        let timing = TimingModel::paper_default();
        let block = BlockSize::PAPER_DEFAULT;
        let task = WindowTask {
            d: 1,
            plan: one_stop_plan(10, 5),
            head: SlotIndex::BOT,
            free_at: SimTime::from_micros(1_000),
            cur_phase: None,
            window_end: SimTime::from_micros(u64::MAX),
            stop_budget: MAX_STOPS_PER_WINDOW,
            trace_on: true,
            external: true,
            block,
            timing: timing.clone(),
        };
        let result = simulate_window(task);
        assert_eq!(result.d, 1);
        // Exhausted after the single stop: the cutoff is the frontier.
        assert_eq!(result.batches.len(), 1);
        assert_eq!(result.cutoff_at, Some(result.batches[0].free_at_after));
        // The plan comes back intact for the commit to pop from.
        assert_eq!(result.plan.list.stops(), 1);
        let batch = &result.batches[0];
        assert_eq!(batch.dispatch_at, SimTime::from_micros(1_000));
        assert_eq!(batch.head_after, SlotIndex(10).next());
        assert!(batch.free_at_after > batch.dispatch_at);
        // PhaseStart, Locate(+trace), Read(+trace), Complete(+trace+event).
        assert_eq!(batch.ops.len(), 8);
        assert!(matches!(
            batch.ops[0],
            WinOp::Trace(_, TraceEvent::PhaseStart { .. })
        ));
        assert!(matches!(batch.ops[1], WinOp::Locate(..)));
        assert!(matches!(batch.ops[3], WinOp::Read(..)));
        assert!(matches!(batch.ops[5], WinOp::Complete { .. }));
        assert!(matches!(
            batch.ops[7],
            WinOp::Event(EngineEvent::Completed { .. })
        ));
    }

    #[test]
    fn window_end_stops_execution_without_cutoff() {
        let timing = TimingModel::paper_default();
        let task = WindowTask {
            d: 0,
            plan: one_stop_plan(10, 5),
            head: SlotIndex::BOT,
            free_at: SimTime::from_micros(1_000),
            cur_phase: None,
            window_end: SimTime::from_micros(1_000), // free_at >= end: nothing runs
            stop_budget: MAX_STOPS_PER_WINDOW,
            trace_on: false,
            external: false,
            block: BlockSize::PAPER_DEFAULT,
            timing: timing.clone(),
        };
        let result = simulate_window(task);
        assert!(result.batches.is_empty());
        assert_eq!(result.cutoff_at, None);
    }

    #[test]
    fn pool_runs_tasks_and_returns_all_results() {
        let pool = WorkerPool::new(3);
        let timing = TimingModel::paper_default();
        let tasks: Vec<WindowTask> = (0..8u32)
            .map(|d| WindowTask {
                d: d as usize,
                plan: one_stop_plan(5 + d, 0),
                head: SlotIndex::BOT,
                free_at: SimTime::from_micros(100),
                cur_phase: None,
                window_end: SimTime::from_micros(u64::MAX),
                stop_budget: MAX_STOPS_PER_WINDOW,
                trace_on: false,
                external: false,
                block: BlockSize::PAPER_DEFAULT,
                timing: timing.clone(),
            })
            .collect();
        let mut results = pool.run(tasks).unwrap();
        results.sort_by_key(|r| r.d);
        assert_eq!(results.len(), 8);
        for (d, r) in results.iter().enumerate() {
            assert_eq!(r.d, d);
            assert_eq!(r.batches.len(), 1);
        }
    }
}
