//! Multi-seed simulation runner.
//!
//! The paper's figures average numerous simulation runs; this module runs
//! one `(catalog, algorithm, workload)` specification under several RNG
//! seeds — in parallel across OS threads — and averages the reports.

use tapesim_layout::Catalog;
use tapesim_model::{substream, FaultConfig, TimingModel};
use tapesim_sched::{make_scheduler, AlgorithmId};
use tapesim_workload::{ArrivalProcess, BlockSampler, RequestFactory};

use crate::engine::{run_simulation_with_faults, SimConfig};
use crate::error::SimError;
use crate::metrics::{DelayPercentiles, MetricsReport};
use crate::multidrive::run_multi_drive_with_faults;

/// Substream offset deriving a run's fault seed from its workload seed
/// (offsets below `0x100` are reserved by `tapesim_model::faults`).
const FAULT_SEED_STREAM: u64 = 0x200;

/// A complete description of one simulated experiment point.
#[derive(Clone)]
pub struct RunSpec<'a> {
    /// The data layout under test.
    pub catalog: &'a Catalog,
    /// The timing model (paper default: EXB-8505XL / EXB-210).
    pub timing: &'a TimingModel,
    /// The scheduling algorithm.
    pub algorithm: AlgorithmId,
    /// Closed or open arrivals, with their intensity.
    pub process: ArrivalProcess,
    /// Percent of requests directed to hot data (`RH`).
    pub rh_percent: f64,
    /// Probability of continuing a sequential run (0 = the paper's
    /// independent stream; see the clustered-workload extension).
    pub cluster_run_p: f64,
    /// Number of tape drives (1 = the paper's configuration; more uses
    /// the multi-drive extension engine).
    pub drives: u16,
    /// Horizon, warmup, and overload bound.
    pub config: SimConfig,
    /// Fault model ([`FaultConfig::NONE`] reproduces the paper's
    /// fault-free runs exactly). The fault streams are seeded from the
    /// run's workload seed, so one seed reproduces the whole run.
    pub faults: FaultConfig,
}

/// Runs the specification once with the given seed.
pub fn run_one(spec: &RunSpec<'_>, seed: u64) -> Result<MetricsReport, SimError> {
    let sampler = BlockSampler::from_catalog(spec.catalog, spec.rh_percent);
    let mut factory =
        RequestFactory::new_clustered(sampler, spec.process, spec.cluster_run_p, seed);
    let mut scheduler = make_scheduler(spec.algorithm);
    let fault_seed = substream(seed, FAULT_SEED_STREAM);
    if spec.drives <= 1 {
        run_simulation_with_faults(
            spec.catalog,
            spec.timing,
            scheduler.as_mut(),
            &mut factory,
            &spec.config,
            &spec.faults,
            fault_seed,
        )
    } else {
        run_multi_drive_with_faults(
            spec.catalog,
            spec.timing,
            scheduler.as_mut(),
            &mut factory,
            &spec.config,
            spec.drives,
            &spec.faults,
            fault_seed,
        )
    }
}

/// Runs the specification under each seed (in parallel) and returns the
/// averaged report plus the per-seed reports, in seed order.
pub fn run_seeds(
    spec: &RunSpec<'_>,
    seeds: &[u64],
) -> Result<(MetricsReport, Vec<MetricsReport>), SimError> {
    if seeds.is_empty() {
        return Err(SimError::InvalidConfig("need at least one seed"));
    }
    let reports: Vec<MetricsReport> = if let [seed] = seeds {
        vec![run_one(spec, *seed)?]
    } else {
        // simlint: allow(par-contract, deterministic fork-join: one scoped thread per seed, results collected in seed order)
        std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .map(|&seed| scope.spawn(move || run_one(spec, seed)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(worker_panic_error)?)
                .collect::<Result<Vec<_>, SimError>>()
        })?
    };
    Ok((MetricsReport::mean_of(&reports), reports))
}

/// [`run_seeds`] plus true *pooled* delay percentiles: all per-seed delay
/// samples are merged into one distribution before the percentiles are
/// taken. Prefer these over the mean report's scalar percentile fields
/// (which average each seed's percentile — see
/// [`MetricsReport::mean_of`]) when reporting tail latency.
pub fn run_seeds_pooled(
    spec: &RunSpec<'_>,
    seeds: &[u64],
) -> Result<(MetricsReport, DelayPercentiles, Vec<MetricsReport>), SimError> {
    let (mean, per_seed) = run_seeds(spec, seeds)?;
    let pooled = mean.pooled_percentiles();
    Ok((mean, pooled, per_seed))
}

/// Converts a thread-join panic payload into a [`SimError`], preserving
/// the panic message when it was a string.
fn worker_panic_error(payload: Box<dyn std::any::Any + Send>) -> SimError {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_owned()
    };
    SimError::WorkerPanicked(msg)
}

/// The default seed set used by the experiment harnesses.
pub fn default_seeds(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 0x1CDE_1999_u64 + i * 7919).collect()
}

/// Paired comparison with common random numbers: every algorithm replays
/// the *same* recorded block trace, so metric differences are caused by
/// scheduling decisions alone, not sampling noise. Returns one report per
/// algorithm, in input order.
pub fn run_paired(
    catalog: &Catalog,
    timing: &TimingModel,
    algorithms: &[AlgorithmId],
    trace: Vec<tapesim_layout::BlockId>,
    process: ArrivalProcess,
    config: &SimConfig,
    seed: u64,
) -> Result<Vec<MetricsReport>, SimError> {
    algorithms
        .iter()
        .map(|&alg| {
            let mut factory = RequestFactory::from_trace(trace.clone(), process, seed);
            let mut scheduler = make_scheduler(alg);
            run_simulation_with_faults(
                catalog,
                timing,
                scheduler.as_mut(),
                &mut factory,
                config,
                &FaultConfig::NONE,
                0,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{build_placement, PlacementConfig};
    use tapesim_model::{BlockSize, JukeboxGeometry};
    use tapesim_sched::TapeSelectPolicy;
    use tapesim_workload::generate_trace;

    fn catalog() -> tapesim_layout::PlacedCatalog {
        build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig::paper_baseline(),
        )
        .unwrap()
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn run_seeds_averages_and_preserves_order() {
        let placed = catalog();
        let timing = TimingModel::paper_default();
        let spec = RunSpec {
            catalog: &placed.catalog,
            timing: &timing,
            algorithm: AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            process: ArrivalProcess::Closed { queue_length: 40 },
            rh_percent: 40.0,
            cluster_run_p: 0.0,
            drives: 1,
            config: SimConfig::quick(),
            faults: FaultConfig::NONE,
        };
        let seeds = default_seeds(3);
        let (mean, per_seed) = run_seeds(&spec, &seeds).unwrap();
        assert_eq!(per_seed.len(), 3);
        // Averaging really averaged.
        let manual: f64 = per_seed.iter().map(|r| r.throughput_kb_per_s).sum::<f64>() / 3.0;
        assert!((mean.throughput_kb_per_s - manual).abs() < 1e-9);
        // Per-seed order is deterministic: rerunning matches.
        let (_, again) = run_seeds(&spec, &seeds).unwrap();
        assert_eq!(per_seed, again);
    }

    #[test]
    fn empty_seed_set_is_an_error() {
        let placed = catalog();
        let timing = TimingModel::paper_default();
        let spec = RunSpec {
            catalog: &placed.catalog,
            timing: &timing,
            algorithm: AlgorithmId::Fifo,
            process: ArrivalProcess::Closed { queue_length: 10 },
            rh_percent: 40.0,
            cluster_run_p: 0.0,
            drives: 1,
            config: SimConfig::quick(),
            faults: FaultConfig::NONE,
        };
        assert!(matches!(
            run_seeds(&spec, &[]),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn multi_drive_specs_route_to_the_multidrive_engine() {
        let placed = catalog();
        let timing = TimingModel::paper_default();
        let mk = |drives| RunSpec {
            catalog: &placed.catalog,
            timing: &timing,
            algorithm: AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            process: ArrivalProcess::Closed { queue_length: 120 },
            rh_percent: 40.0,
            cluster_run_p: 0.0,
            drives,
            config: SimConfig::quick(),
            faults: FaultConfig::NONE,
        };
        let one = run_one(&mk(1), 5).unwrap();
        let three = run_one(&mk(3), 5).unwrap();
        assert!(three.throughput_kb_per_s > 2.0 * one.throughput_kb_per_s);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn paired_runs_share_the_exact_trace() {
        let placed = catalog();
        let timing = TimingModel::paper_default();
        let sampler = tapesim_workload::BlockSampler::from_catalog(&placed.catalog, 40.0);
        let trace = generate_trace(&sampler, 10_000, 77);
        let algs = [
            AlgorithmId::Static(TapeSelectPolicy::MaxBandwidth),
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth), // duplicate
        ];
        let reports = run_paired(
            &placed.catalog,
            &timing,
            &algs,
            trace,
            ArrivalProcess::Closed { queue_length: 60 },
            &SimConfig::quick(),
            1,
        )
        .unwrap();
        assert_eq!(reports.len(), 3);
        // Identical algorithm + identical trace = identical report.
        assert_eq!(reports[1], reports[2]);
        // Different algorithms still differ.
        assert_ne!(reports[0], reports[1]);
        // And on the same trace, dynamic cannot lose to static.
        assert!(reports[1].throughput_kb_per_s >= reports[0].throughput_kb_per_s * 0.99);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn faulty_specs_report_availability_metrics() {
        let placed = catalog();
        let timing = TimingModel::paper_default();
        let spec = RunSpec {
            catalog: &placed.catalog,
            timing: &timing,
            algorithm: AlgorithmId::paper_recommended(),
            process: ArrivalProcess::Closed { queue_length: 40 },
            rh_percent: 40.0,
            cluster_run_p: 0.0,
            drives: 1,
            config: SimConfig::quick(),
            faults: FaultConfig {
                tape_mtbf: Some(tapesim_model::Micros::from_secs(150_000)),
                tape_mttr: Some(tapesim_model::Micros::from_secs(10_000)),
                ..FaultConfig::NONE
            },
        };
        let r = run_one(&spec, 3).unwrap();
        assert!(r.degraded_frac > 0.0);
        assert_eq!(r.admitted, r.served + r.failed_requests + r.unserved);
    }
}
