//! Metrics collection: throughput, delay, and time-accounting breakdowns.
//!
//! The paper's parametric graphs plot *mean throughput* against *mean
//! delay* as the workload intensity varies; supporting discussion cites
//! requests per minute, response-time improvements, and tape-switch
//! counts. The collector gathers all of these over a measurement window
//! that excludes a configurable warmup.
#![allow(clippy::cast_possible_truncation)] // percentile ranks round within sample-vector bounds
#![allow(clippy::cast_precision_loss)] // counters stay far below 2^53

use tapesim_model::units::bytes_to_kb_f64;
use tapesim_model::{Micros, SimTime};

/// Raw counters accumulated during a run (within the measurement window).
#[derive(Debug, Clone, Default)]
pub struct MetricsCollector {
    window_start: SimTime,
    completed: u64,
    bytes_delivered: u64,
    physical_reads: u64,
    tape_switches: u64,
    total_delay: Micros,
    max_delay: Micros,
    delays: Vec<Micros>,
    time_locating: Micros,
    time_reading: Micros,
    time_switching: Micros,
    time_idle: Micros,
    time_repairing: Micros,
    admitted: u64,
    served: u64,
    failed_requests: u64,
    replica_failovers: u64,
    media_errors: u64,
    unserved: u64,
    cancelled: u64,
    tape_downtime: Vec<Micros>,
    degraded: Micros,
}

impl MetricsCollector {
    /// Creates a collector whose measurement window opens at
    /// `window_start` (the end of warmup).
    pub fn new(window_start: SimTime) -> Self {
        MetricsCollector {
            window_start,
            ..Default::default()
        }
    }

    fn in_window(&self, now: SimTime) -> bool {
        now >= self.window_start
    }

    /// Records a completed request: `arrival` is when it entered the
    /// system, `now` when its block was delivered.
    pub fn record_completion(&mut self, arrival: SimTime, now: SimTime, block_bytes: u64) {
        self.served += 1;
        if !self.in_window(now) {
            return;
        }
        let delay = now.duration_since(arrival.max(SimTime::ZERO));
        self.completed += 1;
        self.bytes_delivered += block_bytes;
        self.total_delay += delay;
        self.max_delay = self.max_delay.max(delay);
        self.delays.push(delay);
    }

    /// Records one physical block read ending at `now`.
    pub fn record_physical_read(&mut self, now: SimTime) {
        if self.in_window(now) {
            self.physical_reads += 1;
        }
    }

    /// Records a tape switch completing at `now`.
    pub fn record_tape_switch(&mut self, now: SimTime) {
        if self.in_window(now) {
            self.tape_switches += 1;
        }
    }

    /// Attributes `dur` of drive time ending at `now` to locating.
    pub fn add_locate_time(&mut self, now: SimTime, dur: Micros) {
        if self.in_window(now) {
            self.time_locating += dur;
        }
    }

    /// Attributes `dur` of drive time ending at `now` to reading.
    pub fn add_read_time(&mut self, now: SimTime, dur: Micros) {
        if self.in_window(now) {
            self.time_reading += dur;
        }
    }

    /// Attributes `dur` of drive time ending at `now` to rewind/switch.
    pub fn add_switch_time(&mut self, now: SimTime, dur: Micros) {
        if self.in_window(now) {
            self.time_switching += dur;
        }
    }

    /// Attributes `dur` of idle waiting ending at `now`.
    pub fn add_idle_time(&mut self, now: SimTime, dur: Micros) {
        if self.in_window(now) {
            self.time_idle += dur;
        }
    }

    /// Attributes `dur` of drive repair downtime ending at `now`.
    pub fn add_repair_time(&mut self, now: SimTime, dur: Micros) {
        if self.in_window(now) {
            self.time_repairing += dur;
        }
    }

    /// Records a request entering the system (counted over the whole run,
    /// not the window, so that request conservation can be checked).
    pub fn record_admission(&mut self) {
        self.admitted += 1;
    }

    /// Records a request failing permanently: every copy of its block was
    /// lost (failed tape without repair, or a copy gone bad) so it can
    /// never be served. Counted over the whole run.
    pub fn record_permanent_failure(&mut self) {
        self.failed_requests += 1;
    }

    /// Records a request completing from a replica after a fault disrupted
    /// its originally scheduled copy. Counted over the whole run.
    pub fn record_replica_failover(&mut self) {
        self.replica_failovers += 1;
    }

    /// Records an admitted request withdrawn before service (external-
    /// arrival mode: a deadline expiry or a shed-oldest eviction). Counted
    /// over the whole run; always zero for generated workloads, and never
    /// part of a checkpoint (external mode cannot checkpoint).
    pub fn record_cancellation(&mut self) {
        self.cancelled += 1;
    }

    /// Captures every accumulator for a checkpoint. Delay samples are
    /// kept in insertion order (they are only sorted at report time), so
    /// a restored collector is byte-for-byte the collector that was
    /// snapshotted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            window_start_us: self.window_start.as_micros(),
            completed: self.completed,
            bytes_delivered: self.bytes_delivered,
            physical_reads: self.physical_reads,
            tape_switches: self.tape_switches,
            total_delay_us: self.total_delay.as_micros(),
            max_delay_us: self.max_delay.as_micros(),
            delays_us: self.delays.iter().map(|d| d.as_micros()).collect(),
            time_locating_us: self.time_locating.as_micros(),
            time_reading_us: self.time_reading.as_micros(),
            time_switching_us: self.time_switching.as_micros(),
            time_idle_us: self.time_idle.as_micros(),
            time_repairing_us: self.time_repairing.as_micros(),
            admitted: self.admitted,
            served: self.served,
            failed_requests: self.failed_requests,
            replica_failovers: self.replica_failovers,
        }
    }

    /// Rebuilds a collector from a [`MetricsCollector::snapshot`]. The
    /// end-of-run fault accounting (media errors, downtime, degraded
    /// time, unserved count) is not part of the snapshot: it is installed
    /// by the engine at report time via
    /// [`MetricsCollector::set_fault_accounting`].
    pub fn from_snapshot(snap: &MetricsSnapshot) -> Self {
        MetricsCollector {
            window_start: SimTime::from_micros(snap.window_start_us),
            completed: snap.completed,
            bytes_delivered: snap.bytes_delivered,
            physical_reads: snap.physical_reads,
            tape_switches: snap.tape_switches,
            total_delay: Micros::from_micros(snap.total_delay_us),
            max_delay: Micros::from_micros(snap.max_delay_us),
            delays: snap
                .delays_us
                .iter()
                .map(|&d| Micros::from_micros(d))
                .collect(),
            time_locating: Micros::from_micros(snap.time_locating_us),
            time_reading: Micros::from_micros(snap.time_reading_us),
            time_switching: Micros::from_micros(snap.time_switching_us),
            time_idle: Micros::from_micros(snap.time_idle_us),
            time_repairing: Micros::from_micros(snap.time_repairing_us),
            admitted: snap.admitted,
            served: snap.served,
            failed_requests: snap.failed_requests,
            replica_failovers: snap.replica_failovers,
            media_errors: 0,
            unserved: 0,
            // Cancellations only happen in external-arrival mode, which
            // cannot checkpoint, so a snapshot never carries any.
            cancelled: 0,
            tape_downtime: Vec::new(),
            degraded: Micros::ZERO,
        }
    }

    /// Installs the end-of-run availability accounting produced by the
    /// fault injector: total media errors drawn, per-tape downtime,
    /// accumulated degraded-mode time, and requests still unserved (left
    /// pending or stranded in an aborted sweep) when the run ended.
    pub fn set_fault_accounting(
        &mut self,
        media_errors: u64,
        tape_downtime: Vec<Micros>,
        degraded: Micros,
        unserved: u64,
    ) {
        self.media_errors = media_errors;
        self.tape_downtime = tape_downtime;
        self.degraded = degraded;
        self.unserved = unserved;
    }

    /// Finalizes into a report over a window of `window` duration.
    pub fn report(mut self, window: Micros, saturated: bool) -> MetricsReport {
        let secs = window.as_secs_f64();
        let completed = self.completed;
        self.delays.sort_unstable();
        let pct = |p: f64| -> f64 {
            if self.delays.is_empty() {
                return 0.0;
            }
            self.delays[nearest_rank(self.delays.len(), p)].as_secs_f64()
        };
        MetricsReport {
            window_secs: secs,
            completed,
            throughput_kb_per_s: if secs > 0.0 {
                bytes_to_kb_f64(self.bytes_delivered) / secs
            } else {
                0.0
            },
            requests_per_min: if secs > 0.0 {
                completed as f64 / window.as_minutes_f64()
            } else {
                0.0
            },
            mean_delay_s: if completed > 0 {
                self.total_delay.as_secs_f64() / completed as f64
            } else {
                0.0
            },
            median_delay_s: pct(0.5),
            p95_delay_s: pct(0.95),
            p99_delay_s: pct(0.99),
            max_delay_s: self.max_delay.as_secs_f64(),
            delay_samples_us: self.delays.iter().map(|d| d.as_micros()).collect(),
            physical_reads: self.physical_reads,
            tape_switches: self.tape_switches,
            switches_per_hour: if secs > 0.0 {
                self.tape_switches as f64 / window.as_hours_f64()
            } else {
                0.0
            },
            locate_frac: frac(self.time_locating, window),
            read_frac: frac(self.time_reading, window),
            switch_frac: frac(self.time_switching, window),
            idle_frac: frac(self.time_idle, window),
            repair_frac: frac(self.time_repairing, window),
            degraded_frac: frac(self.degraded, window),
            admitted: self.admitted,
            served: self.served,
            failed_requests: self.failed_requests,
            replica_failovers: self.replica_failovers,
            media_errors: self.media_errors,
            unserved: self.unserved,
            cancelled: self.cancelled,
            rejected: 0,
            expired: 0,
            tape_downtime_s: self.tape_downtime.iter().map(|d| d.as_secs_f64()).collect(),
            ec_unavailable: 0,
            saturated,
        }
    }
}

fn frac(part: Micros, whole: Micros) -> f64 {
    if whole.is_zero() {
        0.0
    } else {
        part.as_secs_f64() / whole.as_secs_f64()
    }
}

/// Nearest-rank percentile index over `n > 0` sorted samples:
/// `ceil(p·n) − 1`, the smallest index such that at least a fraction `p`
/// of the samples are at or below it. The previous `round((n−1)·p)`
/// formula *underestimated* the tail for small `n` (e.g. the p99 of 70
/// samples picked the 69th instead of the 70th), contradicting the
/// documented "the delay 99% of all completed requests beat" semantics.
fn nearest_rank(n: usize, p: f64) -> usize {
    let rank = (p * n as f64).ceil() as usize;
    rank.clamp(1, n) - 1
}

/// Serializable snapshot of a [`MetricsCollector`]'s accumulators, all in
/// raw integer microseconds/counts so it round-trips exactly through a
/// text checkpoint. Produced by [`MetricsCollector::snapshot`], consumed
/// by [`MetricsCollector::from_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Start of the measurement window, in microseconds.
    pub window_start_us: u64,
    /// In-window completions so far.
    pub completed: u64,
    /// In-window bytes delivered.
    pub bytes_delivered: u64,
    /// In-window physical reads.
    pub physical_reads: u64,
    /// In-window tape switches.
    pub tape_switches: u64,
    /// Sum of in-window delays, in microseconds.
    pub total_delay_us: u64,
    /// Largest in-window delay, in microseconds.
    pub max_delay_us: u64,
    /// Every in-window delay sample, in insertion (completion) order.
    pub delays_us: Vec<u64>,
    /// Drive time attributed to locating, in microseconds.
    pub time_locating_us: u64,
    /// Drive time attributed to reading, in microseconds.
    pub time_reading_us: u64,
    /// Drive time attributed to rewind/switch, in microseconds.
    pub time_switching_us: u64,
    /// Idle time, in microseconds.
    pub time_idle_us: u64,
    /// Drive repair downtime, in microseconds.
    pub time_repairing_us: u64,
    /// Requests admitted over the whole run so far.
    pub admitted: u64,
    /// Requests served over the whole run so far.
    pub served: u64,
    /// Requests permanently failed so far.
    pub failed_requests: u64,
    /// Replica failovers so far.
    pub replica_failovers: u64,
}

/// Summary statistics of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Length of the measurement window in seconds.
    pub window_secs: f64,
    /// Requests completed within the window.
    pub completed: u64,
    /// Delivered kilobytes per second (the paper's throughput metric).
    pub throughput_kb_per_s: f64,
    /// Completed requests per minute.
    pub requests_per_min: f64,
    /// Mean response time in seconds (the paper's delay metric).
    pub mean_delay_s: f64,
    /// Median response time in seconds.
    pub median_delay_s: f64,
    /// 95th-percentile response time in seconds.
    pub p95_delay_s: f64,
    /// 99th-percentile response time in seconds.
    pub p99_delay_s: f64,
    /// Worst response time in seconds.
    pub max_delay_s: f64,
    /// Every in-window response time, in microseconds, sorted ascending.
    /// [`MetricsReport::mean_of`] merges these across seeds so
    /// [`MetricsReport::pooled_percentiles`] can compute true percentiles
    /// of the pooled distribution.
    pub delay_samples_us: Vec<u64>,
    /// Physical block reads (merged duplicate requests read once).
    pub physical_reads: u64,
    /// Number of tape switches.
    pub tape_switches: u64,
    /// Tape switches per hour.
    pub switches_per_hour: f64,
    /// Fraction of the window spent locating.
    pub locate_frac: f64,
    /// Fraction of the window spent reading.
    pub read_frac: f64,
    /// Fraction of the window spent rewinding/switching.
    pub switch_frac: f64,
    /// Fraction of the window spent idle.
    pub idle_frac: f64,
    /// Fraction of the window the drive spent under repair after a
    /// whole-drive failure. Zero when fault injection is off.
    pub repair_frac: f64,
    /// Fraction of the window spent in degraded mode (at least one tape
    /// offline). Zero when fault injection is off.
    pub degraded_frac: f64,
    /// Requests admitted over the whole run, including warmup.
    pub admitted: u64,
    /// Requests served over the whole run, including warmup (`completed`
    /// counts only the measurement window).
    pub served: u64,
    /// Requests that failed permanently: every copy of the block was lost
    /// to a fault. Counted over the whole run; always zero without fault
    /// injection.
    pub failed_requests: u64,
    /// Requests served from a replica on a different tape after a fault
    /// disrupted their originally scheduled copy. Counted over the whole
    /// run; always zero without fault injection.
    pub replica_failovers: u64,
    /// Media errors injected over the whole run.
    pub media_errors: u64,
    /// Requests still unserved when the run ended (pending, or stranded
    /// in an aborted sweep). `admitted == served + failed_requests +
    /// unserved + cancelled` holds for every run (`cancelled` is always
    /// zero outside external-arrival mode).
    pub unserved: u64,
    /// Admitted requests withdrawn before service (deadline expiries and
    /// shed-oldest evictions). Always zero for generated workloads.
    pub cancelled: u64,
    /// Requests refused admission by the service layer's backpressure
    /// policy (never admitted to the engine, so outside the engine's
    /// conservation sum). Installed by
    /// [`crate::service::JukeboxService`]; always zero for batch runs.
    pub rejected: u64,
    /// Requests that left the service expired: their deadline passed
    /// while waiting, or no retry could complete them in time. Installed
    /// by [`crate::service::JukeboxService`]; always zero for batch runs.
    pub expired: u64,
    /// Per-tape downtime in seconds over the whole run. Empty when fault
    /// injection is off.
    pub tape_downtime_s: Vec<f64>,
    /// Erasure reads that failed because fewer than `k` shards of their
    /// stripe survived (subset of `failed_requests`). Installed by
    /// [`crate::ec::run_erasure_simulation`]; always zero for
    /// replication-scheme runs.
    pub ec_unavailable: u64,
    /// True when an open-queuing run was cut short because the pending
    /// queue exceeded the configured bound (overloaded server).
    pub saturated: bool,
}

/// Percentiles of one pooled response-time distribution, in seconds.
///
/// Unlike the per-seed-averaged scalar fields of
/// [`MetricsReport::mean_of`], these are computed over the union of every
/// delay sample, so `p99` really is the delay 99% of all completed
/// requests beat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayPercentiles {
    /// Pooled median.
    pub p50: f64,
    /// Pooled 95th percentile.
    pub p95: f64,
    /// Pooled 99th percentile.
    pub p99: f64,
    /// Pooled maximum.
    pub max: f64,
    /// Delay samples pooled.
    pub samples: u64,
}

impl MetricsReport {
    /// Element-wise mean of several reports (used to average seeds).
    /// Counters are averaged too (as f64 rounded), so the result reflects
    /// a typical run.
    ///
    /// **Percentile semantics:** the `median_delay_s` / `p95_delay_s` /
    /// `p99_delay_s` / `max_delay_s` fields of the result are *means of
    /// the per-seed percentiles*, not percentiles of the pooled
    /// distribution — an average of seed p95s generally differs from the
    /// p95 over all seeds' requests (percentiles are not linear). The
    /// averaged values are kept because the paper-figure pipeline plots
    /// a typical seed. For true pooled percentiles, `mean_of` also merges
    /// every delay sample into `delay_samples_us`; call
    /// [`MetricsReport::pooled_percentiles`] on the result.
    ///
    /// Every percentile field (per-seed and pooled) uses the nearest-rank
    /// convention `idx = ceil(p * n) - 1`: the reported p99 is the
    /// smallest sample at or below which at least 99% of requests fall.
    /// (Earlier releases used `round((n - 1) * p)`, which understated the
    /// tail for small sample counts.)
    pub fn mean_of(reports: &[MetricsReport]) -> MetricsReport {
        assert!(!reports.is_empty(), "cannot average zero reports");
        let n = reports.len() as f64;
        let avg = |f: fn(&MetricsReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
        MetricsReport {
            window_secs: avg(|r| r.window_secs),
            completed: (reports.iter().map(|r| r.completed).sum::<u64>() as f64 / n).round() as u64,
            throughput_kb_per_s: avg(|r| r.throughput_kb_per_s),
            requests_per_min: avg(|r| r.requests_per_min),
            mean_delay_s: avg(|r| r.mean_delay_s),
            median_delay_s: avg(|r| r.median_delay_s),
            p95_delay_s: avg(|r| r.p95_delay_s),
            p99_delay_s: avg(|r| r.p99_delay_s),
            max_delay_s: avg(|r| r.max_delay_s),
            delay_samples_us: {
                // Merge the per-seed sorted runs into one sorted pool.
                let mut pooled: Vec<u64> = reports
                    .iter()
                    .flat_map(|r| r.delay_samples_us.iter().copied())
                    .collect();
                pooled.sort_unstable();
                pooled
            },
            physical_reads: (reports.iter().map(|r| r.physical_reads).sum::<u64>() as f64 / n)
                .round() as u64,
            tape_switches: (reports.iter().map(|r| r.tape_switches).sum::<u64>() as f64 / n).round()
                as u64,
            switches_per_hour: avg(|r| r.switches_per_hour),
            locate_frac: avg(|r| r.locate_frac),
            read_frac: avg(|r| r.read_frac),
            switch_frac: avg(|r| r.switch_frac),
            idle_frac: avg(|r| r.idle_frac),
            repair_frac: avg(|r| r.repair_frac),
            degraded_frac: avg(|r| r.degraded_frac),
            admitted: avg_count(reports, |r| r.admitted),
            served: avg_count(reports, |r| r.served),
            failed_requests: avg_count(reports, |r| r.failed_requests),
            replica_failovers: avg_count(reports, |r| r.replica_failovers),
            media_errors: avg_count(reports, |r| r.media_errors),
            unserved: avg_count(reports, |r| r.unserved),
            cancelled: avg_count(reports, |r| r.cancelled),
            rejected: avg_count(reports, |r| r.rejected),
            expired: avg_count(reports, |r| r.expired),
            tape_downtime_s: {
                let tapes = reports
                    .iter()
                    .map(|r| r.tape_downtime_s.len())
                    .max()
                    .unwrap_or(0);
                (0..tapes)
                    .map(|i| {
                        reports
                            .iter()
                            .map(|r| r.tape_downtime_s.get(i).copied().unwrap_or(0.0))
                            .sum::<f64>()
                            / n
                    })
                    .collect()
            },
            ec_unavailable: avg_count(reports, |r| r.ec_unavailable),
            saturated: reports.iter().any(|r| r.saturated),
        }
    }

    /// True percentiles of this report's pooled delay distribution (see
    /// [`MetricsReport::mean_of`] for why these differ from the averaged
    /// scalar fields). Uses the same nearest-rank convention as the
    /// per-run percentiles: `idx = ceil(p * n) - 1`.
    pub fn pooled_percentiles(&self) -> DelayPercentiles {
        let s = &self.delay_samples_us;
        // simlint: allow(panic, windows(2) yields exactly two elements)
        debug_assert!(s.windows(2).all(|w| w[0] <= w[1]), "samples not sorted");
        let pct = |p: f64| -> f64 {
            if s.is_empty() {
                return 0.0;
            }
            Micros::from_micros(s[nearest_rank(s.len(), p)]).as_secs_f64()
        };
        DelayPercentiles {
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: s
                .last()
                .map_or(0.0, |&v| Micros::from_micros(v).as_secs_f64()),
            samples: s.len() as u64,
        }
    }
}

/// Mean of a counter across reports, rounded to the nearest integer.
fn avg_count(reports: &[MetricsReport], f: fn(&MetricsReport) -> u64) -> u64 {
    (reports.iter().map(f).sum::<u64>() as f64 / reports.len() as f64).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completions_before_window_are_ignored() {
        let mut m = MetricsCollector::new(SimTime::from_secs(100));
        m.record_completion(SimTime::ZERO, SimTime::from_secs(50), 1024);
        m.record_completion(SimTime::from_secs(90), SimTime::from_secs(150), 2048);
        let r = m.report(Micros::from_secs(100), false);
        assert_eq!(r.completed, 1);
        // 2048 bytes over 100 s = 0.02 KB/s.
        assert!((r.throughput_kb_per_s - 0.02).abs() < 1e-12);
        // Delay of the counted request: 150 - 90 = 60 s.
        assert!((r.mean_delay_s - 60.0).abs() < 1e-12);
        assert!((r.max_delay_s - 60.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_and_rate_math() {
        let mut m = MetricsCollector::new(SimTime::ZERO);
        for i in 0..6u64 {
            m.record_completion(
                SimTime::from_secs(i * 10),
                SimTime::from_secs(i * 10 + 5),
                1 << 20,
            );
        }
        let r = m.report(Micros::from_secs(60), false);
        assert_eq!(r.completed, 6);
        assert!((r.requests_per_min - 6.0).abs() < 1e-12);
        // 6 MB over 60 s = 102.4 KB/s.
        assert!((r.throughput_kb_per_s - 102.4).abs() < 1e-9);
        assert!((r.mean_delay_s - 5.0).abs() < 1e-12);
        assert!((r.median_delay_s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_from_sorted_delays() {
        let mut m = MetricsCollector::new(SimTime::ZERO);
        // Delays 1..=100 seconds.
        for i in 1..=100u64 {
            m.record_completion(SimTime::ZERO, SimTime::from_secs(i), 1);
        }
        let r = m.report(Micros::from_secs(1000), false);
        assert!((r.median_delay_s - 51.0).abs() < 1.5);
        assert!((r.p95_delay_s - 95.0).abs() < 1.5);
        assert!((r.max_delay_s - 100.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_use_nearest_rank_not_round() {
        // Regression for the `round((n - 1) * p)` rank formula. With 70
        // samples the p99 must be the 70th (ceil(0.99 * 70) = 70); the
        // old formula picked the 69th, understating the tail. With 10
        // samples the median must be the 5th (ceil(0.5 * 10) = 5); the
        // old formula rounded up to the 6th.
        let mut m = MetricsCollector::new(SimTime::ZERO);
        for i in 1..=70u64 {
            m.record_completion(SimTime::ZERO, SimTime::from_secs(i), 1);
        }
        let r = m.report(Micros::from_secs(1000), false);
        assert_eq!(r.p99_delay_s, 70.0, "p99 of 70 samples is the largest");
        let mut m = MetricsCollector::new(SimTime::ZERO);
        for i in 1..=10u64 {
            m.record_completion(SimTime::ZERO, SimTime::from_secs(i), 1);
        }
        let r = m.report(Micros::from_secs(1000), false);
        assert_eq!(r.median_delay_s, 5.0, "median of 10 samples is the 5th");
        // The pooled path shares the helper and must agree.
        let pooled = r.pooled_percentiles();
        assert_eq!(pooled.p50, 5.0);
    }

    #[test]
    fn snapshot_roundtrip_reproduces_the_exact_report() {
        let mut m = MetricsCollector::new(SimTime::from_secs(10));
        for i in 0..50u64 {
            m.record_admission();
            m.record_completion(
                SimTime::from_secs(i),
                SimTime::from_secs(2 * i + 11),
                1 << 20,
            );
            m.record_physical_read(SimTime::from_secs(2 * i + 11));
        }
        m.record_tape_switch(SimTime::from_secs(60));
        m.add_locate_time(SimTime::from_secs(60), Micros::from_secs(3));
        m.add_idle_time(SimTime::from_secs(70), Micros::from_secs(2));
        m.record_replica_failover();
        let snap = m.snapshot();
        let restored = MetricsCollector::from_snapshot(&snap);
        assert_eq!(restored.snapshot(), snap);
        let a = m.report(Micros::from_secs(100), false);
        let b = restored.report(Micros::from_secs(100), false);
        assert_eq!(a, b);
    }

    #[test]
    fn time_accounting_fractions() {
        let mut m = MetricsCollector::new(SimTime::ZERO);
        let t = SimTime::from_secs(10);
        m.add_locate_time(t, Micros::from_secs(25));
        m.add_read_time(t, Micros::from_secs(50));
        m.add_switch_time(t, Micros::from_secs(15));
        m.add_idle_time(t, Micros::from_secs(10));
        let r = m.report(Micros::from_secs(100), false);
        assert!((r.locate_frac - 0.25).abs() < 1e-12);
        assert!((r.read_frac - 0.50).abs() < 1e-12);
        assert!((r.switch_frac - 0.15).abs() < 1e-12);
        assert!((r.idle_frac - 0.10).abs() < 1e-12);
    }

    #[test]
    fn mean_of_averages_reports() {
        let mut a = MetricsCollector::new(SimTime::ZERO);
        a.record_completion(SimTime::ZERO, SimTime::from_secs(10), 1024);
        let ra = a.report(Micros::from_secs(100), false);
        let mut b = MetricsCollector::new(SimTime::ZERO);
        b.record_completion(SimTime::ZERO, SimTime::from_secs(30), 1024);
        b.record_completion(SimTime::ZERO, SimTime::from_secs(30), 1024);
        let rb = b.report(Micros::from_secs(100), true);
        let m = MetricsReport::mean_of(&[ra.clone(), rb.clone()]);
        assert!((m.mean_delay_s - (ra.mean_delay_s + rb.mean_delay_s) / 2.0).abs() < 1e-12);
        assert_eq!(m.completed, 2); // (1 + 2) / 2 rounds to 2
        assert!(m.saturated);
    }

    #[test]
    fn availability_accounting_flows_into_the_report() {
        let mut m = MetricsCollector::new(SimTime::ZERO);
        m.record_admission();
        m.record_admission();
        m.record_admission();
        m.record_completion(SimTime::ZERO, SimTime::from_secs(5), 1024);
        m.record_permanent_failure();
        m.record_replica_failover();
        m.add_repair_time(SimTime::from_secs(9), Micros::from_secs(10));
        m.set_fault_accounting(
            4,
            vec![Micros::from_secs(25), Micros::ZERO],
            Micros::from_secs(25),
            1,
        );
        let r = m.report(Micros::from_secs(100), false);
        assert_eq!(r.admitted, 3);
        assert_eq!(r.served, 1);
        assert_eq!(r.failed_requests, 1);
        assert_eq!(r.replica_failovers, 1);
        assert_eq!(r.media_errors, 4);
        assert_eq!(r.unserved, 1);
        assert_eq!(r.admitted, r.served + r.failed_requests + r.unserved);
        assert!((r.repair_frac - 0.10).abs() < 1e-12);
        assert!((r.degraded_frac - 0.25).abs() < 1e-12);
        assert_eq!(r.tape_downtime_s, vec![25.0, 0.0]);
        // Averaging keeps the availability fields.
        let m2 = MetricsReport::mean_of(&[r.clone(), r.clone()]);
        assert_eq!(m2.failed_requests, 1);
        assert_eq!(m2.tape_downtime_s, vec![25.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "zero reports")]
    fn mean_of_empty_panics() {
        let _ = MetricsReport::mean_of(&[]);
    }

    #[test]
    fn pooled_percentiles_differ_from_averaged_per_seed_percentiles() {
        // Seed A: delays 1..=100 s. Seed B: delays 1 and 2 s. The mean of
        // the two seed p95s is far below the p95 of the pooled 102
        // samples, which is dominated by seed A's tail.
        let mut a = MetricsCollector::new(SimTime::ZERO);
        for i in 1..=100u64 {
            a.record_completion(SimTime::ZERO, SimTime::from_secs(i), 1);
        }
        let ra = a.report(Micros::from_secs(1000), false);
        let mut b = MetricsCollector::new(SimTime::ZERO);
        b.record_completion(SimTime::ZERO, SimTime::from_secs(1), 1);
        b.record_completion(SimTime::ZERO, SimTime::from_secs(2), 1);
        let rb = b.report(Micros::from_secs(1000), false);

        let mean = MetricsReport::mean_of(&[ra.clone(), rb.clone()]);
        assert!((mean.p95_delay_s - (ra.p95_delay_s + rb.p95_delay_s) / 2.0).abs() < 1e-12);

        let pooled = mean.pooled_percentiles();
        assert_eq!(pooled.samples, 102);
        assert!(
            pooled.p95 > mean.p95_delay_s + 30.0,
            "pooled p95 {} vs averaged {}",
            pooled.p95,
            mean.p95_delay_s
        );
        assert!((pooled.max - 100.0).abs() < 1e-12);
        assert!(pooled.p99 >= pooled.p95);
    }

    #[test]
    fn p99_between_p95_and_max() {
        let mut m = MetricsCollector::new(SimTime::ZERO);
        for i in 1..=200u64 {
            m.record_completion(SimTime::ZERO, SimTime::from_secs(i), 1);
        }
        let r = m.report(Micros::from_secs(1000), false);
        assert!(r.p95_delay_s <= r.p99_delay_s);
        assert!(r.p99_delay_s <= r.max_delay_s);
        assert!((r.p99_delay_s - 198.0).abs() < 1.5);
        assert_eq!(r.delay_samples_us.len(), 200);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let m = MetricsCollector::new(SimTime::ZERO);
        let r = m.report(Micros::from_secs(10), false);
        assert_eq!(r.completed, 0);
        assert_eq!(r.throughput_kb_per_s, 0.0);
        assert_eq!(r.mean_delay_s, 0.0);
        assert_eq!(r.p95_delay_s, 0.0);
    }
}
