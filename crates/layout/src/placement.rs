//! Placement and replication schemes (Sections 4.3-4.5).
//!
//! Two layouts are studied by the paper:
//!
//! * **horizontal** — hot data distributed over all tapes;
//! * **vertical** — hot data collected onto as few tapes as possible
//!   (exactly one tape in the paper's PH-10 configuration).
//!
//! Within a tape, the contiguous region of hot copies (originals and/or
//! replicas) is positioned by the normalized *start position* `SP`:
//! `SP = 0` places it at the beginning of tape, `SP = 1` at the end.
//! Replication stores `NR` extra copies of every hot block, distributed
//! round-robin across the other tapes, at most one copy per tape.
//! Cold data fills the remaining slots.
#![allow(clippy::cast_possible_truncation)] // slot and tape counts are bounded by jukebox geometry
#![allow(clippy::cast_precision_loss)] // capacity totals stay far below 2^53

use tapesim_model::{BlockSize, JukeboxGeometry, PhysicalAddr, SlotIndex, TapeId, Topology};

use crate::block::BlockId;
use crate::catalog::{Catalog, CatalogError, StripeInfo};
use crate::expansion::scheme_expansion_factor;

/// Which layout to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Hot data (and replicas) distributed over all tapes.
    Horizontal,
    /// Hot originals packed onto as few tapes as possible; replicas
    /// distributed round-robin across the remaining tapes.
    Vertical,
}

/// How redundant copies of hot data are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementScheme {
    /// `NR` whole-block replicas of every hot block — the paper's scheme
    /// (`E = 1 + NR * PH / 100`).
    Replication {
        /// Number of replicas of each hot block (`NR`).
        nr: u32,
    },
    /// `k + m` erasure-coded shards of every hot block, one shard per
    /// tape on `k + m` distinct tapes; any `k` surviving shards
    /// reconstruct the block (`E = 1 + (PH / 100) * m / k`). Cold blocks
    /// store their `k` data shards contiguously on a single tape (no
    /// parity), so a cold read streams exactly like a whole-block read.
    Erasure {
        /// Data shards per block; must divide the logical block size in
        /// MB.
        k: u8,
        /// Parity shards per hot block.
        m: u8,
    },
}

impl PlacementScheme {
    /// No redundancy: zero replicas.
    pub const NONE: PlacementScheme = PlacementScheme::Replication { nr: 0 };

    /// Physical copies (replication) or shard cells (erasure) stored per
    /// hot block — also the distinct tapes a hot block occupies.
    pub fn copies_per_hot(&self) -> u32 {
        match *self {
            PlacementScheme::Replication { nr } => nr + 1,
            PlacementScheme::Erasure { k, m } => u32::from(k) + u32::from(m),
        }
    }

    /// True for erasure-coded striping.
    pub fn is_erasure(&self) -> bool {
        matches!(self, PlacementScheme::Erasure { .. })
    }
}

/// Parameters of a placement, mirroring the paper's experiment notation:
/// `PH` (percent hot), the redundancy scheme (`NR` replication or `k+m`
/// erasure striping), `SP` (start position).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementConfig {
    /// Layout of hot originals.
    pub layout: LayoutKind,
    /// Percent of logical blocks that are hot (`PH`), in `[0, 100]`.
    pub ph_percent: f64,
    /// How hot blocks are made redundant.
    pub scheme: PlacementScheme,
    /// Normalized start position of the hot/replica region within each
    /// tape (`SP`), in `[0, 1]`.
    pub sp: f64,
}

impl PlacementConfig {
    /// The paper's moderate-skew baseline: PH-10, NR-0, SP-0, horizontal.
    pub fn paper_baseline() -> Self {
        PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            scheme: PlacementScheme::NONE,
            sp: 0.0,
        }
    }

    /// The paper's best replicated configuration: vertical hot tape, full
    /// replication, replicas at the tape ends (Sections 4.4-4.5).
    pub fn paper_full_replication(geometry: JukeboxGeometry) -> Self {
        PlacementConfig {
            layout: LayoutKind::Vertical,
            ph_percent: 10.0,
            scheme: PlacementScheme::Replication {
                nr: geometry.tapes as u32 - 1,
            },
            sp: 1.0,
        }
    }
}

/// Where a hot block's `NR` replicas may live relative to its original's
/// library, for fleet topologies (see [`Topology`]). Irrelevant for
/// single-library topologies, where both scopes coincide with the classic
/// [`build_placement`] assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicaScope {
    /// Replicas stay in the original's library: no mount ever pays a
    /// pass-through transfer, but every copy of a hot block competes for
    /// the same library's drives and robot arms.
    InLibrary,
    /// Replicas spread round-robin across the *other* libraries first, so
    /// up to `NR` additional libraries can serve a hot block from local
    /// shelves — trading shelf locality for fleet-wide parallelism.
    CrossLibrary,
}

/// Errors raised while computing a placement.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// `NR` exceeds the number of tapes that can hold a distinct copy.
    TooManyReplicas {
        /// Requested number of replicas.
        requested: u32,
        /// Maximum feasible for this geometry/layout.
        max: u32,
    },
    /// Erasure `k + m` exceeds the distinct tapes a stripe can span.
    TooManyShards {
        /// Requested shard count (`k + m`).
        requested: u32,
        /// Maximum distinct tapes available to one stripe.
        max: u32,
    },
    /// The configuration admits no blocks at all.
    NoCapacity,
    /// `PH` or `SP` outside their valid ranges.
    InvalidParameter(&'static str),
    /// A bug-level failure from the catalog builder.
    Catalog(CatalogError),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::TooManyReplicas { requested, max } => {
                write!(f, "requested {requested} replicas; at most {max} feasible")
            }
            PlacementError::TooManyShards { requested, max } => {
                write!(
                    f,
                    "requested {requested} erasure shards per stripe; at most {max} tapes available"
                )
            }
            PlacementError::NoCapacity => write!(f, "no blocks fit this configuration"),
            PlacementError::InvalidParameter(p) => write!(f, "invalid parameter: {p}"),
            PlacementError::Catalog(e) => write!(f, "catalog error: {e}"),
        }
    }
}

impl std::error::Error for PlacementError {}

impl From<CatalogError> for PlacementError {
    fn from(e: CatalogError) -> Self {
        PlacementError::Catalog(e)
    }
}

/// The result of a placement: the catalog plus summary statistics.
#[derive(Debug, Clone)]
pub struct PlacedCatalog {
    /// The block-to-tape mapping.
    pub catalog: Catalog,
    /// Analytic expansion factor for the scheme (see
    /// [`scheme_expansion_factor`]).
    pub expansion: f64,
    /// Tapes that hold hot originals (one entry for horizontal layouts
    /// means every tape does; listed explicitly for vertical layouts).
    /// For erasure placements: every tape holding a hot shard cell.
    pub hot_tapes: Vec<TapeId>,
    /// The configuration that produced this catalog.
    pub config: PlacementConfig,
}

/// Builds the catalog for a placement configuration, packing as many
/// logical blocks as fit (the paper's simulations always model a full
/// jukebox; replication trades cold capacity for hot copies).
pub fn build_placement(
    geometry: JukeboxGeometry,
    block: BlockSize,
    cfg: PlacementConfig,
) -> Result<PlacedCatalog, PlacementError> {
    validate_config(geometry, block, &cfg)?;
    let slots = geometry.slots_per_tape(block);
    let e = scheme_expansion_factor(cfg.scheme, cfg.ph_percent);
    let upper = logical_upper_bound(geometry, block, cfg.scheme, e);
    let (catalog, hot_tapes) = bisect_largest(upper, |d| match cfg.scheme {
        PlacementScheme::Replication { nr } => try_build(geometry, block, slots, cfg, nr, d),
        PlacementScheme::Erasure { k, m } => {
            try_build_ec(geometry, block, cfg, d, k, m, None, ReplicaScope::InLibrary)
        }
    })?;
    Ok(PlacedCatalog {
        catalog,
        expansion: e,
        hot_tapes,
        config: cfg,
    })
}

/// [`build_placement`] for a fleet [`Topology`]: hot originals are
/// assigned exactly as the classic layouts assign them, but each hot
/// block's `NR` replicas are targeted by `scope` — confined to the
/// original's library, or spread round-robin across the other libraries.
/// For a single-library topology the produced catalog is identical to
/// [`build_placement`] under either scope.
///
/// # Errors
/// Everything [`build_placement`] raises, plus
/// [`PlacementError::TooManyReplicas`] when `NR` exceeds what the scope
/// admits (e.g. in-library replication beyond the smallest library's
/// shelf count) and [`PlacementError::InvalidParameter`] when the
/// topology's shelf total disagrees with the geometry.
pub fn build_fleet_placement(
    geometry: JukeboxGeometry,
    block: BlockSize,
    cfg: PlacementConfig,
    topology: &Topology,
    scope: ReplicaScope,
) -> Result<PlacedCatalog, PlacementError> {
    validate_config(geometry, block, &cfg)?;
    if topology.check_geometry(&geometry).is_err() {
        return Err(PlacementError::InvalidParameter("topology"));
    }
    // With one library there is nothing to cross: both scopes reduce to
    // the classic assignment. Demoting *before* the capacity guard keeps
    // the guard consistent with the scope the build will actually use.
    let scope = if topology.library_count() == 1 {
        ReplicaScope::InLibrary
    } else {
        scope
    };
    if cfg.ph_percent > 0.0 {
        // Every copy (replica or shard cell) of a hot block needs a
        // distinct tape reachable under `scope`: the origin's library for
        // InLibrary, the whole fleet for CrossLibrary.
        let cap = match scope {
            ReplicaScope::InLibrary => topology
                .libraries()
                .iter()
                .map(|l| u32::from(l.tapes))
                .min()
                .unwrap_or(0),
            ReplicaScope::CrossLibrary => geometry.tapes as u32,
        };
        match cfg.scheme {
            PlacementScheme::Replication { nr } if nr + 1 > cap => {
                return Err(PlacementError::TooManyReplicas {
                    requested: nr,
                    max: cap.saturating_sub(1),
                });
            }
            PlacementScheme::Erasure { k, m } if u32::from(k) + u32::from(m) > cap => {
                return Err(PlacementError::TooManyShards {
                    requested: u32::from(k) + u32::from(m),
                    max: cap,
                });
            }
            _ => {}
        }
    }
    let slots = geometry.slots_per_tape(block);
    let e = scheme_expansion_factor(cfg.scheme, cfg.ph_percent);
    let upper = logical_upper_bound(geometry, block, cfg.scheme, e);
    let (catalog, hot_tapes) = bisect_largest(upper, |d| match cfg.scheme {
        PlacementScheme::Replication { nr } => {
            try_build_fleet(geometry, block, slots, cfg, nr, d, topology, scope)
        }
        PlacementScheme::Erasure { k, m } => {
            try_build_ec(geometry, block, cfg, d, k, m, Some(topology), scope)
        }
    })?;
    Ok(PlacedCatalog {
        catalog,
        expansion: e,
        hot_tapes,
        config: cfg,
    })
}

fn validate_config(
    geometry: JukeboxGeometry,
    block: BlockSize,
    cfg: &PlacementConfig,
) -> Result<(), PlacementError> {
    if !(0.0..=100.0).contains(&cfg.ph_percent) || !cfg.ph_percent.is_finite() {
        return Err(PlacementError::InvalidParameter("ph_percent"));
    }
    if !(0.0..=1.0).contains(&cfg.sp) || !cfg.sp.is_finite() {
        return Err(PlacementError::InvalidParameter("sp"));
    }
    match cfg.scheme {
        PlacementScheme::Replication { nr } => {
            // Every hot block has its original on one tape plus NR
            // replicas, each on a distinct other tape.
            let max = geometry.tapes as u32 - 1;
            if nr > max && cfg.ph_percent > 0.0 {
                return Err(PlacementError::TooManyReplicas { requested: nr, max });
            }
        }
        PlacementScheme::Erasure { k, m } => {
            if k == 0 || m == 0 {
                return Err(PlacementError::InvalidParameter(
                    "erasure k and m must be positive",
                ));
            }
            let km = u32::from(k) + u32::from(m);
            if km > 16 {
                return Err(PlacementError::InvalidParameter("erasure k + m exceeds 16"));
            }
            if !block.mb().is_multiple_of(u32::from(k)) {
                return Err(PlacementError::InvalidParameter(
                    "block size not divisible by erasure k",
                ));
            }
            if km > geometry.tapes as u32 && cfg.ph_percent > 0.0 {
                return Err(PlacementError::TooManyShards {
                    requested: km,
                    max: geometry.tapes as u32,
                });
            }
        }
    }
    Ok(())
}

/// Upper bound on the feasible logical block count: jukebox capacity
/// divided by the per-block storage cost (`E` whole blocks for
/// replication, `E * k` shard cells for erasure), padded because
/// hot-count rounding can push the exact bound a block or two either way.
fn logical_upper_bound(
    geometry: JukeboxGeometry,
    block: BlockSize,
    scheme: PlacementScheme,
    e: f64,
) -> u32 {
    let (total, unit) = match scheme {
        PlacementScheme::Replication { .. } => (geometry.total_slots(block), 1.0),
        PlacementScheme::Erasure { k, .. } => (
            geometry.total_slots(shard_size(block, k)),
            f64::from(u32::from(k)),
        ),
    };
    ((total as f64 / (e * unit)).floor() as u64 + 2).min(total) as u32
}

/// Physical cell size of one erasure data shard.
fn shard_size(block: BlockSize, k: u8) -> BlockSize {
    BlockSize::from_mb(block.mb() / u32::from(k))
}

/// Finds the largest `d` in `1..=upper` for which `try_at(d)` succeeds
/// and returns that build, assuming feasibility is downward-closed (if
/// `d` fits, so does `d - 1`). Replaces the former linear walk from the
/// upper bound — O(log upper) rebuilds instead of O(slack) — and returns
/// the identical catalog: both pick the largest feasible `d`, and the
/// build at a given `d` is deterministic. Erasure placements can violate
/// monotonicity by one block in rare SP-rounding corners (a shrinking hot
/// region can split a tape's trailing free run below `k` contiguous
/// cells); the result is then a feasible placement at most one block
/// under the optimum.
fn bisect_largest<T>(
    upper: u32,
    mut try_at: impl FnMut(u32) -> Result<T, TryBuildError>,
) -> Result<T, PlacementError> {
    // Invariant: every count above `hi` is infeasible; `best` holds the
    // build at `lo`, the largest known-feasible count (none yet at 0).
    let mut best: Option<T> = None;
    let mut lo = 0u32;
    let mut hi = upper;
    while lo < hi {
        // Upper midpoint so the range strictly shrinks on success.
        let mid = hi - (hi - lo) / 2;
        match try_at(mid) {
            Ok(v) => {
                best = Some(v);
                lo = mid;
            }
            Err(TryBuildError::DoesNotFit) => hi = mid - 1,
            Err(TryBuildError::Catalog(e)) => return Err(e.into()),
        }
    }
    best.ok_or(PlacementError::NoCapacity)
}

enum TryBuildError {
    DoesNotFit,
    Catalog(CatalogError),
}

impl From<CatalogError> for TryBuildError {
    fn from(e: CatalogError) -> Self {
        TryBuildError::Catalog(e)
    }
}

/// Number of hot blocks for `d` logical blocks at `ph` percent.
fn hot_count_for(d: u32, ph_percent: f64) -> u32 {
    ((d as f64 * ph_percent / 100.0).round() as u32).min(d)
}

fn try_build(
    geometry: JukeboxGeometry,
    block: BlockSize,
    slots: u32,
    cfg: PlacementConfig,
    nr: u32,
    d: u32,
) -> Result<(Catalog, Vec<TapeId>), TryBuildError> {
    let t = geometry.tapes as u32;
    let hot = hot_count_for(d, cfg.ph_percent);
    let nr = if hot == 0 { 0 } else { nr };
    let copies = hot as u64 * (1 + nr) as u64 + (d - hot) as u64;
    if copies > geometry.total_slots(block) {
        return Err(TryBuildError::DoesNotFit);
    }

    // Per-tape list of hot copies (block ids), in block-id order, plus the
    // set of tapes holding hot *originals*.
    let mut hot_on_tape: Vec<Vec<BlockId>> = vec![Vec::new(); t as usize];
    let mut origin_tapes: Vec<bool> = vec![false; t as usize];
    match cfg.layout {
        LayoutKind::Horizontal => {
            for b in 0..hot {
                let origin = b % t;
                origin_tapes[origin as usize] = true;
                hot_on_tape[origin as usize].push(BlockId(b));
                for j in 0..nr {
                    let tape = (origin + 1 + j) % t;
                    hot_on_tape[tape as usize].push(BlockId(b));
                }
            }
        }
        LayoutKind::Vertical => {
            let hot_tapes = hot.div_ceil(slots);
            if hot_tapes >= t && d > hot {
                return Err(TryBuildError::DoesNotFit);
            }
            let remaining = t - hot_tapes;
            if nr > remaining {
                // Cannot give each replica a distinct non-hot tape.
                return Err(TryBuildError::DoesNotFit);
            }
            for b in 0..hot {
                let origin = b / slots;
                origin_tapes[origin as usize] = true;
                hot_on_tape[origin as usize].push(BlockId(b));
                for j in 0..nr {
                    let tape = hot_tapes + (b * nr + j) % remaining;
                    hot_on_tape[tape as usize].push(BlockId(b));
                }
            }
        }
    }

    // Hot copies are placed in one contiguous region per tape, positioned
    // by SP; they must each fit on their tape.
    for copies in &hot_on_tape {
        if copies.len() as u32 > slots {
            return Err(TryBuildError::DoesNotFit);
        }
    }

    let mut builder = Catalog::builder(geometry, block, d, hot);
    let mut free: Vec<Vec<SlotIndex>> = Vec::with_capacity(t as usize);
    for (tape_idx, copies) in hot_on_tape.iter().enumerate() {
        let len = copies.len() as u32;
        let start = region_start(cfg.sp, len, slots);
        for (i, &b) in copies.iter().enumerate() {
            builder.place(
                b,
                PhysicalAddr {
                    tape: TapeId(tape_idx as u16),
                    slot: SlotIndex(start + i as u32),
                },
            )?;
        }
        // Remaining slots on this tape, ascending, are available for cold.
        let mut f: Vec<SlotIndex> = (0..start)
            .chain(start + len..slots)
            .map(SlotIndex)
            .collect();
        f.reverse(); // use as a stack popping the lowest slot first
        free.push(f);
    }

    place_cold_round_robin(&mut builder, geometry, slots, &mut free, hot, d, cfg.layout)?;
    let catalog = builder.build().map_err(TryBuildError::Catalog)?;
    let hot_tapes = origin_tapes
        .iter()
        .enumerate()
        .filter_map(|(i, &is_origin)| is_origin.then_some(TapeId(i as u16)))
        .collect();
    Ok((catalog, hot_tapes))
}

#[allow(clippy::too_many_arguments)] // placement knobs are irreducible here
fn try_build_fleet(
    geometry: JukeboxGeometry,
    block: BlockSize,
    slots: u32,
    cfg: PlacementConfig,
    nr: u32,
    d: u32,
    topology: &Topology,
    scope: ReplicaScope,
) -> Result<(Catalog, Vec<TapeId>), TryBuildError> {
    let t = geometry.tapes as u32;
    let hot = hot_count_for(d, cfg.ph_percent);
    let nr = if hot == 0 { 0 } else { nr };
    let copies = hot as u64 * (1 + nr) as u64 + (d - hot) as u64;
    if copies > geometry.total_slots(block) {
        return Err(TryBuildError::DoesNotFit);
    }
    let hot_prefix = match cfg.layout {
        LayoutKind::Horizontal => 0,
        LayoutKind::Vertical => hot.div_ceil(slots),
    };
    if cfg.layout == LayoutKind::Vertical && hot_prefix >= t && d > hot {
        return Err(TryBuildError::DoesNotFit);
    }

    let mut hot_on_tape: Vec<Vec<BlockId>> = vec![Vec::new(); t as usize];
    let mut origin_tapes: Vec<bool> = vec![false; t as usize];
    for b in 0..hot {
        // Origins are assigned exactly as the classic layouts assign
        // them; only replica targets differ by scope.
        let origin = match cfg.layout {
            LayoutKind::Horizontal => b % t,
            LayoutKind::Vertical => b / slots,
        };
        origin_tapes[origin as usize] = true;
        hot_on_tape[origin as usize].push(BlockId(b));
        if nr == 0 {
            continue;
        }
        let ring = replica_ring(topology, scope, cfg.layout, origin, b, nr, hot_prefix);
        if (ring.len() as u32) < nr {
            return Err(TryBuildError::DoesNotFit);
        }
        for &tape in ring.iter().take(nr as usize) {
            hot_on_tape[tape as usize].push(BlockId(b));
        }
    }

    for copies in &hot_on_tape {
        if copies.len() as u32 > slots {
            return Err(TryBuildError::DoesNotFit);
        }
    }

    let mut builder = Catalog::builder(geometry, block, d, hot);
    let mut free: Vec<Vec<SlotIndex>> = Vec::with_capacity(t as usize);
    for (tape_idx, copies) in hot_on_tape.iter().enumerate() {
        let len = copies.len() as u32;
        let start = region_start(cfg.sp, len, slots);
        for (i, &b) in copies.iter().enumerate() {
            builder.place(
                b,
                PhysicalAddr {
                    tape: TapeId(tape_idx as u16),
                    slot: SlotIndex(start + i as u32),
                },
            )?;
        }
        let mut f: Vec<SlotIndex> = (0..start)
            .chain(start + len..slots)
            .map(SlotIndex)
            .collect();
        f.reverse();
        free.push(f);
    }

    place_cold_round_robin(&mut builder, geometry, slots, &mut free, hot, d, cfg.layout)?;
    let catalog = builder.build().map_err(TryBuildError::Catalog)?;
    let hot_tapes = origin_tapes
        .iter()
        .enumerate()
        .filter_map(|(i, &is_origin)| is_origin.then_some(TapeId(i as u16)))
        .collect();
    Ok((catalog, hot_tapes))
}

/// Replica target tapes for hot block `b` whose original sits on
/// `origin`, in assignment order: replica `j` lands on the `j`-th entry.
/// Entries are distinct tapes, never the origin, and (for vertical
/// layouts) never a hot-prefix tape. A result shorter than `nr` means the
/// scope cannot host that many distinct copies.
fn replica_ring(
    topology: &Topology,
    scope: ReplicaScope,
    layout: LayoutKind,
    origin: u32,
    b: u32,
    nr: u32,
    hot_prefix: u32,
) -> Vec<u32> {
    let lib = u32::from(topology.library_of_tape(TapeId(origin as u16)));
    let l = u32::from(topology.library_count());
    let lib_tapes = |i: u32| -> u32 {
        topology
            .libraries()
            .get(i as usize)
            .map_or(0, |x| u32::from(x.tapes))
    };
    let base = |i: u32| u32::from(topology.tape_base(i as u16));
    match scope {
        ReplicaScope::InLibrary => {
            let (lo, n) = (base(lib), lib_tapes(lib));
            match layout {
                // Rotate within the library starting just after the
                // origin — the classic `(origin + 1 + j) % T`, confined.
                LayoutKind::Horizontal => (1..n).map(|k| lo + ((origin - lo) + k) % n).collect(),
                // The classic round-robin over non-hot tapes, confined to
                // the origin's library.
                LayoutKind::Vertical => {
                    let avail: Vec<u32> = (lo..lo + n).filter(|&x| x >= hot_prefix).collect();
                    let len = avail.len() as u32;
                    if len < nr {
                        return Vec::new();
                    }
                    (0..nr)
                        .map(|j| avail[((b * nr + j) % len) as usize])
                        .collect()
                }
            }
        }
        ReplicaScope::CrossLibrary => {
            // Breadth-first over the *other* libraries (then the origin's
            // own, last), one tape per library per pass, rotating within
            // each library by the block id so replicas spread over its
            // shelves. Each (library, tape) pair appears exactly once, so
            // entries are distinct.
            let max_n = (0..l).map(lib_tapes).max().unwrap_or(0);
            let mut ring = Vec::new();
            for pass in 0..max_n {
                for k in 1..=l {
                    let tl = (lib + k) % l;
                    let n_t = lib_tapes(tl);
                    if pass >= n_t {
                        continue;
                    }
                    let tape = base(tl) + (b + pass) % n_t;
                    if tape == origin || tape < hot_prefix {
                        continue;
                    }
                    ring.push(tape);
                }
            }
            ring
        }
    }
}

/// Builds an erasure-striped catalog: its "blocks" are shard *cells* of
/// `block.mb() / k` MB (see [`StripeInfo`]). Hot logical block `h` stores
/// `k + m` cells on that many distinct tapes, chosen by layout and scope;
/// cold logical block `c` stores its `k` data cells contiguously on one
/// tape, so a cold read streams exactly like a whole-block read.
#[allow(clippy::too_many_arguments)] // placement knobs are irreducible here
fn try_build_ec(
    geometry: JukeboxGeometry,
    block: BlockSize,
    cfg: PlacementConfig,
    d: u32,
    k: u8,
    m: u8,
    topology: Option<&Topology>,
    scope: ReplicaScope,
) -> Result<(Catalog, Vec<TapeId>), TryBuildError> {
    let t = geometry.tapes as u32;
    let km = u32::from(k) + u32::from(m);
    let kk = u32::from(k);
    let shard = shard_size(block, k);
    let slots = geometry.slots_per_tape(shard);
    let hot = hot_count_for(d, cfg.ph_percent);
    let cells = u64::from(hot) * u64::from(km) + u64::from(d - hot) * u64::from(kk);
    if cells > geometry.total_slots(shard) {
        return Err(TryBuildError::DoesNotFit);
    }

    // Per-tape list of hot shard cells, in cell-id order.
    let mut hot_on_tape: Vec<Vec<BlockId>> = vec![Vec::new(); t as usize];
    let mut is_hot_tape = vec![false; t as usize];
    for h in 0..hot {
        let tapes = stripe_tapes(cfg.layout, scope, topology, t, slots, km, h)?;
        debug_assert_eq!(tapes.len() as u32, km);
        for (j, &tape) in tapes.iter().enumerate() {
            hot_on_tape[tape as usize].push(BlockId(h * km + j as u32));
            is_hot_tape[tape as usize] = true;
        }
    }

    // Hot cells occupy one contiguous region per tape, positioned by SP.
    let hot_cells = hot * km;
    let mut builder = Catalog::builder(geometry, shard, cells as u32, hot_cells);
    builder.set_stripe(StripeInfo {
        k,
        m,
        logical_blocks: d,
        logical_hot: hot,
    });
    // Per tape, the ascending free runs `[lo, hi)` left around the hot
    // region; cold blocks carve `k`-cell pieces off them.
    let mut runs: Vec<Vec<(u32, u32)>> = Vec::with_capacity(t as usize);
    for (tape_idx, cells_here) in hot_on_tape.iter().enumerate() {
        let len = cells_here.len() as u32;
        if len > slots {
            return Err(TryBuildError::DoesNotFit);
        }
        let start = region_start(cfg.sp, len, slots);
        for (i, &cell) in cells_here.iter().enumerate() {
            builder.place(
                cell,
                PhysicalAddr {
                    tape: TapeId(tape_idx as u16),
                    slot: SlotIndex(start + i as u32),
                },
            )?;
        }
        runs.push(vec![(0, start), (start + len, slots)]);
    }

    // Cold blocks round-robin over tapes; each takes `k` contiguous
    // cells. Vertical visits stripe-free tapes first, like the classic
    // hot/cold separation.
    let order: Vec<usize> = match cfg.layout {
        LayoutKind::Horizontal => (0..t as usize).collect(),
        LayoutKind::Vertical => (0..t as usize)
            .filter(|&i| !is_hot_tape[i])
            .chain((0..t as usize).filter(|&i| is_hot_tape[i]))
            .collect(),
    };
    let mut cursor = 0usize;
    for c in hot..d {
        let first_cell = hot_cells + (c - hot) * kk;
        let mut placed = false;
        for step in 0..order.len() {
            let tape_idx = order[(cursor + step) % order.len()];
            if let Some(slot0) = take_run(&mut runs[tape_idx], kk) {
                for j in 0..kk {
                    builder.place(
                        BlockId(first_cell + j),
                        PhysicalAddr {
                            tape: TapeId(tape_idx as u16),
                            slot: SlotIndex(slot0 + j),
                        },
                    )?;
                }
                cursor = (cursor + step + 1) % order.len();
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(TryBuildError::DoesNotFit);
        }
    }
    let catalog = builder.build().map_err(TryBuildError::Catalog)?;
    let hot_tapes = is_hot_tape
        .iter()
        .enumerate()
        .filter_map(|(i, &h)| h.then_some(TapeId(i as u16)))
        .collect();
    Ok((catalog, hot_tapes))
}

/// Takes the `need` lowest contiguous cells from a tape's free runs,
/// returning the first slot, or `None` when no run is long enough (runs
/// shorter than `need` stay as unusable fragments — at most `need - 1`
/// cells each).
fn take_run(runs: &mut [(u32, u32)], need: u32) -> Option<u32> {
    for (lo, hi) in runs.iter_mut() {
        if *hi - *lo >= need {
            let s = *lo;
            *lo += need;
            return Some(s);
        }
    }
    None
}

/// The `km` distinct tapes hosting hot stripe `h`'s shard cells, in shard
/// order. `topology == None` means the classic single jukebox.
fn stripe_tapes(
    layout: LayoutKind,
    scope: ReplicaScope,
    topology: Option<&Topology>,
    t: u32,
    slots: u32,
    km: u32,
    h: u32,
) -> Result<Vec<u32>, TryBuildError> {
    if let (Some(topo), ReplicaScope::CrossLibrary) = (topology, scope) {
        let l = u32::from(topo.library_count());
        let lib_tapes = |i: u32| -> u32 {
            topo.libraries()
                .get(i as usize)
                .map_or(0, |x| u32::from(x.tapes))
        };
        let base = |i: u32| u32::from(topo.tape_base(i as u16));
        let max_n = (0..l).map(lib_tapes).max().unwrap_or(0);
        return match layout {
            LayoutKind::Horizontal => {
                // Breadth-first over libraries starting at the one owning
                // tape `h % t`: one shard per library per pass, rotated
                // within each library by the stripe id. Distinct because
                // each (library, pass) pair contributes at most one tape.
                let lib0 = u32::from(topo.library_of_tape(TapeId((h % t) as u16)));
                let mut tapes = Vec::with_capacity(km as usize);
                'outer: for pass in 0..max_n {
                    for i in 0..l {
                        let tl = (lib0 + i) % l;
                        let n_t = lib_tapes(tl);
                        if pass >= n_t {
                            continue;
                        }
                        tapes.push(base(tl) + (h + pass) % n_t);
                        if tapes.len() as u32 == km {
                            break 'outer;
                        }
                    }
                }
                if (tapes.len() as u32) < km {
                    return Err(TryBuildError::DoesNotFit);
                }
                Ok(tapes)
            }
            LayoutKind::Vertical => {
                // Groups of `km` tapes chosen breadth-first across
                // libraries, so every stripe spans as many libraries as
                // it can while hot data still packs onto few tapes. Each
                // group hosts `slots` stripes before the next opens.
                let mut order = Vec::with_capacity(t as usize);
                for pass in 0..max_n {
                    for i in 0..l {
                        if pass < lib_tapes(i) {
                            order.push(base(i) + pass);
                        }
                    }
                }
                let g = (h / slots) as usize;
                order
                    .chunks_exact(km as usize)
                    .nth(g)
                    .map(<[u32]>::to_vec)
                    .ok_or(TryBuildError::DoesNotFit)
            }
        };
    }
    // Classic jukebox, or in-library fleet scope: the stripe stays inside
    // one library (the whole jukebox when there is no topology).
    let libs: Vec<(u32, u32)> = match topology {
        None => vec![(0, t)],
        Some(topo) => (0..topo.library_count())
            .map(|i| {
                (
                    u32::from(topo.tape_base(i)),
                    u32::from(topo.libraries()[i as usize].tapes),
                )
            })
            .collect(),
    };
    match layout {
        LayoutKind::Horizontal => {
            // The classic rotating window `(origin + j) % n`, confined to
            // the library owning tape `h % t`.
            let origin = h % t;
            let (lo, n) = libs
                .iter()
                .copied()
                .find(|&(lo, n)| origin >= lo && origin < lo + n)
                .ok_or(TryBuildError::DoesNotFit)?;
            if km > n {
                return Err(TryBuildError::DoesNotFit);
            }
            Ok((0..km).map(|j| lo + ((origin - lo) + j) % n).collect())
        }
        LayoutKind::Vertical => {
            // Contiguous groups of `km` tapes, library by library (never
            // spanning one); each group hosts `slots` stripes — its tapes
            // fill completely — before the next opens.
            let mut groups = Vec::new();
            for (lo, n) in libs {
                for q in 0..n / km {
                    groups.push(lo + q * km);
                }
            }
            let g = (h / slots) as usize;
            let base = *groups.get(g).ok_or(TryBuildError::DoesNotFit)?;
            Ok((base..base + km).collect())
        }
    }
}

/// Start slot of a contiguous region of `len` copies on a tape of `slots`
/// slots, for normalized position `sp` (0 = beginning, 1 = end).
pub(crate) fn region_start(sp: f64, len: u32, slots: u32) -> u32 {
    debug_assert!(len <= slots);
    ((slots - len) as f64 * sp).round() as u32
}

/// Distributes cold blocks round-robin over tape free lists. For vertical
/// layouts, tapes holding hot originals are used only after all other
/// tapes are full, preserving the paper's hot/cold separation.
fn place_cold_round_robin(
    builder: &mut crate::catalog::CatalogBuilder,
    geometry: JukeboxGeometry,
    slots: u32,
    free: &mut [Vec<SlotIndex>],
    hot: u32,
    d: u32,
    layout: LayoutKind,
) -> Result<(), TryBuildError> {
    let t = geometry.tapes as usize;
    // Tape visit order for cold data.
    let order: Vec<usize> = match layout {
        LayoutKind::Horizontal => (0..t).collect(),
        LayoutKind::Vertical => {
            // Non-hot tapes first (hot originals are packed onto a prefix
            // of tapes), then hot tapes as spill.
            let hot_tapes = hot.div_ceil(slots) as usize;
            (hot_tapes..t).chain(0..hot_tapes).collect()
        }
    };
    let mut cursor = 0usize;
    for b in hot..d {
        let mut placed = false;
        for step in 0..order.len() {
            let tape_idx = order[(cursor + step) % order.len()];
            if let Some(slot) = free[tape_idx].pop() {
                builder.place(
                    BlockId(b),
                    PhysicalAddr {
                        tape: TapeId(tape_idx as u16),
                        slot,
                    },
                )?;
                cursor = (cursor + step + 1) % order.len();
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(TryBuildError::DoesNotFit);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Heat;

    const B16: BlockSize = BlockSize::PAPER_DEFAULT;

    fn paper_geom() -> JukeboxGeometry {
        JukeboxGeometry::PAPER_DEFAULT
    }

    #[test]
    fn region_start_positions() {
        assert_eq!(region_start(0.0, 10, 100), 0);
        assert_eq!(region_start(1.0, 10, 100), 90);
        assert_eq!(region_start(0.5, 10, 100), 45);
        assert_eq!(region_start(0.5, 100, 100), 0);
    }

    #[test]
    fn paper_baseline_fills_jukebox_exactly() {
        // PH-10, NR-0: no replication, so every slot holds a distinct block.
        let placed = build_placement(paper_geom(), B16, PlacementConfig::paper_baseline()).unwrap();
        let c = &placed.catalog;
        assert_eq!(c.num_blocks(), 4480);
        assert_eq!(c.hot_count(), 448);
        assert_eq!(c.total_copies(), 4480);
        for t in paper_geom().tape_ids() {
            assert_eq!(c.occupied_slots(t), 448);
        }
        assert!((placed.expansion - 1.0).abs() < 1e-12);
    }

    #[test]
    fn horizontal_spreads_hot_evenly() {
        let placed = build_placement(paper_geom(), B16, PlacementConfig::paper_baseline()).unwrap();
        let c = &placed.catalog;
        for t in paper_geom().tape_ids() {
            let hot_here = c
                .tape_contents(t)
                .filter(|&(_, b)| c.heat(b) == Heat::Hot)
                .count();
            assert_eq!(hot_here, 44 + usize::from(t.0 < 8)); // 448 over 10 tapes
        }
        assert_eq!(placed.hot_tapes.len(), 10);
    }

    #[test]
    fn sp_zero_places_hot_at_beginning() {
        let placed = build_placement(paper_geom(), B16, PlacementConfig::paper_baseline()).unwrap();
        let c = &placed.catalog;
        // First slots of tape 0 are hot.
        let first: Vec<_> = c.tape_contents(TapeId(0)).take(5).collect();
        for (slot, b) in first {
            assert!(slot.0 < 45);
            assert_eq!(c.heat(b), Heat::Hot);
        }
    }

    #[test]
    fn sp_one_places_hot_at_end() {
        let cfg = PlacementConfig {
            sp: 1.0,
            ..PlacementConfig::paper_baseline()
        };
        let placed = build_placement(paper_geom(), B16, cfg).unwrap();
        let c = &placed.catalog;
        for t in paper_geom().tape_ids() {
            let hot_slots: Vec<u32> = c
                .tape_contents(t)
                .filter(|&(_, b)| c.heat(b) == Heat::Hot)
                .map(|(s, _)| s.0)
                .collect();
            assert!(!hot_slots.is_empty());
            assert!(
                hot_slots.iter().all(|&s| s >= 448 - 45),
                "hot not at end of {t}: {hot_slots:?}"
            );
        }
    }

    #[test]
    fn full_replication_vertical_matches_hand_count() {
        // Worked out by hand: T=10, S=448, NR=9, PH=10 => D=2356, H=236,
        // copies = 236*10 + 2120 = 4480 (jukebox exactly full).
        let cfg = PlacementConfig::paper_full_replication(paper_geom());
        let placed = build_placement(paper_geom(), B16, cfg).unwrap();
        let c = &placed.catalog;
        assert_eq!(c.num_blocks(), 2356);
        assert_eq!(c.hot_count(), 236);
        assert_eq!(c.total_copies(), 4480);
        // Every hot block has a copy on every tape.
        for b in 0..c.hot_count() {
            assert_eq!(c.replicas(BlockId(b)).len(), 10);
        }
        // Hot originals all on tape 0.
        assert_eq!(placed.hot_tapes, vec![TapeId(0)]);
        assert!((placed.expansion - 1.9).abs() < 1e-12);
    }

    #[test]
    fn vertical_replicas_at_tape_end_when_sp_one() {
        let cfg = PlacementConfig::paper_full_replication(paper_geom());
        let placed = build_placement(paper_geom(), B16, cfg).unwrap();
        let c = &placed.catalog;
        // On a non-hot tape, the 236 replicas occupy the last 236 slots.
        for t in 1..10u16 {
            let hot_slots: Vec<u32> = c
                .tape_contents(TapeId(t))
                .filter(|&(_, b)| c.heat(b) == Heat::Hot)
                .map(|(s, _)| s.0)
                .collect();
            assert_eq!(hot_slots.len(), 236);
            assert_eq!(*hot_slots.first().unwrap(), 448 - 236);
            assert_eq!(*hot_slots.last().unwrap(), 447);
        }
    }

    #[test]
    fn partial_replication_counts() {
        let cfg = PlacementConfig {
            layout: LayoutKind::Vertical,
            ph_percent: 10.0,
            scheme: PlacementScheme::Replication { nr: 2 },
            sp: 1.0,
        };
        let placed = build_placement(paper_geom(), B16, cfg).unwrap();
        let c = &placed.catalog;
        for b in 0..c.hot_count() {
            assert_eq!(c.replicas(BlockId(b)).len(), 3, "original + 2 replicas");
        }
        for b in c.hot_count()..c.num_blocks() {
            assert_eq!(c.replicas(BlockId(b)).len(), 1);
        }
        // Capacity is nearly fully used (within a couple of slots of 4480).
        assert!(c.total_copies() >= 4478, "copies = {}", c.total_copies());
    }

    #[test]
    fn horizontal_full_replication_feasible() {
        let cfg = PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            scheme: PlacementScheme::Replication { nr: 9 },
            sp: 1.0,
        };
        let placed = build_placement(paper_geom(), B16, cfg).unwrap();
        let c = &placed.catalog;
        for b in 0..c.hot_count() {
            assert_eq!(c.replicas(BlockId(b)).len(), 10);
        }
        assert!(c.total_copies() >= 4470);
    }

    #[test]
    fn too_many_replicas_rejected() {
        let cfg = PlacementConfig {
            scheme: PlacementScheme::Replication { nr: 10 },
            ..PlacementConfig::paper_baseline()
        };
        assert_eq!(
            build_placement(paper_geom(), B16, cfg).unwrap_err(),
            PlacementError::TooManyReplicas {
                requested: 10,
                max: 9
            }
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        let bad_ph = PlacementConfig {
            ph_percent: 101.0,
            ..PlacementConfig::paper_baseline()
        };
        assert!(matches!(
            build_placement(paper_geom(), B16, bad_ph).unwrap_err(),
            PlacementError::InvalidParameter("ph_percent")
        ));
        let bad_sp = PlacementConfig {
            sp: 1.5,
            ..PlacementConfig::paper_baseline()
        };
        assert!(matches!(
            build_placement(paper_geom(), B16, bad_sp).unwrap_err(),
            PlacementError::InvalidParameter("sp")
        ));
    }

    #[test]
    fn zero_percent_hot_is_all_cold() {
        let cfg = PlacementConfig {
            ph_percent: 0.0,
            scheme: PlacementScheme::Replication { nr: 5 },
            ..PlacementConfig::paper_baseline()
        };
        let placed = build_placement(paper_geom(), B16, cfg).unwrap();
        assert_eq!(placed.catalog.hot_count(), 0);
        assert_eq!(placed.catalog.num_blocks(), 4480);
    }

    #[test]
    fn five_tape_geometry_works() {
        let cfg = PlacementConfig {
            layout: LayoutKind::Vertical,
            ph_percent: 10.0,
            scheme: PlacementScheme::Replication { nr: 4 },
            sp: 1.0,
        };
        let placed = build_placement(JukeboxGeometry::FIVE_TAPE, B16, cfg).unwrap();
        let c = &placed.catalog;
        assert!(c.num_blocks() > 0);
        for b in 0..c.hot_count() {
            assert_eq!(c.replicas(BlockId(b)).len(), 5);
        }
    }

    fn paper_topology(libraries: u16, tapes_each: u16) -> Topology {
        Topology::uniform(
            libraries,
            1,
            1,
            tapes_each,
            tapesim_model::RobotModel::exb210(),
            tapesim_model::InterLibraryModel::DEFAULT,
        )
        .unwrap()
    }

    /// Compares two catalogs copy for copy.
    fn same_catalog(a: &Catalog, b: &Catalog) -> bool {
        a.num_blocks() == b.num_blocks()
            && (0..a.num_blocks()).all(|i| a.replicas(BlockId(i)) == b.replicas(BlockId(i)))
    }

    #[test]
    fn single_library_fleet_matches_classic_placement() {
        let topo = paper_topology(1, 10);
        for layout in [LayoutKind::Horizontal, LayoutKind::Vertical] {
            for scope in [ReplicaScope::InLibrary, ReplicaScope::CrossLibrary] {
                let cfg = PlacementConfig {
                    layout,
                    ph_percent: 10.0,
                    scheme: PlacementScheme::Replication { nr: 3 },
                    sp: 1.0,
                };
                let classic = build_placement(paper_geom(), B16, cfg).unwrap();
                let fleet = build_fleet_placement(paper_geom(), B16, cfg, &topo, scope).unwrap();
                assert!(
                    same_catalog(&classic.catalog, &fleet.catalog),
                    "{layout:?}/{scope:?} diverged from build_placement"
                );
                assert_eq!(classic.hot_tapes, fleet.hot_tapes);
            }
        }
    }

    #[test]
    fn in_library_replicas_share_the_original_library() {
        let topo = paper_topology(2, 5);
        let cfg = PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            scheme: PlacementScheme::Replication { nr: 2 },
            sp: 0.0,
        };
        let placed =
            build_fleet_placement(paper_geom(), B16, cfg, &topo, ReplicaScope::InLibrary).unwrap();
        let c = &placed.catalog;
        for b in 0..c.hot_count() {
            let addrs = c.replicas(BlockId(b));
            assert_eq!(addrs.len(), 3);
            let libs: Vec<u16> = addrs.iter().map(|a| topo.library_of_tape(a.tape)).collect();
            assert!(
                libs.windows(2).all(|w| w[0] == w[1]),
                "block {b} spread across libraries: {libs:?}"
            );
        }
    }

    #[test]
    fn cross_library_replicas_reach_other_libraries_first() {
        let topo = paper_topology(2, 5);
        let cfg = PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            scheme: PlacementScheme::Replication { nr: 1 },
            sp: 0.0,
        };
        let placed =
            build_fleet_placement(paper_geom(), B16, cfg, &topo, ReplicaScope::CrossLibrary)
                .unwrap();
        let c = &placed.catalog;
        for b in 0..c.hot_count() {
            let addrs = c.replicas(BlockId(b));
            assert_eq!(addrs.len(), 2);
            let l0 = topo.library_of_tape(addrs[0].tape);
            let l1 = topo.library_of_tape(addrs[1].tape);
            assert_ne!(l0, l1, "block {b}'s only replica stayed in-library");
        }
    }

    #[test]
    fn cross_library_vertical_avoids_hot_prefix_tapes() {
        let topo = paper_topology(2, 5);
        let cfg = PlacementConfig {
            layout: LayoutKind::Vertical,
            ph_percent: 10.0,
            scheme: PlacementScheme::Replication { nr: 3 },
            sp: 1.0,
        };
        let placed =
            build_fleet_placement(paper_geom(), B16, cfg, &topo, ReplicaScope::CrossLibrary)
                .unwrap();
        let c = &placed.catalog;
        // Originals pack the global prefix; replicas never land there.
        let hot_prefix = placed.hot_tapes.iter().map(|t| t.0).max().unwrap();
        for b in 0..c.hot_count() {
            let addrs = c.replicas(BlockId(b));
            assert_eq!(addrs.len(), 4);
            for a in addrs.iter().skip(1) {
                assert!(a.tape.0 > hot_prefix, "replica on hot tape {}", a.tape);
            }
        }
    }

    #[test]
    fn in_library_replication_bounded_by_smallest_library() {
        let topo = paper_topology(2, 5);
        let cfg = PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            scheme: PlacementScheme::Replication { nr: 5 },
            sp: 0.0,
        };
        assert_eq!(
            build_fleet_placement(paper_geom(), B16, cfg, &topo, ReplicaScope::InLibrary)
                .unwrap_err(),
            PlacementError::TooManyReplicas {
                requested: 5,
                max: 4
            }
        );
        // Cross-library scope can host the same NR.
        assert!(
            build_fleet_placement(paper_geom(), B16, cfg, &topo, ReplicaScope::CrossLibrary)
                .is_ok()
        );
    }

    #[test]
    fn fleet_topology_must_match_geometry() {
        let topo = paper_topology(2, 4); // 8 tapes != 10
        assert!(matches!(
            build_fleet_placement(
                paper_geom(),
                B16,
                PlacementConfig::paper_baseline(),
                &topo,
                ReplicaScope::InLibrary
            )
            .unwrap_err(),
            PlacementError::InvalidParameter("topology")
        ));
    }

    #[test]
    fn one_mb_blocks_scale_up() {
        let placed = build_placement(
            paper_geom(),
            BlockSize::from_mb(1),
            PlacementConfig::paper_baseline(),
        )
        .unwrap();
        assert_eq!(placed.catalog.num_blocks(), 71_680);
        assert_eq!(placed.catalog.hot_count(), 7_168);
    }

    #[test]
    fn bisection_matches_linear_walk_for_replication() {
        // The feasibility search replaced a linear walk down from the
        // capacity upper bound. Replication feasibility is monotone, so
        // both must land on the same largest `d` — and the deterministic
        // builder then yields byte-identical catalogs.
        for geom in [paper_geom(), JukeboxGeometry::FIVE_TAPE] {
            for layout in [LayoutKind::Horizontal, LayoutKind::Vertical] {
                for nr in [0u32, 1, 3] {
                    for (ph, sp) in [(0.0, 0.0), (10.0, 0.0), (10.0, 1.0), (50.0, 0.5)] {
                        let cfg = PlacementConfig {
                            layout,
                            ph_percent: ph,
                            scheme: PlacementScheme::Replication { nr },
                            sp,
                        };
                        let slots = geom.slots_per_tape(B16);
                        let e = scheme_expansion_factor(cfg.scheme, ph);
                        let upper = logical_upper_bound(geom, B16, cfg.scheme, e);
                        let mut walk = None;
                        for d in (1..=upper).rev() {
                            match try_build(geom, B16, slots, cfg, nr, d) {
                                Ok(v) => {
                                    walk = Some((d, v));
                                    break;
                                }
                                Err(TryBuildError::DoesNotFit) => {}
                                Err(TryBuildError::Catalog(err)) => {
                                    panic!("catalog bug at d={d}: {err:?}")
                                }
                            }
                        }
                        let (d, (cat, hot_tapes)) =
                            walk.expect("some block count must be feasible");
                        let placed = build_placement(geom, B16, cfg).unwrap();
                        let tag = format!("{geom:?}/{layout:?}/nr{nr}/ph{ph}/sp{sp}");
                        assert_eq!(placed.catalog.num_blocks(), d, "{tag}");
                        assert!(same_catalog(&placed.catalog, &cat), "{tag}");
                        assert_eq!(placed.hot_tapes, hot_tapes, "{tag}");
                    }
                }
            }
        }
    }

    #[test]
    fn cross_library_replication_bounded_by_fleet() {
        // 10 replicas + the original need 11 distinct tapes; the whole
        // fleet has 10, so even the widest scope reports the typed
        // capacity error instead of failing deep inside the bisection.
        let topo = paper_topology(2, 5);
        let cfg = PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            scheme: PlacementScheme::Replication { nr: 10 },
            sp: 0.0,
        };
        assert_eq!(
            build_fleet_placement(paper_geom(), B16, cfg, &topo, ReplicaScope::CrossLibrary)
                .unwrap_err(),
            PlacementError::TooManyReplicas {
                requested: 10,
                max: 9
            }
        );
    }

    #[test]
    fn erasure_shards_bounded_by_scope() {
        // A 4 + 2 stripe needs 6 distinct tapes: more than one 5-tape
        // library (InLibrary fails with the scope's cap), but fine
        // across the 10-tape fleet.
        let topo = paper_topology(2, 5);
        let cfg = PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            scheme: PlacementScheme::Erasure { k: 4, m: 2 },
            sp: 0.0,
        };
        assert_eq!(
            build_fleet_placement(paper_geom(), B16, cfg, &topo, ReplicaScope::InLibrary)
                .unwrap_err(),
            PlacementError::TooManyShards {
                requested: 6,
                max: 5
            }
        );
        let placed =
            build_fleet_placement(paper_geom(), B16, cfg, &topo, ReplicaScope::CrossLibrary)
                .unwrap();
        let c = &placed.catalog;
        let stripe = c.stripe().unwrap();
        assert!(c.logical_hot_count() > 0);
        for b in 0..c.logical_hot_count() {
            let (first, count) = stripe.cells_of(b);
            assert_eq!(count, 6);
            let libs: std::collections::BTreeSet<u16> = (first..first + count)
                .map(|cell| topo.library_of_tape(c.replicas(BlockId(cell))[0].tape))
                .collect();
            assert!(libs.len() > 1, "stripe {b} confined to one library");
        }
    }

    #[test]
    fn erasure_shards_bounded_by_fleet() {
        // 8 + 4 needs 12 distinct tapes; the fleet has 10. Both scopes
        // report the same typed error.
        let topo = paper_topology(2, 5);
        let cfg = PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            scheme: PlacementScheme::Erasure { k: 8, m: 4 },
            sp: 0.0,
        };
        for scope in [ReplicaScope::InLibrary, ReplicaScope::CrossLibrary] {
            assert_eq!(
                build_fleet_placement(paper_geom(), B16, cfg, &topo, scope).unwrap_err(),
                PlacementError::TooManyShards {
                    requested: 12,
                    max: 10
                },
                "{scope:?}"
            );
        }
    }
}
