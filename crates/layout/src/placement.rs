//! Placement and replication schemes (Sections 4.3-4.5).
//!
//! Two layouts are studied by the paper:
//!
//! * **horizontal** — hot data distributed over all tapes;
//! * **vertical** — hot data collected onto as few tapes as possible
//!   (exactly one tape in the paper's PH-10 configuration).
//!
//! Within a tape, the contiguous region of hot copies (originals and/or
//! replicas) is positioned by the normalized *start position* `SP`:
//! `SP = 0` places it at the beginning of tape, `SP = 1` at the end.
//! Replication stores `NR` extra copies of every hot block, distributed
//! round-robin across the other tapes, at most one copy per tape.
//! Cold data fills the remaining slots.
#![allow(clippy::cast_possible_truncation)] // slot and tape counts are bounded by jukebox geometry
#![allow(clippy::cast_precision_loss)] // capacity totals stay far below 2^53

use tapesim_model::{BlockSize, JukeboxGeometry, PhysicalAddr, SlotIndex, TapeId, Topology};

use crate::block::BlockId;
use crate::catalog::{Catalog, CatalogError};
use crate::expansion::expansion_factor;

/// Which layout to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Hot data (and replicas) distributed over all tapes.
    Horizontal,
    /// Hot originals packed onto as few tapes as possible; replicas
    /// distributed round-robin across the remaining tapes.
    Vertical,
}

/// Parameters of a placement, mirroring the paper's experiment notation:
/// `PH` (percent hot), `NR` (number of replicas), `SP` (start position).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementConfig {
    /// Layout of hot originals.
    pub layout: LayoutKind,
    /// Percent of logical blocks that are hot (`PH`), in `[0, 100]`.
    pub ph_percent: f64,
    /// Number of replicas of each hot block (`NR`).
    pub replicas: u32,
    /// Normalized start position of the hot/replica region within each
    /// tape (`SP`), in `[0, 1]`.
    pub sp: f64,
}

impl PlacementConfig {
    /// The paper's moderate-skew baseline: PH-10, NR-0, SP-0, horizontal.
    pub fn paper_baseline() -> Self {
        PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            replicas: 0,
            sp: 0.0,
        }
    }

    /// The paper's best replicated configuration: vertical hot tape, full
    /// replication, replicas at the tape ends (Sections 4.4-4.5).
    pub fn paper_full_replication(geometry: JukeboxGeometry) -> Self {
        PlacementConfig {
            layout: LayoutKind::Vertical,
            ph_percent: 10.0,
            replicas: geometry.tapes as u32 - 1,
            sp: 1.0,
        }
    }
}

/// Where a hot block's `NR` replicas may live relative to its original's
/// library, for fleet topologies (see [`Topology`]). Irrelevant for
/// single-library topologies, where both scopes coincide with the classic
/// [`build_placement`] assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicaScope {
    /// Replicas stay in the original's library: no mount ever pays a
    /// pass-through transfer, but every copy of a hot block competes for
    /// the same library's drives and robot arms.
    InLibrary,
    /// Replicas spread round-robin across the *other* libraries first, so
    /// up to `NR` additional libraries can serve a hot block from local
    /// shelves — trading shelf locality for fleet-wide parallelism.
    CrossLibrary,
}

/// Errors raised while computing a placement.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// `NR` exceeds the number of tapes that can hold a distinct copy.
    TooManyReplicas {
        /// Requested number of replicas.
        requested: u32,
        /// Maximum feasible for this geometry/layout.
        max: u32,
    },
    /// The configuration admits no blocks at all.
    NoCapacity,
    /// `PH` or `SP` outside their valid ranges.
    InvalidParameter(&'static str),
    /// A bug-level failure from the catalog builder.
    Catalog(CatalogError),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::TooManyReplicas { requested, max } => {
                write!(f, "requested {requested} replicas; at most {max} feasible")
            }
            PlacementError::NoCapacity => write!(f, "no blocks fit this configuration"),
            PlacementError::InvalidParameter(p) => write!(f, "invalid parameter: {p}"),
            PlacementError::Catalog(e) => write!(f, "catalog error: {e}"),
        }
    }
}

impl std::error::Error for PlacementError {}

impl From<CatalogError> for PlacementError {
    fn from(e: CatalogError) -> Self {
        PlacementError::Catalog(e)
    }
}

/// The result of a placement: the catalog plus summary statistics.
#[derive(Debug, Clone)]
pub struct PlacedCatalog {
    /// The block-to-tape mapping.
    pub catalog: Catalog,
    /// Analytic expansion factor `E = 1 + NR * PH / 100`.
    pub expansion: f64,
    /// Tapes that hold hot originals (one entry for horizontal layouts
    /// means every tape does; listed explicitly for vertical layouts).
    pub hot_tapes: Vec<TapeId>,
    /// The configuration that produced this catalog.
    pub config: PlacementConfig,
}

/// Builds the catalog for a placement configuration, packing as many
/// logical blocks as fit (the paper's simulations always model a full
/// jukebox; replication trades cold capacity for hot copies).
pub fn build_placement(
    geometry: JukeboxGeometry,
    block: BlockSize,
    cfg: PlacementConfig,
) -> Result<PlacedCatalog, PlacementError> {
    validate_config(geometry, &cfg)?;
    let slots = geometry.slots_per_tape(block);
    let total = geometry.total_slots(block);
    let e = expansion_factor(cfg.replicas, cfg.ph_percent);
    // Upper bound on the number of logical blocks, then search downward for
    // the largest feasible count. Rounding of the hot count means the exact
    // bound can be off by a block or two in either direction.
    let mut d = ((total as f64 / e).floor() as u64 + 2).min(total) as u32;
    loop {
        if d == 0 {
            return Err(PlacementError::NoCapacity);
        }
        match try_build(geometry, block, slots, cfg, d) {
            Ok((catalog, hot_tapes)) => {
                return Ok(PlacedCatalog {
                    catalog,
                    expansion: e,
                    hot_tapes,
                    config: cfg,
                });
            }
            Err(TryBuildError::DoesNotFit) => d -= 1,
            Err(TryBuildError::Catalog(e)) => return Err(e.into()),
        }
    }
}

/// [`build_placement`] for a fleet [`Topology`]: hot originals are
/// assigned exactly as the classic layouts assign them, but each hot
/// block's `NR` replicas are targeted by `scope` — confined to the
/// original's library, or spread round-robin across the other libraries.
/// For a single-library topology the produced catalog is identical to
/// [`build_placement`] under either scope.
///
/// # Errors
/// Everything [`build_placement`] raises, plus
/// [`PlacementError::TooManyReplicas`] when `NR` exceeds what the scope
/// admits (e.g. in-library replication beyond the smallest library's
/// shelf count) and [`PlacementError::InvalidParameter`] when the
/// topology's shelf total disagrees with the geometry.
pub fn build_fleet_placement(
    geometry: JukeboxGeometry,
    block: BlockSize,
    cfg: PlacementConfig,
    topology: &Topology,
    scope: ReplicaScope,
) -> Result<PlacedCatalog, PlacementError> {
    validate_config(geometry, &cfg)?;
    if topology.check_geometry(&geometry).is_err() {
        return Err(PlacementError::InvalidParameter("topology"));
    }
    if scope == ReplicaScope::InLibrary && cfg.ph_percent > 0.0 {
        // Every replica needs a distinct tape inside the origin's library.
        let min_lib = topology
            .libraries()
            .iter()
            .map(|l| u32::from(l.tapes))
            .min()
            .unwrap_or(0);
        if cfg.replicas + 1 > min_lib {
            return Err(PlacementError::TooManyReplicas {
                requested: cfg.replicas,
                max: min_lib.saturating_sub(1),
            });
        }
    }
    let slots = geometry.slots_per_tape(block);
    let total = geometry.total_slots(block);
    let e = expansion_factor(cfg.replicas, cfg.ph_percent);
    let mut d = ((total as f64 / e).floor() as u64 + 2).min(total) as u32;
    loop {
        if d == 0 {
            return Err(PlacementError::NoCapacity);
        }
        match try_build_fleet(geometry, block, slots, cfg, d, topology, scope) {
            Ok((catalog, hot_tapes)) => {
                return Ok(PlacedCatalog {
                    catalog,
                    expansion: e,
                    hot_tapes,
                    config: cfg,
                });
            }
            Err(TryBuildError::DoesNotFit) => d -= 1,
            Err(TryBuildError::Catalog(e)) => return Err(e.into()),
        }
    }
}

fn validate_config(geometry: JukeboxGeometry, cfg: &PlacementConfig) -> Result<(), PlacementError> {
    if !(0.0..=100.0).contains(&cfg.ph_percent) || !cfg.ph_percent.is_finite() {
        return Err(PlacementError::InvalidParameter("ph_percent"));
    }
    if !(0.0..=1.0).contains(&cfg.sp) || !cfg.sp.is_finite() {
        return Err(PlacementError::InvalidParameter("sp"));
    }
    // Every hot block has its original on one tape plus NR replicas, each
    // on a distinct other tape.
    let max = geometry.tapes as u32 - 1;
    if cfg.replicas > max && cfg.ph_percent > 0.0 {
        return Err(PlacementError::TooManyReplicas {
            requested: cfg.replicas,
            max,
        });
    }
    Ok(())
}

enum TryBuildError {
    DoesNotFit,
    Catalog(CatalogError),
}

impl From<CatalogError> for TryBuildError {
    fn from(e: CatalogError) -> Self {
        TryBuildError::Catalog(e)
    }
}

/// Number of hot blocks for `d` logical blocks at `ph` percent.
fn hot_count_for(d: u32, ph_percent: f64) -> u32 {
    ((d as f64 * ph_percent / 100.0).round() as u32).min(d)
}

fn try_build(
    geometry: JukeboxGeometry,
    block: BlockSize,
    slots: u32,
    cfg: PlacementConfig,
    d: u32,
) -> Result<(Catalog, Vec<TapeId>), TryBuildError> {
    let t = geometry.tapes as u32;
    let hot = hot_count_for(d, cfg.ph_percent);
    let nr = if hot == 0 { 0 } else { cfg.replicas };
    let copies = hot as u64 * (1 + nr) as u64 + (d - hot) as u64;
    if copies > geometry.total_slots(block) {
        return Err(TryBuildError::DoesNotFit);
    }

    // Per-tape list of hot copies (block ids), in block-id order, plus the
    // set of tapes holding hot *originals*.
    let mut hot_on_tape: Vec<Vec<BlockId>> = vec![Vec::new(); t as usize];
    let mut origin_tapes: Vec<bool> = vec![false; t as usize];
    match cfg.layout {
        LayoutKind::Horizontal => {
            for b in 0..hot {
                let origin = b % t;
                origin_tapes[origin as usize] = true;
                hot_on_tape[origin as usize].push(BlockId(b));
                for j in 0..nr {
                    let tape = (origin + 1 + j) % t;
                    hot_on_tape[tape as usize].push(BlockId(b));
                }
            }
        }
        LayoutKind::Vertical => {
            let hot_tapes = hot.div_ceil(slots);
            if hot_tapes >= t && d > hot {
                return Err(TryBuildError::DoesNotFit);
            }
            let remaining = t - hot_tapes;
            if nr > remaining {
                // Cannot give each replica a distinct non-hot tape.
                return Err(TryBuildError::DoesNotFit);
            }
            for b in 0..hot {
                let origin = b / slots;
                origin_tapes[origin as usize] = true;
                hot_on_tape[origin as usize].push(BlockId(b));
                for j in 0..nr {
                    let tape = hot_tapes + (b * nr + j) % remaining;
                    hot_on_tape[tape as usize].push(BlockId(b));
                }
            }
        }
    }

    // Hot copies are placed in one contiguous region per tape, positioned
    // by SP; they must each fit on their tape.
    for copies in &hot_on_tape {
        if copies.len() as u32 > slots {
            return Err(TryBuildError::DoesNotFit);
        }
    }

    let mut builder = Catalog::builder(geometry, block, d, hot);
    let mut free: Vec<Vec<SlotIndex>> = Vec::with_capacity(t as usize);
    for (tape_idx, copies) in hot_on_tape.iter().enumerate() {
        let len = copies.len() as u32;
        let start = region_start(cfg.sp, len, slots);
        for (i, &b) in copies.iter().enumerate() {
            builder.place(
                b,
                PhysicalAddr {
                    tape: TapeId(tape_idx as u16),
                    slot: SlotIndex(start + i as u32),
                },
            )?;
        }
        // Remaining slots on this tape, ascending, are available for cold.
        let mut f: Vec<SlotIndex> = (0..start)
            .chain(start + len..slots)
            .map(SlotIndex)
            .collect();
        f.reverse(); // use as a stack popping the lowest slot first
        free.push(f);
    }

    place_cold_round_robin(&mut builder, geometry, slots, &mut free, hot, d, cfg.layout)?;
    let catalog = builder.build().map_err(TryBuildError::Catalog)?;
    let hot_tapes = origin_tapes
        .iter()
        .enumerate()
        .filter_map(|(i, &is_origin)| is_origin.then_some(TapeId(i as u16)))
        .collect();
    Ok((catalog, hot_tapes))
}

fn try_build_fleet(
    geometry: JukeboxGeometry,
    block: BlockSize,
    slots: u32,
    cfg: PlacementConfig,
    d: u32,
    topology: &Topology,
    scope: ReplicaScope,
) -> Result<(Catalog, Vec<TapeId>), TryBuildError> {
    let t = geometry.tapes as u32;
    let hot = hot_count_for(d, cfg.ph_percent);
    let nr = if hot == 0 { 0 } else { cfg.replicas };
    let copies = hot as u64 * (1 + nr) as u64 + (d - hot) as u64;
    if copies > geometry.total_slots(block) {
        return Err(TryBuildError::DoesNotFit);
    }
    // With one library there is nothing to cross: both scopes reduce to
    // the classic assignment, keeping single-library fleet placements
    // identical to `build_placement`.
    let scope = if topology.library_count() == 1 {
        ReplicaScope::InLibrary
    } else {
        scope
    };
    let hot_prefix = match cfg.layout {
        LayoutKind::Horizontal => 0,
        LayoutKind::Vertical => hot.div_ceil(slots),
    };
    if cfg.layout == LayoutKind::Vertical && hot_prefix >= t && d > hot {
        return Err(TryBuildError::DoesNotFit);
    }

    let mut hot_on_tape: Vec<Vec<BlockId>> = vec![Vec::new(); t as usize];
    let mut origin_tapes: Vec<bool> = vec![false; t as usize];
    for b in 0..hot {
        // Origins are assigned exactly as the classic layouts assign
        // them; only replica targets differ by scope.
        let origin = match cfg.layout {
            LayoutKind::Horizontal => b % t,
            LayoutKind::Vertical => b / slots,
        };
        origin_tapes[origin as usize] = true;
        hot_on_tape[origin as usize].push(BlockId(b));
        if nr == 0 {
            continue;
        }
        let ring = replica_ring(topology, scope, cfg.layout, origin, b, nr, hot_prefix);
        if (ring.len() as u32) < nr {
            return Err(TryBuildError::DoesNotFit);
        }
        for &tape in ring.iter().take(nr as usize) {
            hot_on_tape[tape as usize].push(BlockId(b));
        }
    }

    for copies in &hot_on_tape {
        if copies.len() as u32 > slots {
            return Err(TryBuildError::DoesNotFit);
        }
    }

    let mut builder = Catalog::builder(geometry, block, d, hot);
    let mut free: Vec<Vec<SlotIndex>> = Vec::with_capacity(t as usize);
    for (tape_idx, copies) in hot_on_tape.iter().enumerate() {
        let len = copies.len() as u32;
        let start = region_start(cfg.sp, len, slots);
        for (i, &b) in copies.iter().enumerate() {
            builder.place(
                b,
                PhysicalAddr {
                    tape: TapeId(tape_idx as u16),
                    slot: SlotIndex(start + i as u32),
                },
            )?;
        }
        let mut f: Vec<SlotIndex> = (0..start)
            .chain(start + len..slots)
            .map(SlotIndex)
            .collect();
        f.reverse();
        free.push(f);
    }

    place_cold_round_robin(&mut builder, geometry, slots, &mut free, hot, d, cfg.layout)?;
    let catalog = builder.build().map_err(TryBuildError::Catalog)?;
    let hot_tapes = origin_tapes
        .iter()
        .enumerate()
        .filter_map(|(i, &is_origin)| is_origin.then_some(TapeId(i as u16)))
        .collect();
    Ok((catalog, hot_tapes))
}

/// Replica target tapes for hot block `b` whose original sits on
/// `origin`, in assignment order: replica `j` lands on the `j`-th entry.
/// Entries are distinct tapes, never the origin, and (for vertical
/// layouts) never a hot-prefix tape. A result shorter than `nr` means the
/// scope cannot host that many distinct copies.
fn replica_ring(
    topology: &Topology,
    scope: ReplicaScope,
    layout: LayoutKind,
    origin: u32,
    b: u32,
    nr: u32,
    hot_prefix: u32,
) -> Vec<u32> {
    let lib = u32::from(topology.library_of_tape(TapeId(origin as u16)));
    let l = u32::from(topology.library_count());
    let lib_tapes = |i: u32| -> u32 {
        topology
            .libraries()
            .get(i as usize)
            .map_or(0, |x| u32::from(x.tapes))
    };
    let base = |i: u32| u32::from(topology.tape_base(i as u16));
    match scope {
        ReplicaScope::InLibrary => {
            let (lo, n) = (base(lib), lib_tapes(lib));
            match layout {
                // Rotate within the library starting just after the
                // origin — the classic `(origin + 1 + j) % T`, confined.
                LayoutKind::Horizontal => (1..n).map(|k| lo + ((origin - lo) + k) % n).collect(),
                // The classic round-robin over non-hot tapes, confined to
                // the origin's library.
                LayoutKind::Vertical => {
                    let avail: Vec<u32> = (lo..lo + n).filter(|&x| x >= hot_prefix).collect();
                    let len = avail.len() as u32;
                    if len < nr {
                        return Vec::new();
                    }
                    (0..nr)
                        .map(|j| avail[((b * nr + j) % len) as usize])
                        .collect()
                }
            }
        }
        ReplicaScope::CrossLibrary => {
            // Breadth-first over the *other* libraries (then the origin's
            // own, last), one tape per library per pass, rotating within
            // each library by the block id so replicas spread over its
            // shelves. Each (library, tape) pair appears exactly once, so
            // entries are distinct.
            let max_n = (0..l).map(lib_tapes).max().unwrap_or(0);
            let mut ring = Vec::new();
            for pass in 0..max_n {
                for k in 1..=l {
                    let tl = (lib + k) % l;
                    let n_t = lib_tapes(tl);
                    if pass >= n_t {
                        continue;
                    }
                    let tape = base(tl) + (b + pass) % n_t;
                    if tape == origin || tape < hot_prefix {
                        continue;
                    }
                    ring.push(tape);
                }
            }
            ring
        }
    }
}

/// Start slot of a contiguous region of `len` copies on a tape of `slots`
/// slots, for normalized position `sp` (0 = beginning, 1 = end).
pub(crate) fn region_start(sp: f64, len: u32, slots: u32) -> u32 {
    debug_assert!(len <= slots);
    ((slots - len) as f64 * sp).round() as u32
}

/// Distributes cold blocks round-robin over tape free lists. For vertical
/// layouts, tapes holding hot originals are used only after all other
/// tapes are full, preserving the paper's hot/cold separation.
fn place_cold_round_robin(
    builder: &mut crate::catalog::CatalogBuilder,
    geometry: JukeboxGeometry,
    slots: u32,
    free: &mut [Vec<SlotIndex>],
    hot: u32,
    d: u32,
    layout: LayoutKind,
) -> Result<(), TryBuildError> {
    let t = geometry.tapes as usize;
    // Tape visit order for cold data.
    let order: Vec<usize> = match layout {
        LayoutKind::Horizontal => (0..t).collect(),
        LayoutKind::Vertical => {
            // Non-hot tapes first (hot originals are packed onto a prefix
            // of tapes), then hot tapes as spill.
            let hot_tapes = hot.div_ceil(slots) as usize;
            (hot_tapes..t).chain(0..hot_tapes).collect()
        }
    };
    let mut cursor = 0usize;
    for b in hot..d {
        let mut placed = false;
        for step in 0..order.len() {
            let tape_idx = order[(cursor + step) % order.len()];
            if let Some(slot) = free[tape_idx].pop() {
                builder.place(
                    BlockId(b),
                    PhysicalAddr {
                        tape: TapeId(tape_idx as u16),
                        slot,
                    },
                )?;
                cursor = (cursor + step + 1) % order.len();
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(TryBuildError::DoesNotFit);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Heat;

    const B16: BlockSize = BlockSize::PAPER_DEFAULT;

    fn paper_geom() -> JukeboxGeometry {
        JukeboxGeometry::PAPER_DEFAULT
    }

    #[test]
    fn region_start_positions() {
        assert_eq!(region_start(0.0, 10, 100), 0);
        assert_eq!(region_start(1.0, 10, 100), 90);
        assert_eq!(region_start(0.5, 10, 100), 45);
        assert_eq!(region_start(0.5, 100, 100), 0);
    }

    #[test]
    fn paper_baseline_fills_jukebox_exactly() {
        // PH-10, NR-0: no replication, so every slot holds a distinct block.
        let placed = build_placement(paper_geom(), B16, PlacementConfig::paper_baseline()).unwrap();
        let c = &placed.catalog;
        assert_eq!(c.num_blocks(), 4480);
        assert_eq!(c.hot_count(), 448);
        assert_eq!(c.total_copies(), 4480);
        for t in paper_geom().tape_ids() {
            assert_eq!(c.occupied_slots(t), 448);
        }
        assert!((placed.expansion - 1.0).abs() < 1e-12);
    }

    #[test]
    fn horizontal_spreads_hot_evenly() {
        let placed = build_placement(paper_geom(), B16, PlacementConfig::paper_baseline()).unwrap();
        let c = &placed.catalog;
        for t in paper_geom().tape_ids() {
            let hot_here = c
                .tape_contents(t)
                .filter(|&(_, b)| c.heat(b) == Heat::Hot)
                .count();
            assert_eq!(hot_here, 44 + usize::from(t.0 < 8)); // 448 over 10 tapes
        }
        assert_eq!(placed.hot_tapes.len(), 10);
    }

    #[test]
    fn sp_zero_places_hot_at_beginning() {
        let placed = build_placement(paper_geom(), B16, PlacementConfig::paper_baseline()).unwrap();
        let c = &placed.catalog;
        // First slots of tape 0 are hot.
        let first: Vec<_> = c.tape_contents(TapeId(0)).take(5).collect();
        for (slot, b) in first {
            assert!(slot.0 < 45);
            assert_eq!(c.heat(b), Heat::Hot);
        }
    }

    #[test]
    fn sp_one_places_hot_at_end() {
        let cfg = PlacementConfig {
            sp: 1.0,
            ..PlacementConfig::paper_baseline()
        };
        let placed = build_placement(paper_geom(), B16, cfg).unwrap();
        let c = &placed.catalog;
        for t in paper_geom().tape_ids() {
            let hot_slots: Vec<u32> = c
                .tape_contents(t)
                .filter(|&(_, b)| c.heat(b) == Heat::Hot)
                .map(|(s, _)| s.0)
                .collect();
            assert!(!hot_slots.is_empty());
            assert!(
                hot_slots.iter().all(|&s| s >= 448 - 45),
                "hot not at end of {t}: {hot_slots:?}"
            );
        }
    }

    #[test]
    fn full_replication_vertical_matches_hand_count() {
        // Worked out by hand: T=10, S=448, NR=9, PH=10 => D=2356, H=236,
        // copies = 236*10 + 2120 = 4480 (jukebox exactly full).
        let cfg = PlacementConfig::paper_full_replication(paper_geom());
        let placed = build_placement(paper_geom(), B16, cfg).unwrap();
        let c = &placed.catalog;
        assert_eq!(c.num_blocks(), 2356);
        assert_eq!(c.hot_count(), 236);
        assert_eq!(c.total_copies(), 4480);
        // Every hot block has a copy on every tape.
        for b in 0..c.hot_count() {
            assert_eq!(c.replicas(BlockId(b)).len(), 10);
        }
        // Hot originals all on tape 0.
        assert_eq!(placed.hot_tapes, vec![TapeId(0)]);
        assert!((placed.expansion - 1.9).abs() < 1e-12);
    }

    #[test]
    fn vertical_replicas_at_tape_end_when_sp_one() {
        let cfg = PlacementConfig::paper_full_replication(paper_geom());
        let placed = build_placement(paper_geom(), B16, cfg).unwrap();
        let c = &placed.catalog;
        // On a non-hot tape, the 236 replicas occupy the last 236 slots.
        for t in 1..10u16 {
            let hot_slots: Vec<u32> = c
                .tape_contents(TapeId(t))
                .filter(|&(_, b)| c.heat(b) == Heat::Hot)
                .map(|(s, _)| s.0)
                .collect();
            assert_eq!(hot_slots.len(), 236);
            assert_eq!(*hot_slots.first().unwrap(), 448 - 236);
            assert_eq!(*hot_slots.last().unwrap(), 447);
        }
    }

    #[test]
    fn partial_replication_counts() {
        let cfg = PlacementConfig {
            layout: LayoutKind::Vertical,
            ph_percent: 10.0,
            replicas: 2,
            sp: 1.0,
        };
        let placed = build_placement(paper_geom(), B16, cfg).unwrap();
        let c = &placed.catalog;
        for b in 0..c.hot_count() {
            assert_eq!(c.replicas(BlockId(b)).len(), 3, "original + 2 replicas");
        }
        for b in c.hot_count()..c.num_blocks() {
            assert_eq!(c.replicas(BlockId(b)).len(), 1);
        }
        // Capacity is nearly fully used (within a couple of slots of 4480).
        assert!(c.total_copies() >= 4478, "copies = {}", c.total_copies());
    }

    #[test]
    fn horizontal_full_replication_feasible() {
        let cfg = PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            replicas: 9,
            sp: 1.0,
        };
        let placed = build_placement(paper_geom(), B16, cfg).unwrap();
        let c = &placed.catalog;
        for b in 0..c.hot_count() {
            assert_eq!(c.replicas(BlockId(b)).len(), 10);
        }
        assert!(c.total_copies() >= 4470);
    }

    #[test]
    fn too_many_replicas_rejected() {
        let cfg = PlacementConfig {
            replicas: 10,
            ..PlacementConfig::paper_baseline()
        };
        assert_eq!(
            build_placement(paper_geom(), B16, cfg).unwrap_err(),
            PlacementError::TooManyReplicas {
                requested: 10,
                max: 9
            }
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        let bad_ph = PlacementConfig {
            ph_percent: 101.0,
            ..PlacementConfig::paper_baseline()
        };
        assert!(matches!(
            build_placement(paper_geom(), B16, bad_ph).unwrap_err(),
            PlacementError::InvalidParameter("ph_percent")
        ));
        let bad_sp = PlacementConfig {
            sp: 1.5,
            ..PlacementConfig::paper_baseline()
        };
        assert!(matches!(
            build_placement(paper_geom(), B16, bad_sp).unwrap_err(),
            PlacementError::InvalidParameter("sp")
        ));
    }

    #[test]
    fn zero_percent_hot_is_all_cold() {
        let cfg = PlacementConfig {
            ph_percent: 0.0,
            replicas: 5,
            ..PlacementConfig::paper_baseline()
        };
        let placed = build_placement(paper_geom(), B16, cfg).unwrap();
        assert_eq!(placed.catalog.hot_count(), 0);
        assert_eq!(placed.catalog.num_blocks(), 4480);
    }

    #[test]
    fn five_tape_geometry_works() {
        let cfg = PlacementConfig {
            layout: LayoutKind::Vertical,
            ph_percent: 10.0,
            replicas: 4,
            sp: 1.0,
        };
        let placed = build_placement(JukeboxGeometry::FIVE_TAPE, B16, cfg).unwrap();
        let c = &placed.catalog;
        assert!(c.num_blocks() > 0);
        for b in 0..c.hot_count() {
            assert_eq!(c.replicas(BlockId(b)).len(), 5);
        }
    }

    fn paper_topology(libraries: u16, tapes_each: u16) -> Topology {
        Topology::uniform(
            libraries,
            1,
            1,
            tapes_each,
            tapesim_model::RobotModel::exb210(),
            tapesim_model::InterLibraryModel::DEFAULT,
        )
        .unwrap()
    }

    /// Compares two catalogs copy for copy.
    fn same_catalog(a: &Catalog, b: &Catalog) -> bool {
        a.num_blocks() == b.num_blocks()
            && (0..a.num_blocks()).all(|i| a.replicas(BlockId(i)) == b.replicas(BlockId(i)))
    }

    #[test]
    fn single_library_fleet_matches_classic_placement() {
        let topo = paper_topology(1, 10);
        for layout in [LayoutKind::Horizontal, LayoutKind::Vertical] {
            for scope in [ReplicaScope::InLibrary, ReplicaScope::CrossLibrary] {
                let cfg = PlacementConfig {
                    layout,
                    ph_percent: 10.0,
                    replicas: 3,
                    sp: 1.0,
                };
                let classic = build_placement(paper_geom(), B16, cfg).unwrap();
                let fleet = build_fleet_placement(paper_geom(), B16, cfg, &topo, scope).unwrap();
                assert!(
                    same_catalog(&classic.catalog, &fleet.catalog),
                    "{layout:?}/{scope:?} diverged from build_placement"
                );
                assert_eq!(classic.hot_tapes, fleet.hot_tapes);
            }
        }
    }

    #[test]
    fn in_library_replicas_share_the_original_library() {
        let topo = paper_topology(2, 5);
        let cfg = PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            replicas: 2,
            sp: 0.0,
        };
        let placed =
            build_fleet_placement(paper_geom(), B16, cfg, &topo, ReplicaScope::InLibrary).unwrap();
        let c = &placed.catalog;
        for b in 0..c.hot_count() {
            let addrs = c.replicas(BlockId(b));
            assert_eq!(addrs.len(), 3);
            let libs: Vec<u16> = addrs.iter().map(|a| topo.library_of_tape(a.tape)).collect();
            assert!(
                libs.windows(2).all(|w| w[0] == w[1]),
                "block {b} spread across libraries: {libs:?}"
            );
        }
    }

    #[test]
    fn cross_library_replicas_reach_other_libraries_first() {
        let topo = paper_topology(2, 5);
        let cfg = PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            replicas: 1,
            sp: 0.0,
        };
        let placed =
            build_fleet_placement(paper_geom(), B16, cfg, &topo, ReplicaScope::CrossLibrary)
                .unwrap();
        let c = &placed.catalog;
        for b in 0..c.hot_count() {
            let addrs = c.replicas(BlockId(b));
            assert_eq!(addrs.len(), 2);
            let l0 = topo.library_of_tape(addrs[0].tape);
            let l1 = topo.library_of_tape(addrs[1].tape);
            assert_ne!(l0, l1, "block {b}'s only replica stayed in-library");
        }
    }

    #[test]
    fn cross_library_vertical_avoids_hot_prefix_tapes() {
        let topo = paper_topology(2, 5);
        let cfg = PlacementConfig {
            layout: LayoutKind::Vertical,
            ph_percent: 10.0,
            replicas: 3,
            sp: 1.0,
        };
        let placed =
            build_fleet_placement(paper_geom(), B16, cfg, &topo, ReplicaScope::CrossLibrary)
                .unwrap();
        let c = &placed.catalog;
        // Originals pack the global prefix; replicas never land there.
        let hot_prefix = placed.hot_tapes.iter().map(|t| t.0).max().unwrap();
        for b in 0..c.hot_count() {
            let addrs = c.replicas(BlockId(b));
            assert_eq!(addrs.len(), 4);
            for a in addrs.iter().skip(1) {
                assert!(a.tape.0 > hot_prefix, "replica on hot tape {}", a.tape);
            }
        }
    }

    #[test]
    fn in_library_replication_bounded_by_smallest_library() {
        let topo = paper_topology(2, 5);
        let cfg = PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            replicas: 5,
            sp: 0.0,
        };
        assert_eq!(
            build_fleet_placement(paper_geom(), B16, cfg, &topo, ReplicaScope::InLibrary)
                .unwrap_err(),
            PlacementError::TooManyReplicas {
                requested: 5,
                max: 4
            }
        );
        // Cross-library scope can host the same NR.
        assert!(
            build_fleet_placement(paper_geom(), B16, cfg, &topo, ReplicaScope::CrossLibrary)
                .is_ok()
        );
    }

    #[test]
    fn fleet_topology_must_match_geometry() {
        let topo = paper_topology(2, 4); // 8 tapes != 10
        assert!(matches!(
            build_fleet_placement(
                paper_geom(),
                B16,
                PlacementConfig::paper_baseline(),
                &topo,
                ReplicaScope::InLibrary
            )
            .unwrap_err(),
            PlacementError::InvalidParameter("topology")
        ));
    }

    #[test]
    fn one_mb_blocks_scale_up() {
        let placed = build_placement(
            paper_geom(),
            BlockSize::from_mb(1),
            PlacementConfig::paper_baseline(),
        )
        .unwrap();
        assert_eq!(placed.catalog.num_blocks(), 71_680);
        assert_eq!(placed.catalog.hot_count(), 7_168);
    }
}
