//! Logical blocks and the hot/cold classification.

use std::fmt;

/// Identifier of a logical data block.
///
/// The unit of I/O is a data block of fixed size (Section 2.2). Logical
/// block numbers are dense: a catalog with `n` blocks uses ids `0..n`.
/// By convention the placement builders assign ids `0..hot_count` to hot
/// blocks and the rest to cold blocks, so the hot set is a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The id as a usize, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block{}", self.0)
    }
}

/// Access-frequency class of a block under the paper's hot/cold skew model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heat {
    /// Frequently requested data (the PH% of data receiving RH% of requests).
    Hot,
    /// The remaining, rarely requested data.
    Cold,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_display() {
        assert!(BlockId(3) < BlockId(10));
        assert_eq!(BlockId(7).index(), 7);
        assert_eq!(BlockId(7).to_string(), "block7");
    }
}
