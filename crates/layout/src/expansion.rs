//! Storage-expansion accounting for replication (Section 4.8, Figure 10a).
//!
//! Storing `NR` replicas of the `PH`% of data that are hot grows the
//! required storage by the expansion factor `E = 1 + NR * PH / 100`.
#![allow(clippy::cast_possible_truncation)] // replica counts are small integers rounded from bounded ratios

use crate::placement::PlacementScheme;

/// Analytic expansion factor `E = 1 + NR * PH / 100`.
///
/// `E` is the ratio of total stored copies to logical blocks; a farm of
/// jukeboxes must grow by this factor to store the same logical data with
/// replication.
pub fn expansion_factor(replicas: u32, ph_percent: f64) -> f64 {
    1.0 + replicas as f64 * ph_percent / 100.0
}

/// Analytic expansion factor for any [`PlacementScheme`]: replication
/// pays `NR` extra whole copies on the hot fraction
/// (`E = 1 + NR * PH / 100`), while `k + m` erasure striping pays only
/// the parity overhead there (`E = 1 + (PH / 100) * m / k` — the hot
/// fraction stores `(k + m) / k` times its logical size).
pub fn scheme_expansion_factor(scheme: PlacementScheme, ph_percent: f64) -> f64 {
    match scheme {
        PlacementScheme::Replication { nr } => expansion_factor(nr, ph_percent),
        PlacementScheme::Erasure { k, m } => 1.0 + ph_percent / 100.0 * f64::from(m) / f64::from(k),
    }
}

/// One row of the Figure 10(a) surface: expansion factor as a function of
/// the number of replicas for a fixed percent of hot data.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionRow {
    /// Percent of data that is hot.
    pub ph_percent: f64,
    /// `(NR, E)` pairs.
    pub points: Vec<(u32, f64)>,
}

/// Computes the Figure 10(a) family: expansion factor for every
/// `NR in 0..=max_replicas` at each given `PH`.
pub fn expansion_table(ph_percents: &[f64], max_replicas: u32) -> Vec<ExpansionRow> {
    ph_percents
        .iter()
        .map(|&ph| ExpansionRow {
            ph_percent: ph,
            points: (0..=max_replicas)
                .map(|nr| (nr, expansion_factor(nr, ph)))
                .collect(),
        })
        .collect()
}

/// The per-jukebox workload scale-down of Section 4.8: spreading the same
/// total workload over `E` times more jukeboxes divides each jukebox's
/// queue length by `E`.
pub fn scaled_queue_length(base_queue: u32, expansion: f64) -> u32 {
    assert!(expansion >= 1.0, "expansion factor below 1");
    ((base_queue as f64 / expansion).round() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_factor_formula() {
        assert_eq!(expansion_factor(0, 10.0), 1.0);
        assert!((expansion_factor(9, 10.0) - 1.9).abs() < 1e-12);
        assert!((expansion_factor(4, 25.0) - 2.0).abs() < 1e-12);
        assert_eq!(expansion_factor(5, 0.0), 1.0);
    }

    #[test]
    fn scheme_expansion_factor_generalizes() {
        // Replication delegates to the classic formula.
        for nr in 0..=9 {
            for ph in [0.0, 10.0, 25.0] {
                assert_eq!(
                    scheme_expansion_factor(PlacementScheme::Replication { nr }, ph),
                    expansion_factor(nr, ph)
                );
            }
        }
        // EC pays (k+m)/k on the hot fraction only.
        let e = scheme_expansion_factor(PlacementScheme::Erasure { k: 4, m: 4 }, 10.0);
        assert!((e - 1.1).abs() < 1e-12, "EC(4,4) at PH-10: {e}");
        let e = scheme_expansion_factor(PlacementScheme::Erasure { k: 2, m: 1 }, 100.0);
        assert!((e - 1.5).abs() < 1e-12);
        assert_eq!(
            scheme_expansion_factor(PlacementScheme::Erasure { k: 4, m: 2 }, 0.0),
            1.0
        );
        // At matched overhead, EC(k, m) equals NR = m/k replication only
        // when m/k is integral; EC(4,4) matches NR-1 at every PH.
        for ph in [5.0, 10.0, 50.0] {
            assert!(
                (scheme_expansion_factor(PlacementScheme::Erasure { k: 4, m: 4 }, ph)
                    - expansion_factor(1, ph))
                .abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn analytic_expansion_matches_built_catalogs() {
        // Property: the analytic `E` agrees with the expansion a real
        // placement realizes, to within one hot block's redundancy (the
        // only slack is `hot = round(d · PH/100)`, which moves the stored
        // total by at most `NR` copies or `m` parity cells — under one
        // logical block of storage per scheme tested here).
        use crate::placement::{build_placement, LayoutKind, PlacementConfig, PlacementError};
        use tapesim_model::{BlockSize, JukeboxGeometry};

        let schemes = [
            PlacementScheme::Replication { nr: 1 },
            PlacementScheme::Replication { nr: 3 },
            PlacementScheme::Erasure { k: 2, m: 1 },
            PlacementScheme::Erasure { k: 4, m: 2 },
        ];
        let mut checked = 0u32;
        for geometry in [JukeboxGeometry::PAPER_DEFAULT, JukeboxGeometry::FIVE_TAPE] {
            for block_mb in [8u32, 16] {
                for ph in [5.0, 10.0, 25.0] {
                    for scheme in schemes {
                        let cfg = PlacementConfig {
                            layout: LayoutKind::Horizontal,
                            ph_percent: ph,
                            scheme,
                            sp: 0.0,
                        };
                        let placed =
                            match build_placement(geometry, BlockSize::from_mb(block_mb), cfg) {
                                Ok(p) => p,
                                // Geometries too small for the scheme are
                                // out of scope for this property.
                                Err(
                                    PlacementError::TooManyReplicas { .. }
                                    | PlacementError::TooManyShards { .. },
                                ) => continue,
                                Err(e) => panic!("{geometry:?}/{block_mb}MB/{ph}: {e}"),
                            };
                        let analytic = scheme_expansion_factor(scheme, ph);
                        assert!(
                            (placed.expansion - analytic).abs() < 1e-12,
                            "PlacedCatalog must carry the analytic factor"
                        );
                        let realized = placed.catalog.measured_logical_expansion();
                        let d = f64::from(placed.catalog.logical_num_blocks());
                        // Tolerance: one hot block's redundancy (`NR`
                        // whole copies, or `m` parity cells = `m/k`
                        // blocks) over the whole catalog, expressed as an
                        // expansion delta.
                        let per_hot = match scheme {
                            PlacementScheme::Replication { nr } => f64::from(nr.max(1)),
                            PlacementScheme::Erasure { k, m } => f64::from(m) / f64::from(k),
                        };
                        let tol = per_hot / d;
                        assert!(
                            (realized - analytic).abs() <= tol,
                            "{geometry:?}/{block_mb}MB/ph{ph}/{scheme:?}: \
                             realized {realized} vs analytic {analytic} (tol {tol})"
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked >= 40, "property barely exercised: {checked} cases");
    }

    #[test]
    fn table_shape() {
        let t = expansion_table(&[5.0, 10.0, 20.0], 9);
        assert_eq!(t.len(), 3);
        for row in &t {
            assert_eq!(row.points.len(), 10);
            assert_eq!(row.points[0], (0, 1.0));
            // Monotone in NR.
            for w in row.points.windows(2) {
                assert!(w[1].1 >= w[0].1);
            }
        }
    }

    #[test]
    fn queue_scaling_matches_paper() {
        // Paper: queue length 60 per jukebox non-replicated, 60/E replicated.
        assert_eq!(scaled_queue_length(60, 1.0), 60);
        assert_eq!(scaled_queue_length(60, 1.9), 32); // 31.6 rounds to 32
        assert_eq!(scaled_queue_length(1, 10.0), 1); // never below 1
    }

    #[test]
    #[should_panic(expected = "below 1")]
    fn rejects_sub_unit_expansion() {
        scaled_queue_length(60, 0.5);
    }
}
