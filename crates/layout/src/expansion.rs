//! Storage-expansion accounting for replication (Section 4.8, Figure 10a).
//!
//! Storing `NR` replicas of the `PH`% of data that are hot grows the
//! required storage by the expansion factor `E = 1 + NR * PH / 100`.
#![allow(clippy::cast_possible_truncation)] // replica counts are small integers rounded from bounded ratios

/// Analytic expansion factor `E = 1 + NR * PH / 100`.
///
/// `E` is the ratio of total stored copies to logical blocks; a farm of
/// jukeboxes must grow by this factor to store the same logical data with
/// replication.
pub fn expansion_factor(replicas: u32, ph_percent: f64) -> f64 {
    1.0 + replicas as f64 * ph_percent / 100.0
}

/// One row of the Figure 10(a) surface: expansion factor as a function of
/// the number of replicas for a fixed percent of hot data.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionRow {
    /// Percent of data that is hot.
    pub ph_percent: f64,
    /// `(NR, E)` pairs.
    pub points: Vec<(u32, f64)>,
}

/// Computes the Figure 10(a) family: expansion factor for every
/// `NR in 0..=max_replicas` at each given `PH`.
pub fn expansion_table(ph_percents: &[f64], max_replicas: u32) -> Vec<ExpansionRow> {
    ph_percents
        .iter()
        .map(|&ph| ExpansionRow {
            ph_percent: ph,
            points: (0..=max_replicas)
                .map(|nr| (nr, expansion_factor(nr, ph)))
                .collect(),
        })
        .collect()
}

/// The per-jukebox workload scale-down of Section 4.8: spreading the same
/// total workload over `E` times more jukeboxes divides each jukebox's
/// queue length by `E`.
pub fn scaled_queue_length(base_queue: u32, expansion: f64) -> u32 {
    assert!(expansion >= 1.0, "expansion factor below 1");
    ((base_queue as f64 / expansion).round() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_factor_formula() {
        assert_eq!(expansion_factor(0, 10.0), 1.0);
        assert!((expansion_factor(9, 10.0) - 1.9).abs() < 1e-12);
        assert!((expansion_factor(4, 25.0) - 2.0).abs() < 1e-12);
        assert_eq!(expansion_factor(5, 0.0), 1.0);
    }

    #[test]
    fn table_shape() {
        let t = expansion_table(&[5.0, 10.0, 20.0], 9);
        assert_eq!(t.len(), 3);
        for row in &t {
            assert_eq!(row.points.len(), 10);
            assert_eq!(row.points[0], (0, 1.0));
            // Monotone in NR.
            for w in row.points.windows(2) {
                assert!(w[1].1 >= w[0].1);
            }
        }
    }

    #[test]
    fn queue_scaling_matches_paper() {
        // Paper: queue length 60 per jukebox non-replicated, 60/E replicated.
        assert_eq!(scaled_queue_length(60, 1.0), 60);
        assert_eq!(scaled_queue_length(60, 1.9), 32); // 31.6 rounds to 32
        assert_eq!(scaled_queue_length(1, 10.0), 1); // never below 1
    }

    #[test]
    #[should_panic(expected = "below 1")]
    fn rejects_sub_unit_expansion() {
        scaled_queue_length(60, 0.5);
    }
}
