//! The catalog: the mapping from logical blocks to physical tape locations.
//!
//! A data block may be replicated on multiple tapes, with **at most one
//! copy per tape** (Section 2.2). The catalog stores both directions of the
//! mapping — block to replica addresses, and tape slot to block — and
//! enforces the one-copy-per-tape and one-block-per-slot invariants at
//! construction time.
#![allow(clippy::cast_possible_truncation)] // slot/copy counts are bounded by jukebox capacity (u32)
#![allow(clippy::cast_precision_loss)] // copy counts stay far below 2^53

use tapesim_model::{BlockSize, JukeboxGeometry, PhysicalAddr, SlotIndex, TapeId};

use crate::block::{BlockId, Heat};

/// Errors raised while building a catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A second copy of the same block was placed on one tape.
    DuplicateCopyOnTape {
        /// The offending block.
        block: BlockId,
        /// The tape already holding a copy.
        tape: TapeId,
    },
    /// Two blocks were placed in the same physical slot.
    SlotOccupied {
        /// The contested address.
        addr: PhysicalAddr,
        /// The block already there.
        occupant: BlockId,
        /// The block that could not be placed.
        incoming: BlockId,
    },
    /// A placement referenced a tape or slot outside the geometry.
    OutOfBounds {
        /// The invalid address.
        addr: PhysicalAddr,
    },
    /// A block id at or beyond the declared block count was placed.
    UnknownBlock {
        /// The invalid block.
        block: BlockId,
    },
    /// A block ended up with no copies at all.
    Unplaced {
        /// The block that has no copy.
        block: BlockId,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::DuplicateCopyOnTape { block, tape } => {
                write!(f, "{block} already has a copy on {tape}")
            }
            CatalogError::SlotOccupied {
                addr,
                occupant,
                incoming,
            } => write!(f, "{addr} holds {occupant}; cannot also hold {incoming}"),
            CatalogError::OutOfBounds { addr } => write!(f, "{addr} outside jukebox geometry"),
            CatalogError::UnknownBlock { block } => write!(f, "{block} beyond block count"),
            CatalogError::Unplaced { block } => write!(f, "{block} has no tape copy"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// Erasure-stripe annotation for a catalog whose "blocks" are shard
/// cells (see `PlacementScheme::Erasure`). Logical block `b` is stored
/// as [`StripeInfo::cells_of`]`(b)` consecutive cell ids: hot blocks own
/// `k + m` cells (one per stripe tape, any `k` reconstruct the block),
/// cold blocks own `k` data cells laid out contiguously on one tape.
/// `None` on a catalog means cells are whole logical blocks (the
/// replication and no-redundancy schemes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeInfo {
    /// Data shards per block; any `k` surviving shards of a hot block
    /// reconstruct it.
    pub k: u8,
    /// Parity shards per hot block (cold blocks store none).
    pub m: u8,
    /// Logical blocks behind the shard cells.
    pub logical_blocks: u32,
    /// Logical hot blocks; logical ids `0..logical_hot` are hot.
    pub logical_hot: u32,
}

impl StripeInfo {
    /// Shard cells stored per hot block (`k + m`).
    #[inline]
    pub fn shards_per_hot(&self) -> u32 {
        u32::from(self.k) + u32::from(self.m)
    }

    /// Data shards per block (`k`).
    #[inline]
    pub fn data_shards(&self) -> u32 {
        u32::from(self.k)
    }

    /// The shard cells of logical block `b` as `(first_cell, count)`:
    /// `k + m` cells for hot blocks, `k` for cold.
    pub fn cells_of(&self, logical: u32) -> (u32, u32) {
        let km = self.shards_per_hot();
        let k = self.data_shards();
        if logical < self.logical_hot {
            (logical * km, km)
        } else {
            (self.logical_hot * km + (logical - self.logical_hot) * k, k)
        }
    }

    /// The logical block a shard cell belongs to.
    pub fn logical_of(&self, cell: u32) -> u32 {
        let km = self.shards_per_hot();
        let hot_cells = self.logical_hot * km;
        if cell < hot_cells {
            cell / km
        } else {
            self.logical_hot + (cell - hot_cells) / self.data_shards()
        }
    }

    /// Total shard cells the catalog stores.
    pub fn total_cells(&self) -> u32 {
        self.logical_hot * self.shards_per_hot()
            + (self.logical_blocks - self.logical_hot) * self.data_shards()
    }
}

/// Immutable catalog of block placements for one jukebox.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    geometry: JukeboxGeometry,
    block_size: BlockSize,
    /// Number of hot blocks; ids `0..hot_count` are hot.
    hot_count: u32,
    /// `replicas[b]` = sorted physical addresses of block `b`'s copies.
    replicas: Vec<Vec<PhysicalAddr>>,
    /// `slot_map[tape][slot]` = block stored there, if any.
    slot_map: Vec<Vec<Option<BlockId>>>,
    /// Present iff the catalog's blocks are erasure shard cells.
    stripe: Option<StripeInfo>,
}

impl Catalog {
    /// Starts building a catalog for `blocks` logical blocks, of which the
    /// first `hot_count` are hot.
    pub fn builder(
        geometry: JukeboxGeometry,
        block_size: BlockSize,
        blocks: u32,
        hot_count: u32,
    ) -> CatalogBuilder {
        assert!(hot_count <= blocks, "hot count exceeds block count");
        CatalogBuilder {
            geometry,
            block_size,
            hot_count,
            replicas: vec![Vec::new(); blocks as usize],
            slot_map: vec![
                vec![None; geometry.slots_per_tape(block_size) as usize];
                geometry.tapes as usize
            ],
            stripe: None,
        }
    }

    /// The jukebox geometry this catalog was built for.
    #[inline]
    pub fn geometry(&self) -> JukeboxGeometry {
        self.geometry
    }

    /// The fixed logical block size.
    #[inline]
    pub fn block_size(&self) -> BlockSize {
        self.block_size
    }

    /// Total number of logical blocks.
    #[inline]
    pub fn num_blocks(&self) -> u32 {
        self.replicas.len() as u32
    }

    /// Number of hot blocks (ids `0..hot_count`).
    #[inline]
    pub fn hot_count(&self) -> u32 {
        self.hot_count
    }

    /// Number of cold blocks.
    #[inline]
    pub fn cold_count(&self) -> u32 {
        self.num_blocks() - self.hot_count
    }

    /// The heat class of a block.
    #[inline]
    pub fn heat(&self, block: BlockId) -> Heat {
        if block.0 < self.hot_count {
            Heat::Hot
        } else {
            Heat::Cold
        }
    }

    /// All physical copies of `block`, sorted by tape id.
    #[inline]
    pub fn replicas(&self, block: BlockId) -> &[PhysicalAddr] {
        &self.replicas[block.index()]
    }

    /// The surviving copies of `block`: all replicas except those on
    /// tapes in `offline` (a sorted or unsorted small slice). This is the
    /// failover lookup used by the scheduler when a request's primary
    /// copy sits on a failed tape — any returned address can serve the
    /// request.
    pub fn replicas_of<'a>(
        &'a self,
        block: BlockId,
        offline: &'a [TapeId],
    ) -> impl Iterator<Item = PhysicalAddr> + 'a {
        self.replicas(block)
            .iter()
            .copied()
            .filter(move |a| !offline.contains(&a.tape))
    }

    /// The copy of `block` on `tape`, if one exists.
    pub fn copy_on_tape(&self, block: BlockId, tape: TapeId) -> Option<PhysicalAddr> {
        self.replicas(block)
            .iter()
            .find(|a| a.tape == tape)
            .copied()
    }

    /// The block stored at a physical address, if any.
    pub fn block_at(&self, addr: PhysicalAddr) -> Option<BlockId> {
        self.slot_map
            .get(addr.tape.index())?
            .get(addr.slot.index())
            .copied()
            .flatten()
    }

    /// Iterator over `(slot, block)` pairs on one tape in ascending slot
    /// order.
    pub fn tape_contents(&self, tape: TapeId) -> impl Iterator<Item = (SlotIndex, BlockId)> + '_ {
        self.slot_map[tape.index()]
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.map(|b| (SlotIndex(i as u32), b)))
    }

    /// Number of occupied slots on one tape.
    pub fn occupied_slots(&self, tape: TapeId) -> u32 {
        self.slot_map[tape.index()]
            .iter()
            .filter(|b| b.is_some())
            .count() as u32
    }

    /// Total copies stored across all tapes (originals + replicas).
    pub fn total_copies(&self) -> u64 {
        self.replicas.iter().map(|r| r.len() as u64).sum()
    }

    /// Measured expansion factor: total copies divided by logical blocks.
    pub fn measured_expansion(&self) -> f64 {
        self.total_copies() as f64 / self.num_blocks() as f64
    }

    /// The erasure-stripe annotation, when this catalog's blocks are
    /// shard cells rather than whole logical blocks.
    #[inline]
    pub fn stripe(&self) -> Option<&StripeInfo> {
        self.stripe.as_ref()
    }

    /// Logical blocks behind the catalog: equals [`Catalog::num_blocks`]
    /// for whole-block catalogs, and the striped logical count for
    /// erasure catalogs. Workload samplers draw from this range.
    pub fn logical_num_blocks(&self) -> u32 {
        self.stripe
            .as_ref()
            .map_or_else(|| self.num_blocks(), |s| s.logical_blocks)
    }

    /// Logical hot blocks (logical ids `0..hot` are hot). Equals
    /// [`Catalog::hot_count`] for whole-block catalogs.
    pub fn logical_hot_count(&self) -> u32 {
        self.stripe
            .as_ref()
            .map_or_else(|| self.hot_count(), |s| s.logical_hot)
    }

    /// The logical block size: [`Catalog::block_size`] for whole-block
    /// catalogs, `k` shard cells for erasure catalogs.
    pub fn logical_block_size(&self) -> BlockSize {
        self.stripe.as_ref().map_or(self.block_size, |s| {
            BlockSize::from_mb(self.block_size.mb() * s.data_shards())
        })
    }

    /// Measured expansion in logical units: stored cells over
    /// `logical_blocks * k` for erasure catalogs (the denominator is the
    /// cell count the logical data would occupy without parity), and
    /// exactly [`Catalog::measured_expansion`] otherwise.
    pub fn measured_logical_expansion(&self) -> f64 {
        match &self.stripe {
            None => self.measured_expansion(),
            Some(s) => {
                self.total_copies() as f64
                    / (f64::from(s.logical_blocks) * f64::from(s.data_shards()))
            }
        }
    }
}

/// Incremental catalog builder that validates every placement.
#[derive(Debug, Clone)]
pub struct CatalogBuilder {
    geometry: JukeboxGeometry,
    block_size: BlockSize,
    hot_count: u32,
    replicas: Vec<Vec<PhysicalAddr>>,
    slot_map: Vec<Vec<Option<BlockId>>>,
    stripe: Option<StripeInfo>,
}

impl CatalogBuilder {
    /// Marks the catalog as an erasure-shard catalog: its block count and
    /// hot count must equal the cell totals `info` implies.
    pub fn set_stripe(&mut self, info: StripeInfo) {
        debug_assert_eq!(self.replicas.len() as u32, info.total_cells());
        debug_assert_eq!(self.hot_count, info.logical_hot * info.shards_per_hot());
        self.stripe = Some(info);
    }

    /// Places a copy of `block` at `addr`.
    pub fn place(&mut self, block: BlockId, addr: PhysicalAddr) -> Result<(), CatalogError> {
        if block.index() >= self.replicas.len() {
            return Err(CatalogError::UnknownBlock { block });
        }
        if addr.tape.index() >= self.slot_map.len()
            || addr.slot.index() >= self.slot_map[addr.tape.index()].len()
        {
            return Err(CatalogError::OutOfBounds { addr });
        }
        // One copy per tape: a block has at most `tapes` replicas, so this
        // scan is over a handful of entries and beats a side index.
        if self.replicas[block.index()]
            .iter()
            .any(|a| a.tape == addr.tape)
        {
            return Err(CatalogError::DuplicateCopyOnTape {
                block,
                tape: addr.tape,
            });
        }
        let cell = &mut self.slot_map[addr.tape.index()][addr.slot.index()];
        if let Some(occupant) = *cell {
            return Err(CatalogError::SlotOccupied {
                addr,
                occupant,
                incoming: block,
            });
        }
        *cell = Some(block);
        self.replicas[block.index()].push(addr);
        Ok(())
    }

    /// Finalizes the catalog, checking that every block has at least one
    /// copy.
    pub fn build(mut self) -> Result<Catalog, CatalogError> {
        for (i, r) in self.replicas.iter_mut().enumerate() {
            if r.is_empty() {
                return Err(CatalogError::Unplaced {
                    block: BlockId(i as u32),
                });
            }
            r.sort_by_key(|a| a.tape);
        }
        Ok(Catalog {
            geometry: self.geometry,
            block_size: self.block_size,
            hot_count: self.hot_count,
            replicas: self.replicas,
            slot_map: self.slot_map,
            stripe: self.stripe,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(t: u16, s: u32) -> PhysicalAddr {
        PhysicalAddr {
            tape: TapeId(t),
            slot: SlotIndex(s),
        }
    }

    fn small_builder(blocks: u32, hot: u32) -> CatalogBuilder {
        // 3 tapes x 1024 MB = 64 slots of 16 MB per tape.
        Catalog::builder(
            JukeboxGeometry::new(3, 1024),
            BlockSize::from_mb(16),
            blocks,
            hot,
        )
    }

    #[test]
    fn place_and_query_roundtrip() {
        let mut b = small_builder(2, 1);
        b.place(BlockId(0), addr(0, 1)).unwrap();
        b.place(BlockId(0), addr(2, 0)).unwrap();
        b.place(BlockId(1), addr(1, 3)).unwrap();
        let c = b.build().unwrap();

        assert_eq!(c.replicas(BlockId(0)), &[addr(0, 1), addr(2, 0)]);
        assert_eq!(c.copy_on_tape(BlockId(0), TapeId(2)), Some(addr(2, 0)));
        assert_eq!(c.copy_on_tape(BlockId(0), TapeId(1)), None);
        assert_eq!(c.block_at(addr(1, 3)), Some(BlockId(1)));
        assert_eq!(c.block_at(addr(1, 2)), None);
        assert_eq!(c.heat(BlockId(0)), Heat::Hot);
        assert_eq!(c.heat(BlockId(1)), Heat::Cold);
        assert_eq!(c.total_copies(), 3);
        assert!((c.measured_expansion() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_second_copy_on_same_tape() {
        let mut b = small_builder(1, 0);
        b.place(BlockId(0), addr(0, 1)).unwrap();
        let err = b.place(BlockId(0), addr(0, 5)).unwrap_err();
        assert_eq!(
            err,
            CatalogError::DuplicateCopyOnTape {
                block: BlockId(0),
                tape: TapeId(0)
            }
        );
    }

    #[test]
    fn rejects_occupied_slot() {
        let mut b = small_builder(2, 0);
        b.place(BlockId(0), addr(1, 2)).unwrap();
        let err = b.place(BlockId(1), addr(1, 2)).unwrap_err();
        assert!(matches!(err, CatalogError::SlotOccupied { .. }));
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut b = small_builder(1, 0);
        assert!(matches!(
            b.place(BlockId(0), addr(3, 0)),
            Err(CatalogError::OutOfBounds { .. })
        ));
        assert!(matches!(
            b.place(BlockId(0), addr(0, 64)),
            Err(CatalogError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn rejects_unknown_block() {
        let mut b = small_builder(1, 0);
        assert!(matches!(
            b.place(BlockId(1), addr(0, 0)),
            Err(CatalogError::UnknownBlock { .. })
        ));
    }

    #[test]
    fn build_fails_on_unplaced_block() {
        let mut b = small_builder(2, 0);
        b.place(BlockId(0), addr(0, 0)).unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            CatalogError::Unplaced { block: BlockId(1) }
        );
    }

    #[test]
    fn tape_contents_in_slot_order() {
        let mut b = small_builder(3, 0);
        b.place(BlockId(2), addr(0, 5)).unwrap();
        b.place(BlockId(0), addr(0, 1)).unwrap();
        b.place(BlockId(1), addr(1, 0)).unwrap();
        let c = b.build().unwrap();
        let contents: Vec<_> = c.tape_contents(TapeId(0)).collect();
        assert_eq!(
            contents,
            vec![(SlotIndex(1), BlockId(0)), (SlotIndex(5), BlockId(2))]
        );
        assert_eq!(c.occupied_slots(TapeId(0)), 2);
        assert_eq!(c.occupied_slots(TapeId(2)), 0);
    }

    #[test]
    fn replicas_sorted_by_tape() {
        let mut b = small_builder(1, 1);
        b.place(BlockId(0), addr(2, 0)).unwrap();
        b.place(BlockId(0), addr(0, 3)).unwrap();
        b.place(BlockId(0), addr(1, 7)).unwrap();
        let c = b.build().unwrap();
        let tapes: Vec<u16> = c.replicas(BlockId(0)).iter().map(|a| a.tape.0).collect();
        assert_eq!(tapes, vec![0, 1, 2]);
    }

    #[test]
    fn replicas_of_filters_offline_tapes() {
        let mut b = small_builder(1, 1);
        b.place(BlockId(0), addr(0, 3)).unwrap();
        b.place(BlockId(0), addr(2, 0)).unwrap();
        let c = b.build().unwrap();
        let all: Vec<_> = c.replicas_of(BlockId(0), &[]).collect();
        assert_eq!(all, vec![addr(0, 3), addr(2, 0)]);
        let survivors: Vec<_> = c.replicas_of(BlockId(0), &[TapeId(0)]).collect();
        assert_eq!(survivors, vec![addr(2, 0)]);
        let none: Vec<_> = c.replicas_of(BlockId(0), &[TapeId(0), TapeId(2)]).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn stripe_cell_mapping_roundtrips() {
        let s = StripeInfo {
            k: 2,
            m: 1,
            logical_blocks: 5,
            logical_hot: 2,
        };
        // Hot blocks own 3 cells each, cold blocks 2.
        assert_eq!(s.cells_of(0), (0, 3));
        assert_eq!(s.cells_of(1), (3, 3));
        assert_eq!(s.cells_of(2), (6, 2));
        assert_eq!(s.cells_of(4), (10, 2));
        assert_eq!(s.total_cells(), 12);
        for logical in 0..s.logical_blocks {
            let (base, len) = s.cells_of(logical);
            for cell in base..base + len {
                assert_eq!(s.logical_of(cell), logical, "cell {cell}");
            }
        }
    }

    #[test]
    fn striped_catalog_reports_logical_shape() {
        // 3 tapes x 64 shard slots; 1 hot logical block as 2+1 shards on
        // distinct tapes, 1 cold logical block as 2 contiguous cells.
        let mut b = Catalog::builder(JukeboxGeometry::new(3, 1024), BlockSize::from_mb(16), 5, 3);
        b.set_stripe(StripeInfo {
            k: 2,
            m: 1,
            logical_blocks: 2,
            logical_hot: 1,
        });
        b.place(BlockId(0), addr(0, 0)).unwrap();
        b.place(BlockId(1), addr(1, 0)).unwrap();
        b.place(BlockId(2), addr(2, 0)).unwrap();
        b.place(BlockId(3), addr(0, 1)).unwrap();
        b.place(BlockId(4), addr(0, 2)).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.num_blocks(), 5);
        assert_eq!(c.hot_count(), 3);
        assert_eq!(c.logical_num_blocks(), 2);
        assert_eq!(c.logical_hot_count(), 1);
        assert_eq!(c.logical_block_size().mb(), 32);
        // 5 cells stored for 2 logical blocks of 2 cells each.
        assert!((c.measured_logical_expansion() - 1.25).abs() < 1e-12);
        // Unstriped catalogs: logical == physical.
        let mut plain = small_builder(1, 0);
        plain.place(BlockId(0), addr(0, 0)).unwrap();
        let plain = plain.build().unwrap();
        assert_eq!(plain.logical_num_blocks(), plain.num_blocks());
        assert_eq!(plain.logical_block_size(), plain.block_size());
        assert!(plain.stripe().is_none());
    }

    #[test]
    fn error_display_messages() {
        let e = CatalogError::DuplicateCopyOnTape {
            block: BlockId(1),
            tape: TapeId(2),
        };
        assert!(e.to_string().contains("block1"));
        assert!(e.to_string().contains("tape2"));
    }
}
