//! Spare-capacity schemes (Section 4.8).
//!
//! When a jukebox is only partially full, the paper compares two ways of
//! laying out the same logical data:
//!
//! * **packed, spare left empty** — base data packed into as few tapes as
//!   possible, with a vertical layout that separates hot data onto its
//!   own tape(s); the remaining tapes stay empty. The paper finds this
//!   within a percent or two of the non-replicated full layout.
//! * **spread, spare filled with replicas** — the paper's closing
//!   recommendation: keep the hottest data on its own tape, fill the
//!   other tapes only part way with base data, and append replicas of hot
//!   blocks to the ends of those tapes. Performance improves "for free".
#![allow(clippy::cast_possible_truncation)] // slot and tape counts are bounded by jukebox geometry
#![allow(clippy::cast_precision_loss)] // capacity totals stay far below 2^53

use tapesim_model::{BlockSize, JukeboxGeometry, PhysicalAddr, SlotIndex, TapeId};

use crate::block::BlockId;
use crate::catalog::Catalog;
use crate::placement::{
    LayoutKind, PlacedCatalog, PlacementConfig, PlacementError, PlacementScheme,
};

/// What to do with unused capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpareUse {
    /// Pack base data into as few tapes as possible and leave the spare
    /// slots empty.
    LeaveEmpty,
    /// Spread base data over all tapes and fill the spare slots at the
    /// tape ends with replicas of hot blocks.
    FillWithReplicas,
}

/// Configuration for a partially filled jukebox.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpareConfig {
    /// Percent of base data that is hot (`PH`).
    pub ph_percent: f64,
    /// Fraction of total jukebox capacity occupied by base data, in
    /// `(0, 1]`.
    pub fill_fraction: f64,
    /// Use of the remaining capacity.
    pub spare_use: SpareUse,
}

/// Builds a partially filled jukebox according to `cfg.spare_use`; both
/// variants store exactly the same logical blocks (hot data vertically
/// separated onto the leading tape(s)), so their reports are directly
/// comparable.
pub fn build_spare_layout(
    geometry: JukeboxGeometry,
    block: BlockSize,
    cfg: SpareConfig,
) -> Result<PlacedCatalog, PlacementError> {
    if !(0.0..=100.0).contains(&cfg.ph_percent) || !cfg.ph_percent.is_finite() {
        return Err(PlacementError::InvalidParameter("ph_percent"));
    }
    if !(cfg.fill_fraction > 0.0 && cfg.fill_fraction <= 1.0) {
        return Err(PlacementError::InvalidParameter("fill_fraction"));
    }
    let slots = geometry.slots_per_tape(block);
    let total = geometry.total_slots(block);
    let d = ((total as f64 * cfg.fill_fraction).floor() as u64).min(total) as u32;
    if d == 0 {
        return Err(PlacementError::NoCapacity);
    }
    let hot = ((d as f64 * cfg.ph_percent / 100.0).round() as u32).min(d);
    let hot_tape_count = hot.div_ceil(slots);
    let cold = d - hot;
    let cold_tapes = geometry.tapes as u32 - hot_tape_count;
    if cold > 0 && cold_tapes == 0 {
        return Err(PlacementError::NoCapacity);
    }

    let mut builder = Catalog::builder(geometry, block, d, hot);

    // Hot originals: packed from slot 0 on the leading tapes.
    for b in 0..hot {
        builder.place(
            BlockId(b),
            PhysicalAddr {
                tape: TapeId((b / slots) as u16),
                slot: SlotIndex(b % slots),
            },
        )?;
    }

    match cfg.spare_use {
        SpareUse::LeaveEmpty => {
            // Pack cold data from slot 0 on subsequent tapes, as few as
            // possible (reusing leftover room on the last hot tape).
            let mut tape = if hot.is_multiple_of(slots) {
                hot_tape_count
            } else {
                hot_tape_count - 1
            };
            let mut slot = hot % slots;
            for b in hot..d {
                if tape >= geometry.tapes as u32 {
                    return Err(PlacementError::NoCapacity);
                }
                builder.place(
                    BlockId(b),
                    PhysicalAddr {
                        tape: TapeId(tape as u16),
                        slot: SlotIndex(slot),
                    },
                )?;
                slot += 1;
                if slot == slots {
                    slot = 0;
                    tape += 1;
                }
            }
        }
        SpareUse::FillWithReplicas => {
            // Spread cold data evenly from slot 0 over the non-hot tapes,
            // then fill each tape's tail with replicas of hot blocks.
            let per_tape = cold / cold_tapes;
            let extra = cold % cold_tapes; // first `extra` tapes get one more
            if per_tape + 1 > slots && extra > 0 || per_tape > slots {
                return Err(PlacementError::NoCapacity);
            }
            let mut b = hot;
            let mut fill_end = vec![0u32; geometry.tapes as usize];
            for i in 0..cold_tapes {
                let tape = hot_tape_count + i;
                let count = per_tape + u32::from(i < extra);
                for s in 0..count {
                    builder.place(
                        BlockId(b),
                        PhysicalAddr {
                            tape: TapeId(tape as u16),
                            slot: SlotIndex(s),
                        },
                    )?;
                    b += 1;
                }
                fill_end[tape as usize] = count;
            }
            debug_assert_eq!(b, d);
            // Replicas at the tape ends (Section 4.5's placement), at most
            // one copy of a block per tape, round-robin over hot blocks so
            // replica counts stay even.
            if hot > 0 {
                let mut cursor: u32 = 0;
                for i in 0..cold_tapes {
                    let tape = hot_tape_count + i;
                    let spare = slots - fill_end[tape as usize];
                    let count = spare.min(hot);
                    if count == 0 {
                        continue;
                    }
                    let region_start = slots - count;
                    for k in 0..count {
                        builder.place(
                            BlockId((cursor + k) % hot),
                            PhysicalAddr {
                                tape: TapeId(tape as u16),
                                slot: SlotIndex(region_start + k),
                            },
                        )?;
                    }
                    cursor = (cursor + count) % hot;
                }
            }
        }
    }

    let catalog = builder.build()?;
    let hot_tapes = (0..hot_tape_count).map(|i| TapeId(i as u16)).collect();
    let expansion = catalog.measured_expansion();
    Ok(PlacedCatalog {
        catalog,
        expansion,
        hot_tapes,
        config: PlacementConfig {
            layout: LayoutKind::Vertical,
            ph_percent: cfg.ph_percent,
            scheme: PlacementScheme::NONE, // replica count is variable per block; see expansion
            sp: 1.0,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Heat;

    const B16: BlockSize = BlockSize::PAPER_DEFAULT;

    fn geom() -> JukeboxGeometry {
        JukeboxGeometry::PAPER_DEFAULT
    }

    #[test]
    fn packed_layout_uses_fewest_tapes() {
        let placed = build_spare_layout(
            geom(),
            B16,
            SpareConfig {
                ph_percent: 10.0,
                fill_fraction: 0.5,
                spare_use: SpareUse::LeaveEmpty,
            },
        )
        .unwrap();
        let c = &placed.catalog;
        assert_eq!(c.num_blocks(), 2240);
        assert_eq!(c.hot_count(), 224);
        assert_eq!(c.total_copies(), 2240);
        // 2240 blocks over 448-slot tapes = exactly 5 tapes.
        let used: Vec<u32> = geom().tape_ids().map(|t| c.occupied_slots(t)).collect();
        assert_eq!(used, vec![448, 448, 448, 448, 448, 0, 0, 0, 0, 0]);
        // Hot blocks are a prefix of tape 0.
        let first: Vec<_> = c.tape_contents(TapeId(0)).take(224).collect();
        assert!(first.iter().all(|&(_, b)| c.heat(b) == Heat::Hot));
    }

    #[test]
    fn spread_layout_fills_every_tape_partially() {
        let placed = build_spare_layout(
            geom(),
            B16,
            SpareConfig {
                ph_percent: 10.0,
                fill_fraction: 0.5,
                spare_use: SpareUse::FillWithReplicas,
            },
        )
        .unwrap();
        let c = &placed.catalog;
        assert_eq!(c.num_blocks(), 2240);
        assert!(c.total_copies() > 2240, "copies {}", c.total_copies());
        // Cold data spread: 2016 cold over 9 tapes = 224 each, from slot 0.
        for t in 1..10u16 {
            let contents: Vec<_> = c.tape_contents(TapeId(t)).collect();
            // 224 cold at the front + 224 replicas at the end.
            assert_eq!(contents.len(), 448);
            let (front, back) = contents.split_at(224);
            assert!(front
                .iter()
                .all(|&(s, b)| s.0 < 224 && c.heat(b) == Heat::Cold));
            assert!(back
                .iter()
                .all(|&(s, b)| s.0 >= 224 && c.heat(b) == Heat::Hot));
        }
        assert!(placed.expansion > 1.0);
    }

    #[test]
    fn spread_layout_replicas_respect_one_copy_per_tape() {
        let placed = build_spare_layout(
            geom(),
            B16,
            SpareConfig {
                ph_percent: 1.0,
                fill_fraction: 0.3,
                spare_use: SpareUse::FillWithReplicas,
            },
        )
        .unwrap();
        let c = &placed.catalog;
        for b in 0..c.hot_count() {
            let tapes: Vec<_> = c.replicas(BlockId(b)).iter().map(|a| a.tape).collect();
            let mut dedup = tapes.clone();
            dedup.dedup();
            assert_eq!(tapes, dedup, "duplicate copy of block {b} on one tape");
        }
    }

    #[test]
    fn both_schemes_store_identical_logical_data() {
        for (ph, fill) in [(10.0, 0.5), (5.0, 0.6), (20.0, 0.8)] {
            let mk = |use_| {
                build_spare_layout(
                    geom(),
                    B16,
                    SpareConfig {
                        ph_percent: ph,
                        fill_fraction: fill,
                        spare_use: use_,
                    },
                )
                .unwrap()
            };
            let a = mk(SpareUse::LeaveEmpty);
            let b = mk(SpareUse::FillWithReplicas);
            assert_eq!(a.catalog.num_blocks(), b.catalog.num_blocks());
            assert_eq!(a.catalog.hot_count(), b.catalog.hot_count());
        }
    }

    #[test]
    fn full_fill_leaves_no_spare() {
        let placed = build_spare_layout(
            geom(),
            B16,
            SpareConfig {
                ph_percent: 10.0,
                fill_fraction: 1.0,
                spare_use: SpareUse::FillWithReplicas,
            },
        )
        .unwrap();
        // No spare -> no replicas despite the request.
        assert_eq!(placed.catalog.total_copies(), 4480);
        assert!((placed.expansion - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_fill_fraction_rejected() {
        for bad in [0.0, -0.5, 1.5] {
            let err = build_spare_layout(
                geom(),
                B16,
                SpareConfig {
                    ph_percent: 10.0,
                    fill_fraction: bad,
                    spare_use: SpareUse::LeaveEmpty,
                },
            )
            .unwrap_err();
            assert!(matches!(err, PlacementError::InvalidParameter(_)));
        }
    }

    #[test]
    fn zero_hot_leaves_spare_empty_even_when_filling() {
        let placed = build_spare_layout(
            geom(),
            B16,
            SpareConfig {
                ph_percent: 0.0,
                fill_fraction: 0.4,
                spare_use: SpareUse::FillWithReplicas,
            },
        )
        .unwrap();
        let c = &placed.catalog;
        assert_eq!(c.hot_count(), 0);
        assert_eq!(c.total_copies(), u64::from(c.num_blocks()));
    }
}
