//! # tapesim-layout
//!
//! Data layout, placement, and replication for the tape-jukebox simulator,
//! implementing Sections 2.2 and 4.3-4.5 and the Section 4.8
//! spare-capacity schemes of *Scheduling and Data Replication to Improve
//! Tape Jukebox Performance* (ICDE 1999).
//!
//! The central type is the [`Catalog`]: the mapping from logical
//! [`BlockId`]s to physical tape addresses, with the paper's invariant of
//! at most one copy of a block per tape. Catalogs are produced by
//! placement builders:
//!
//! * [`build_placement`] — horizontal/vertical layouts with `PH`% hot
//!   data, `NR` replicas, and a normalized hot-region start position `SP`;
//! * [`build_spare_layout`] — partially filled jukeboxes whose spare
//!   capacity is either left empty or filled with hot replicas at the
//!   tape ends ("replication for free");
//! * [`build_fleet_placement`] — the same layouts over a multi-library
//!   fleet topology, with replicas confined to the original's library or
//!   spread across libraries ([`ReplicaScope`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod catalog;
pub mod expansion;
pub mod placement;
pub mod spare;

pub use block::{BlockId, Heat};
pub use catalog::{Catalog, CatalogBuilder, CatalogError, StripeInfo};
pub use expansion::{
    expansion_factor, expansion_table, scaled_queue_length, scheme_expansion_factor, ExpansionRow,
};
pub use placement::{
    build_fleet_placement, build_placement, LayoutKind, PlacedCatalog, PlacementConfig,
    PlacementError, PlacementScheme, ReplicaScope,
};
pub use spare::{build_spare_layout, SpareConfig, SpareUse};
