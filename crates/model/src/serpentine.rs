//! Serpentine tape model — the tape technology the paper scopes out.
//!
//! Section 2: "The algorithms in this paper would need to be modified for
//! serpentine tapes such as Travan, Quantum DLT, and IBM 3590." On a
//! serpentine drive the logical block numbering snakes across parallel
//! tracks: track 0 runs down the tape, track 1 runs back, and so on.
//! Consequently the *logical* distance between two blocks says little
//! about the *physical* locate cost — blocks at similar longitudinal
//! positions on different tracks are near each other, while consecutive
//! logical blocks at a track boundary sit at the same tape end.
//!
//! This module models that geometry: a logical slot maps to a
//! `(track, longitudinal position, direction)` triple, and a locate costs
//! a longitudinal seek (the tape moves under the head) plus a track
//! switch (the head steps laterally). The `ext_serpentine` experiment
//! uses it to show *why* the paper's single-pass sweep needs modification,
//! and what a serpentine-aware ordering buys.

use crate::drive::ReadModel;
use crate::time::Micros;
use crate::units::{BlockSize, SlotIndex};

/// Layout of a serpentine tape: `tracks` parallel tracks, each holding
/// `track_length_mb` megabytes, logical numbering snaking between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerpentineGeometry {
    /// Number of tracks (always >= 1).
    pub tracks: u32,
    /// Megabytes per track.
    pub track_length_mb: u64,
}

impl SerpentineGeometry {
    /// A DLT-like layout: 7168 MB (the paper's 7 GB tape) over 52 tracks.
    pub fn dlt_like() -> Self {
        SerpentineGeometry {
            tracks: 52,
            track_length_mb: 7168_u64.div_ceil(52),
        }
    }

    /// Creates a geometry.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(tracks: u32, track_length_mb: u64) -> Self {
        assert!(tracks > 0 && track_length_mb > 0, "degenerate geometry");
        SerpentineGeometry {
            tracks,
            track_length_mb,
        }
    }

    /// Total capacity in megabytes.
    pub fn capacity_mb(&self) -> u64 {
        self.tracks as u64 * self.track_length_mb
    }

    /// Number of whole block slots on the tape.
    #[allow(clippy::cast_possible_truncation)] // capacity / block size fits u32 slots
    pub fn slots(&self, block: BlockSize) -> u32 {
        (self.capacity_mb() / block.mb_u64()) as u32
    }

    /// Physical position of a logical slot: `(track, longitudinal MB at
    /// the slot's start, reads_forward)`. Even tracks read away from the
    /// load point, odd tracks read back toward it.
    #[allow(clippy::cast_possible_truncation)] // track count is asserted below capacity
    pub fn position_of(&self, slot: SlotIndex, block: BlockSize) -> SerpentinePos {
        let slot_mb = block.mb_u64();
        let offset_mb = slot.0 as u64 * slot_mb;
        let track = (offset_mb / self.track_length_mb) as u32;
        assert!(track < self.tracks, "slot beyond tape capacity");
        let within = offset_mb % self.track_length_mb;
        let forward = track.is_multiple_of(2);
        let x_mb = if forward {
            within
        } else {
            // Odd tracks are laid out end-to-start; a block that straddles
            // the track boundary saturates at the load point.
            self.track_length_mb.saturating_sub(within + slot_mb)
        };
        SerpentinePos {
            track,
            x_mb,
            forward,
        }
    }
}

/// Physical location of a block on a serpentine tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SerpentinePos {
    /// Track index (0-based).
    pub track: u32,
    /// Longitudinal distance of the block's start from the load point, in
    /// MB of tape.
    pub x_mb: u64,
    /// Whether the block is read moving away from the load point.
    pub forward: bool,
}

/// Timing model of a serpentine drive.
#[derive(Debug, Clone, PartialEq)]
pub struct SerpentineModel {
    /// Human-readable name.
    pub name: &'static str,
    /// Tape layout.
    pub geometry: SerpentineGeometry,
    /// Fixed cost of any repositioning (ramp up/down, settle).
    pub seek_startup_s: f64,
    /// Longitudinal tape motion, seconds per MB of tape passed (the tape
    /// shuttles at search speed in either direction).
    pub seek_per_mb_s: f64,
    /// Head step between adjacent tracks.
    pub track_step_s: f64,
    /// Transfer model (per-block read cost).
    pub read: ReadModel,
}

impl SerpentineModel {
    /// A plausible DLT-7000-class drive: 5 MB/s streaming, ~45 s average
    /// access, fast track stepping.
    pub fn dlt_like() -> Self {
        SerpentineModel {
            name: "DLT-class serpentine drive",
            geometry: SerpentineGeometry::dlt_like(),
            seek_startup_s: 6.0,
            seek_per_mb_s: 0.55, // ~75 s to shuttle a full 138 MB track
            track_step_s: 2.0,
            read: ReadModel {
                after_forward_startup_s: 0.2,
                per_mb_s: 0.2, // 5 MB/s streaming
            },
        }
    }

    /// Locate time from the head parked after `from` to the start of `to`.
    /// `from = None` means the head is at the load point (track 0, x 0).
    pub fn locate(&self, from: Option<SlotIndex>, to: SlotIndex, block: BlockSize) -> Micros {
        // Reading the next logical block continues the stream: the head
        // is already positioned (track changes at a snake turn-around are
        // folded into the drive's streaming behaviour, as on real
        // serpentine drives).
        if let Some(f) = from {
            if to.0 == f.0 + 1 {
                return Micros::ZERO;
            }
        }
        let (fx, ft) = match from {
            None => (0u64, 0u32),
            Some(s) => {
                let p = self.geometry.position_of(s, block);
                // Approximating the post-read head position with the
                // block's start keeps the model simple and symmetric.
                (p.x_mb, p.track)
            }
        };
        let tp = self.geometry.position_of(to, block);
        if fx == tp.x_mb && ft == tp.track && from.is_some() {
            return Micros::ZERO;
        }
        let dx = fx.abs_diff(tp.x_mb);
        let dt = ft.abs_diff(tp.track);
        let secs = self.seek_startup_s
            + self.seek_per_mb_s * crate::units::mb_f64(dx)
            + self.track_step_s * f64::from(dt);
        Micros::from_secs_f64(secs)
    }

    /// Time to read one block (serpentine transfers do not depend on the
    /// preceding locate direction).
    pub fn read_block(&self, block: BlockSize) -> Micros {
        Micros::from_secs_f64(
            self.read.after_forward_startup_s + self.read.per_mb_s * block.mb_f64(),
        )
    }

    /// Total time to service `stops` in the given order from the load
    /// point: locate + read for each stop.
    pub fn service_time(&self, stops: &[SlotIndex], block: BlockSize) -> Micros {
        let mut total = Micros::ZERO;
        let mut head: Option<SlotIndex> = None;
        for &s in stops {
            total += self.locate(head, s, block) + self.read_block(block);
            head = Some(s);
        }
        total
    }
}

/// Orders requested slots the way the paper's single-pass sweep would:
/// ascending logical position. On a serpentine tape the logical numbering
/// already snakes, so this is a boustrophedon that visits the tracks in
/// order — fine for *dense* request sets, but it pays a longitudinal
/// shuttle per track even when only one block per track is wanted.
pub fn logical_sweep_order(mut slots: Vec<SlotIndex>) -> Vec<SlotIndex> {
    slots.sort_unstable();
    slots
}

/// Greedy nearest-neighbor order under the serpentine cost model: from
/// the load point, repeatedly visit the cheapest unvisited stop. `O(n^2)`.
pub fn nearest_neighbor_order(
    model: &SerpentineModel,
    block: BlockSize,
    mut slots: Vec<SlotIndex>,
) -> Vec<SlotIndex> {
    let mut out = Vec::with_capacity(slots.len());
    let mut head: Option<SlotIndex> = None;
    while !slots.is_empty() {
        let (i, _) = slots
            .iter()
            .enumerate()
            .map(|(i, &s)| (i, model.locate(head, s, block)))
            .min_by_key(|&(i, c)| (c, i))
            // simlint: allow(panic, the while-let guard ensures slots is non-empty)
            .expect("non-empty");
        let s = slots.swap_remove(i);
        out.push(s);
        head = Some(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SerpentineModel {
        SerpentineModel::dlt_like()
    }

    const B16: BlockSize = BlockSize::PAPER_DEFAULT;

    #[test]
    fn geometry_snakes_across_tracks() {
        let g = SerpentineGeometry::new(4, 160); // 10 slots of 16 MB/track
        assert_eq!(g.capacity_mb(), 640);
        assert_eq!(g.slots(B16), 40);
        // Track 0 runs forward.
        let p0 = g.position_of(SlotIndex(0), B16);
        assert_eq!((p0.track, p0.x_mb, p0.forward), (0, 0, true));
        let p9 = g.position_of(SlotIndex(9), B16);
        assert_eq!((p9.track, p9.x_mb), (0, 144));
        // Track 1 runs backward: slot 10 sits at the far end.
        let p10 = g.position_of(SlotIndex(10), B16);
        assert_eq!((p10.track, p10.x_mb, p10.forward), (1, 144, false));
        let p19 = g.position_of(SlotIndex(19), B16);
        assert_eq!((p19.track, p19.x_mb), (1, 0));
        // Track 2 forward again.
        let p20 = g.position_of(SlotIndex(20), B16);
        assert_eq!((p20.track, p20.x_mb, p20.forward), (2, 0, true));
    }

    #[test]
    fn adjacent_logical_blocks_at_track_boundary_are_physically_close() {
        let g = SerpentineGeometry::new(4, 160);
        let m = SerpentineModel {
            geometry: g,
            ..model()
        };
        // Slots 9 and 10 straddle the track-0/1 boundary: both at the far
        // end of the tape, one track apart -> cheap locate.
        let boundary = m.locate(Some(SlotIndex(9)), SlotIndex(10), B16);
        // Slots 9 and 19: same track distance but full tape length apart.
        let far = m.locate(Some(SlotIndex(9)), SlotIndex(19), B16);
        assert!(boundary < far, "{boundary} !< {far}");
    }

    #[test]
    fn locate_costs_are_symmetric_and_zero_at_rest() {
        let m = model();
        assert_eq!(
            m.locate(Some(SlotIndex(5)), SlotIndex(5), B16),
            Micros::ZERO
        );
        let ab = m.locate(Some(SlotIndex(3)), SlotIndex(40), B16);
        let ba = m.locate(Some(SlotIndex(40)), SlotIndex(3), B16);
        assert_eq!(ab, ba);
    }

    #[test]
    fn nearest_neighbor_beats_logical_sweep_on_sparse_requests() {
        // One request at the *start* of every track. The logical sweep
        // (the paper's ordering) shuttles the full tape length between
        // every pair of tracks; the cost-model-aware order reads all the
        // near-end blocks first, shuttles once, and reads the far-end
        // blocks on the other side.
        let g = SerpentineGeometry::new(10, 160); // 10 slots of 16 MB/track
        let m = SerpentineModel {
            geometry: g,
            ..model()
        };
        let slots: Vec<SlotIndex> = (0..10).map(|t| SlotIndex(t * 10)).collect();
        let logical = m.service_time(&logical_sweep_order(slots.clone()), B16);
        let greedy = m.service_time(&nearest_neighbor_order(&m, B16, slots), B16);
        assert!(
            greedy.as_secs_f64() < 0.5 * logical.as_secs_f64(),
            "greedy {greedy} not well below logical {logical}"
        );
    }

    #[test]
    fn dense_requests_leave_little_room_for_improvement() {
        // With every slot requested, the logical snake order is already
        // near-optimal; nearest-neighbor cannot beat it by much.
        let g = SerpentineGeometry::new(4, 160);
        let m = SerpentineModel {
            geometry: g,
            ..model()
        };
        let slots: Vec<SlotIndex> = (0..g.slots(B16)).map(SlotIndex).collect();
        let logical = m.service_time(&logical_sweep_order(slots.clone()), B16);
        let greedy = m.service_time(&nearest_neighbor_order(&m, B16, slots), B16);
        assert!(greedy.as_secs_f64() > 0.8 * logical.as_secs_f64());
    }

    #[test]
    fn orders_are_permutations() {
        let m = model();
        let slots: Vec<SlotIndex> = vec![5, 100, 17, 300, 222, 8]
            .into_iter()
            .map(SlotIndex)
            .collect();
        for order in [
            logical_sweep_order(slots.clone()),
            nearest_neighbor_order(&m, B16, slots.clone()),
        ] {
            let mut a = order.clone();
            let mut b = slots.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn service_time_accumulates_reads() {
        let m = model();
        let one = m.service_time(&[SlotIndex(10)], B16);
        let two = m.service_time(&[SlotIndex(10), SlotIndex(11)], B16);
        assert!(two > one);
        assert!(two >= one + m.read_block(B16));
    }

    #[test]
    #[should_panic(expected = "beyond tape capacity")]
    fn out_of_range_slot_rejected() {
        let g = SerpentineGeometry::new(2, 160);
        g.position_of(SlotIndex(100), B16);
    }
}
