//! The tape drive and robot timing model of Section 2.1.
//!
//! For single-pass (helical-scan) tape technologies, the locate time is
//! modeled as four linear functions of the distance traversed: short and
//! long distances, in the forward and reverse directions. The constants
//! below are the paper's least-squares fit over 2130 random locates on an
//! Exabyte EXB-8505XL with 1 MB logical blocks:
//!
//! * forward locate past `k` MB: `4.834 + 0.378k` s for `k <= 28`, else
//!   `14.342 + 0.028k` s;
//! * reverse locate past `k` MB: `4.99 + 0.328k` s for `k <= 28`, else
//!   `13.74 + 0.0286k` s;
//! * locating to the physical beginning of tape costs an extra 21 s;
//! * reading `k` MB after a forward locate: `0.38 + 1.77k` s; after a
//!   reverse locate: `1.77k` s;
//! * a tape switch in the EXB-210 jukebox: 19 s eject + 20 s robot
//!   exchange + 42 s load = 81 s (plus the rewind required before eject).

use crate::time::Micros;
use crate::units::{mb_f64, BlockSize, SlotIndex};

/// Direction of tape motion, induced by the slot numbering: *up* (forward)
/// toward higher slots, *down* (reverse) toward slot 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocateDirection {
    /// Motion toward higher block positions.
    Forward,
    /// Motion toward the beginning of tape.
    Reverse,
}

/// What preceded a block read; the read startup cost depends on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadContext {
    /// The read follows a forward locate (startup `0.38` s on the EXB-8505XL).
    AfterForwardLocate,
    /// The read follows a reverse locate (no extra startup).
    AfterReverseLocate,
    /// The read continues directly after the previous block (streaming).
    Streaming,
}

/// One linear segment of the piecewise locate model: `startup + per_mb * k`
/// seconds to traverse `k` megabytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSegment {
    /// Fixed startup time in seconds.
    pub startup_s: f64,
    /// Marginal cost in seconds per megabyte traversed.
    pub per_mb_s: f64,
}

impl LinearSegment {
    /// Creates a segment.
    pub const fn new(startup_s: f64, per_mb_s: f64) -> Self {
        LinearSegment {
            startup_s,
            per_mb_s,
        }
    }

    /// Evaluates the segment at a distance of `mb` megabytes.
    #[inline]
    pub fn eval_secs(&self, mb: f64) -> f64 {
        self.startup_s + self.per_mb_s * mb
    }
}

/// The four-regime piecewise-linear locate model.
#[derive(Debug, Clone, PartialEq)]
pub struct LocateModel {
    /// Boundary (in MB) between the short- and long-distance regimes.
    pub short_threshold_mb: u64,
    /// Forward, short distance (`k <= short_threshold_mb`).
    pub fwd_short: LinearSegment,
    /// Forward, long distance.
    pub fwd_long: LinearSegment,
    /// Reverse, short distance.
    pub rev_short: LinearSegment,
    /// Reverse, long distance.
    pub rev_long: LinearSegment,
    /// Extra seconds whenever the drive locates to the physical beginning
    /// of tape (it performs overhead work on a full rewind).
    pub bot_extra_s: f64,
}

impl LocateModel {
    /// Time in seconds to locate past `mb` megabytes in direction `dir`.
    /// `to_bot` marks a locate whose target is the physical beginning of
    /// tape, which incurs the full-rewind overhead.
    pub fn locate_secs(&self, dir: LocateDirection, mb: u64, to_bot: bool) -> f64 {
        debug_assert!(mb > 0 || to_bot, "zero-distance locate has no cost");
        let seg = match (dir, mb <= self.short_threshold_mb) {
            (LocateDirection::Forward, true) => &self.fwd_short,
            (LocateDirection::Forward, false) => &self.fwd_long,
            (LocateDirection::Reverse, true) => &self.rev_short,
            (LocateDirection::Reverse, false) => &self.rev_long,
        };
        let mut t = seg.eval_secs(mb_f64(mb));
        if to_bot {
            t += self.bot_extra_s;
        }
        t
    }
}

/// Read-time model: `startup + per_mb * k` seconds to transfer `k`
/// megabytes, where the startup applies only after a forward locate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadModel {
    /// Startup in seconds when the read follows a forward locate.
    pub after_forward_startup_s: f64,
    /// Transfer time in seconds per megabyte.
    pub per_mb_s: f64,
}

impl ReadModel {
    /// Time in seconds to read `mb` megabytes in context `ctx`.
    pub fn read_secs(&self, mb: u64, ctx: ReadContext) -> f64 {
        let startup = match ctx {
            ReadContext::AfterForwardLocate => self.after_forward_startup_s,
            ReadContext::AfterReverseLocate | ReadContext::Streaming => 0.0,
        };
        startup + self.per_mb_s * mb_f64(mb)
    }

    /// The drive's streaming transfer rate in megabytes per second.
    #[inline]
    pub fn streaming_mb_per_s(&self) -> f64 {
        1.0 / self.per_mb_s
    }
}

/// A complete tape drive timing model.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveModel {
    /// Human-readable model name.
    pub name: &'static str,
    /// Piecewise locate model.
    pub locate: LocateModel,
    /// Read model.
    pub read: ReadModel,
    /// Seconds for the drive to eject a (rewound) tape.
    pub eject_s: f64,
    /// Seconds for the drive to load a tape and prepare for I/O.
    pub load_s: f64,
}

impl DriveModel {
    /// The Exabyte EXB-8505XL model with the paper's fitted constants.
    pub fn exb8505xl() -> Self {
        DriveModel {
            name: "Exabyte EXB-8505XL",
            locate: LocateModel {
                short_threshold_mb: 28,
                fwd_short: LinearSegment::new(4.834, 0.378),
                fwd_long: LinearSegment::new(14.342, 0.028),
                rev_short: LinearSegment::new(4.99, 0.328),
                rev_long: LinearSegment::new(13.74, 0.0286),
                bot_extra_s: 21.0,
            },
            read: ReadModel {
                after_forward_startup_s: 0.38,
                per_mb_s: 1.77,
            },
            eject_s: 19.0,
            load_s: 42.0,
        }
    }

    /// A hypothetical higher-performance helical-scan drive, used by the
    /// drive-sensitivity ablation. The paper states (Section 2.1) that a
    /// faster drive improves absolute numbers but does not materially alter
    /// the conclusions about scheduling, replication, and placement.
    pub fn hypothetical_fast() -> Self {
        DriveModel {
            name: "Hypothetical fast helical drive",
            locate: LocateModel {
                short_threshold_mb: 28,
                fwd_short: LinearSegment::new(1.2, 0.09),
                fwd_long: LinearSegment::new(3.6, 0.007),
                rev_short: LinearSegment::new(1.25, 0.08),
                rev_long: LinearSegment::new(3.4, 0.0072),
                bot_extra_s: 5.0,
            },
            read: ReadModel {
                after_forward_startup_s: 0.1,
                per_mb_s: 0.0625, // 16 MB/s streaming
            },
            eject_s: 5.0,
            load_s: 10.0,
        }
    }

    /// Time and direction of a locate from slot `from` to slot `to`.
    /// Returns `(Micros::ZERO, None)` when no head motion is needed.
    pub fn locate(
        &self,
        from: SlotIndex,
        to: SlotIndex,
        block: BlockSize,
    ) -> (Micros, Option<LocateDirection>) {
        if from == to {
            return (Micros::ZERO, None);
        }
        let dir = if to > from {
            LocateDirection::Forward
        } else {
            LocateDirection::Reverse
        };
        let mb = block.slots_to_mb(from.distance(to));
        let to_bot = to == SlotIndex::BOT;
        let secs = self.locate.locate_secs(dir, mb, to_bot);
        (Micros::from_secs_f64(secs), Some(dir))
    }

    /// Time to read one block in context `ctx`.
    pub fn read_block(&self, block: BlockSize, ctx: ReadContext) -> Micros {
        Micros::from_secs_f64(self.read.read_secs(block.mb_u64(), ctx))
    }

    /// Time to rewind to the beginning of tape from `head` (zero when the
    /// head is already there).
    pub fn rewind(&self, head: SlotIndex, block: BlockSize) -> Micros {
        if head == SlotIndex::BOT {
            return Micros::ZERO;
        }
        let mb = block.slots_to_mb(head.distance(SlotIndex::BOT));
        Micros::from_secs_f64(self.locate.locate_secs(LocateDirection::Reverse, mb, true))
    }

    /// Time for the drive to eject a rewound tape.
    pub fn eject(&self) -> Micros {
        Micros::from_secs_f64(self.eject_s)
    }

    /// Time for the drive to load a tape and become ready.
    pub fn load(&self) -> Micros {
        Micros::from_secs_f64(self.load_s)
    }
}

/// Timing model of the jukebox's robotic arm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobotModel {
    /// Seconds for the arm to put away the old tape and fetch the new one.
    pub exchange_s: f64,
}

impl RobotModel {
    /// The Exabyte EXB-210 robot (20 s exchange).
    pub fn exb210() -> Self {
        RobotModel { exchange_s: 20.0 }
    }

    /// A faster hypothetical robot, paired with
    /// [`DriveModel::hypothetical_fast`].
    pub fn hypothetical_fast() -> Self {
        RobotModel { exchange_s: 6.0 }
    }

    /// Time for one tape exchange.
    pub fn exchange(&self) -> Micros {
        Micros::from_secs_f64(self.exchange_s)
    }
}

/// The combined drive + robot timing model used by schedulers and the
/// simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    /// The tape drive.
    pub drive: DriveModel,
    /// The robotic arm.
    pub robot: RobotModel,
}

impl TimingModel {
    /// The paper's testbed: EXB-8505XL drive in an EXB-210 library.
    pub fn paper_default() -> Self {
        TimingModel {
            drive: DriveModel::exb8505xl(),
            robot: RobotModel::exb210(),
        }
    }

    /// A higher-performance system for the drive-sensitivity ablation.
    pub fn hypothetical_fast() -> Self {
        TimingModel {
            drive: DriveModel::hypothetical_fast(),
            robot: RobotModel::hypothetical_fast(),
        }
    }

    /// Tape switch time excluding the rewind: eject + robot exchange +
    /// load (81 s on the paper's hardware).
    pub fn switch_time(&self) -> Micros {
        self.drive.eject() + self.robot.exchange() + self.drive.load()
    }

    /// Full cost of leaving the current tape from head position `head` and
    /// becoming ready on another tape: rewind + eject + exchange + load.
    pub fn full_switch_from(&self, head: SlotIndex, block: BlockSize) -> Micros {
        self.drive.rewind(head, block) + self.switch_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> DriveModel {
        DriveModel::exb8505xl()
    }

    #[test]
    fn paper_switch_time_is_81_seconds() {
        let t = TimingModel::paper_default();
        assert_eq!(t.switch_time(), Micros::from_secs(81));
    }

    #[test]
    fn forward_short_locate_matches_fit() {
        // 10 slots of 1 MB -> k = 10 -> 4.834 + 0.378 * 10 = 8.614 s.
        let (t, dir) = paper().locate(SlotIndex(5), SlotIndex(15), BlockSize::from_mb(1));
        assert_eq!(dir, Some(LocateDirection::Forward));
        assert_eq!(t, Micros::from_secs_f64(8.614));
    }

    #[test]
    fn forward_long_locate_matches_fit() {
        // 100 MB -> 14.342 + 0.028 * 100 = 17.142 s.
        let (t, _) = paper().locate(SlotIndex(0), SlotIndex(100), BlockSize::from_mb(1));
        assert_eq!(t, Micros::from_secs_f64(17.142));
    }

    #[test]
    fn short_long_boundary_is_28_mb() {
        let m = paper().locate;
        // At exactly 28 MB the short segment applies.
        let short = m.locate_secs(LocateDirection::Forward, 28, false);
        assert!((short - (4.834 + 0.378 * 28.0)).abs() < 1e-9);
        // At 29 MB the long segment applies.
        let long = m.locate_secs(LocateDirection::Forward, 29, false);
        assert!((long - (14.342 + 0.028 * 29.0)).abs() < 1e-9);
    }

    #[test]
    fn reverse_locate_to_bot_adds_21_seconds() {
        // 50 MB reverse to slot 0: 13.74 + 0.0286*50 + 21.
        let (t, dir) = paper().locate(SlotIndex(50), SlotIndex(0), BlockSize::from_mb(1));
        assert_eq!(dir, Some(LocateDirection::Reverse));
        let expect = 13.74 + 0.0286 * 50.0 + 21.0;
        assert_eq!(t, Micros::from_secs_f64(expect));
    }

    #[test]
    fn reverse_locate_not_to_bot_has_no_rewind_overhead() {
        let (t, _) = paper().locate(SlotIndex(60), SlotIndex(10), BlockSize::from_mb(1));
        let expect = 13.74 + 0.0286 * 50.0;
        assert_eq!(t, Micros::from_secs_f64(expect));
    }

    #[test]
    fn zero_distance_locate_is_free() {
        let (t, dir) = paper().locate(SlotIndex(7), SlotIndex(7), BlockSize::from_mb(16));
        assert_eq!(t, Micros::ZERO);
        assert_eq!(dir, None);
    }

    #[test]
    fn block_size_scales_locate_distance() {
        // 2 slots of 16 MB = 32 MB -> long regime.
        let (t, _) = paper().locate(SlotIndex(0), SlotIndex(2), BlockSize::from_mb(16));
        assert_eq!(t, Micros::from_secs_f64(14.342 + 0.028 * 32.0));
    }

    #[test]
    fn read_times_match_fit() {
        let d = paper();
        let b = BlockSize::from_mb(16);
        assert_eq!(
            d.read_block(b, ReadContext::AfterForwardLocate),
            Micros::from_secs_f64(0.38 + 1.77 * 16.0)
        );
        assert_eq!(
            d.read_block(b, ReadContext::AfterReverseLocate),
            Micros::from_secs_f64(1.77 * 16.0)
        );
        assert_eq!(
            d.read_block(b, ReadContext::Streaming),
            Micros::from_secs_f64(1.77 * 16.0)
        );
    }

    #[test]
    fn rewind_from_bot_is_free() {
        assert_eq!(
            paper().rewind(SlotIndex::BOT, BlockSize::from_mb(16)),
            Micros::ZERO
        );
    }

    #[test]
    fn rewind_includes_bot_overhead() {
        let d = paper();
        let t = d.rewind(SlotIndex(100), BlockSize::from_mb(1));
        assert_eq!(t, Micros::from_secs_f64(13.74 + 0.0286 * 100.0 + 21.0));
    }

    #[test]
    fn full_switch_is_rewind_plus_81s() {
        let t = TimingModel::paper_default();
        let b = BlockSize::from_mb(1);
        let expect = t.drive.rewind(SlotIndex(40), b) + Micros::from_secs(81);
        assert_eq!(t.full_switch_from(SlotIndex(40), b), expect);
        assert_eq!(t.full_switch_from(SlotIndex::BOT, b), Micros::from_secs(81));
    }

    #[test]
    fn streaming_rate_of_paper_drive() {
        let r = paper().read.streaming_mb_per_s();
        assert!((r - 1.0 / 1.77).abs() < 1e-12);
    }

    #[test]
    fn fast_drive_is_faster_everywhere() {
        let slow = DriveModel::exb8505xl();
        let fast = DriveModel::hypothetical_fast();
        let b = BlockSize::from_mb(16);
        for (from, to) in [(0u32, 5u32), (5, 0), (0, 400), (400, 10)] {
            let (ts, _) = slow.locate(SlotIndex(from), SlotIndex(to), b);
            let (tf, _) = fast.locate(SlotIndex(from), SlotIndex(to), b);
            assert!(tf < ts, "fast drive slower for {from}->{to}");
        }
        assert!(
            fast.read_block(b, ReadContext::Streaming) < slow.read_block(b, ReadContext::Streaming)
        );
    }
}
