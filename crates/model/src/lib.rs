//! # tapesim-model
//!
//! The tape and jukebox performance model of *Scheduling and Data
//! Replication to Improve Tape Jukebox Performance* (Hillyer, Rastogi,
//! Silberschatz; ICDE 1999), Section 2.
//!
//! This crate provides:
//!
//! * integer simulation time ([`Micros`], [`SimTime`]);
//! * tape addressing and jukebox geometry ([`TapeId`], [`SlotIndex`],
//!   [`BlockSize`], [`JukeboxGeometry`]);
//! * the calibrated Exabyte EXB-8505XL / EXB-210 timing model
//!   ([`DriveModel`], [`RobotModel`], [`TimingModel`]) with the paper's
//!   four-regime piecewise-linear locate function, read model, rewind
//!   overhead, and tape-switch decomposition;
//! * a synthetic measurement source ([`synth`]) standing in for the
//!   physical drive, and the Section 2.1 random-walk validation
//!   ([`validate`]).
//!
//! The primary model assumes single-pass (helical-scan) tape technology,
//! as in the paper: the drive can read an entire tape in one forward pass
//! and must rewind a tape before ejecting it. The [`serpentine`] module
//! additionally models the multi-track formats the paper scopes out
//! (Travan/DLT/3590-style), for the single-tape scheduling comparison in
//! the `ext_serpentine` experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drive;
pub mod faults;
pub mod serpentine;
pub mod synth;
pub mod time;
pub mod topology;
pub mod units;
pub mod validate;

pub use drive::{
    DriveModel, LinearSegment, LocateDirection, LocateModel, ReadContext, ReadModel, RobotModel,
    TimingModel,
};
pub use faults::{
    substream, DriveFaultSnapshot, FaultConfig, FaultInjector, FaultSnapshot, TapeFaultSnapshot,
};
pub use serpentine::{
    logical_sweep_order, nearest_neighbor_order, SerpentineGeometry, SerpentineModel, SerpentinePos,
};
pub use time::{Micros, SimTime};
pub use topology::{InterLibraryModel, LibraryTopo, Topology, TopologyError};
pub use units::{BlockSize, JukeboxGeometry, PhysicalAddr, SlotIndex, TapeId};
pub use validate::{validate_model, ValidationConfig, ValidationReport, WalkError};
