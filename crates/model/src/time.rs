//! Integer time types used throughout the simulator.
//!
//! The simulator is fully deterministic, so all bookkeeping is done in
//! integer microseconds. The drive model's fitted coefficients (Section 2.1
//! of the paper) are expressed in floating-point seconds; they are converted
//! to [`Micros`] exactly once, at cost-evaluation time, with
//! [`Micros::from_secs_f64`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A non-negative duration in integer microseconds.
///
/// Construct from seconds with [`Micros::from_secs_f64`] or from raw
/// microseconds with [`Micros::from_micros`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Micros(u64);

impl Micros {
    /// The zero duration.
    pub const ZERO: Micros = Micros(0);

    /// One second.
    pub const SECOND: Micros = Micros(1_000_000);

    /// Creates a duration from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Micros(us)
    }

    /// Creates a duration from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Micros(s * 1_000_000)
    }

    /// Creates a duration from floating-point seconds, rounding to the
    /// nearest microsecond. Negative inputs saturate to zero (the fitted
    /// timing model can only produce non-negative times, but a defensive
    /// clamp keeps arithmetic total).
    #[inline]
    #[allow(clippy::cast_possible_truncation)] // rounded non-negative micros fit u64
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return Micros(0);
        }
        Micros((s * 1e6).round() as u64)
    }

    /// The duration as raw microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration as floating-point seconds.
    #[inline]
    #[allow(clippy::cast_precision_loss)] // micros below 2^53 for any sim horizon
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }

    /// The duration in whole-and-fractional minutes.
    #[inline]
    pub fn as_minutes_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// The duration in whole-and-fractional hours.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Sustained bandwidth in bytes per second when `bytes` are moved in
    /// this duration.
    ///
    /// The schedulers break ties on this quantity, so the exact `f64`
    /// operation order (`bytes as f64`, then one division) is part of the
    /// deterministic-replay contract — do not reassociate it.
    #[inline]
    #[allow(clippy::cast_precision_loss)] // exact below 2^53 bytes
    pub fn bytes_per_sec(self, bytes: u64) -> f64 {
        bytes as f64 / self.as_secs_f64()
    }

    /// This duration as a fraction of `total` (e.g. a phase's share of a
    /// run). The caller is responsible for `total` being non-zero.
    #[inline]
    #[allow(clippy::cast_precision_loss)] // micros below 2^53 for any sim horizon
    pub fn frac_of(self, total: Micros) -> f64 {
        self.0 as f64 / total.0 as f64
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Micros {
    type Output = Micros;
    #[inline]
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    #[inline]
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    #[inline]
    fn sub(self, rhs: Micros) -> Micros {
        Micros(
            self.0
                .checked_sub(rhs.0)
                // simlint: allow(panic, time never runs backwards in the simulator; use saturating_sub where underflow is a legal outcome)
                .expect("Micros subtraction underflow"),
        )
    }
}

impl SubAssign for Micros {
    #[inline]
    fn sub_assign(&mut self, rhs: Micros) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Micros {
    type Output = Micros;
    #[inline]
    fn mul(self, rhs: u64) -> Micros {
        Micros(self.0 * rhs)
    }
}

impl Div<u64> for Micros {
    type Output = Micros;
    #[inline]
    fn div(self, rhs: u64) -> Micros {
        Micros(self.0 / rhs)
    }
}

impl Sum for Micros {
    fn sum<I: Iterator<Item = Micros>>(iter: I) -> Micros {
        iter.fold(Micros::ZERO, Add::add)
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw microseconds since simulation start.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from integer seconds since simulation start.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// The instant as raw microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The instant as floating-point seconds since simulation start.
    #[inline]
    #[allow(clippy::cast_precision_loss)] // micros below 2^53 for any sim horizon
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since an earlier instant.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is after `self`.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> Micros {
        debug_assert!(earlier <= self, "duration_since: earlier > self");
        Micros(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Micros> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Micros) -> SimTime {
        SimTime(self.0 + rhs.as_micros())
    }
}

impl AddAssign<Micros> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.as_micros();
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_secs_f64_rounds_to_microsecond() {
        assert_eq!(Micros::from_secs_f64(1.0).as_micros(), 1_000_000);
        assert_eq!(Micros::from_secs_f64(0.0000004).as_micros(), 0);
        assert_eq!(Micros::from_secs_f64(0.0000006).as_micros(), 1);
        assert_eq!(Micros::from_secs_f64(4.834).as_micros(), 4_834_000);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(Micros::from_secs_f64(-3.0), Micros::ZERO);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = Micros::from_secs(3);
        let b = Micros::from_micros(500_000);
        assert_eq!((a + b).as_secs_f64(), 3.5);
        assert_eq!((a - b).as_micros(), 2_500_000);
        assert_eq!((b * 4).as_micros(), 2_000_000);
        assert_eq!((a / 2).as_micros(), 1_500_000);
    }

    #[test]
    fn saturating_sub_does_not_underflow() {
        let a = Micros::from_micros(5);
        let b = Micros::from_micros(7);
        assert_eq!(a.saturating_sub(b), Micros::ZERO);
        assert_eq!(b.saturating_sub(a), Micros::from_micros(2));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn checked_sub_panics_on_underflow() {
        let _ = Micros::from_micros(1) - Micros::from_micros(2);
    }

    #[test]
    fn simtime_advances() {
        let mut t = SimTime::ZERO;
        t += Micros::from_secs(10);
        assert_eq!(t, SimTime::from_secs(10));
        assert_eq!(
            t.duration_since(SimTime::from_secs(4)),
            Micros::from_secs(6)
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: Micros = (1..=4).map(Micros::from_secs).sum();
        assert_eq!(total, Micros::from_secs(10));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(Micros::from_secs_f64(1.5).to_string(), "1.500s");
        assert_eq!(SimTime::from_secs(2).to_string(), "t=2.000s");
    }
}
