//! Random-walk validation of the timing model (Section 2.1).
//!
//! The paper validates its locate and read models "by comparing predictions
//! with measurements in ten random walks on the tape, each random walk
//! consisting of 100 locates and reads", and reports the largest and mean
//! percentage error of the total predicted times. This module reproduces
//! that experiment against the synthetic measurement source of
//! [`crate::synth`].
#![allow(clippy::cast_precision_loss)] // sample counts stay far below 2^53

use crate::drive::DriveModel;
use crate::synth::{synthesize_random_walk, NoiseModel};
use crate::units::BlockSize;

/// Per-walk relative errors of the model's total-time predictions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkError {
    /// |predicted - measured| / measured for the total locate time.
    pub locate_rel_err: f64,
    /// |predicted - measured| / measured for the total read time.
    pub read_rel_err: f64,
}

/// Aggregate validation report over a set of random walks, in the shape of
/// the Section 2.1 table: largest and mean percentage error for locate and
/// read totals.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Per-walk errors.
    pub walks: Vec<WalkError>,
    /// Largest locate error (fraction, not percent).
    pub max_locate_rel_err: f64,
    /// Mean locate error.
    pub mean_locate_rel_err: f64,
    /// Largest read error.
    pub max_read_rel_err: f64,
    /// Mean read error.
    pub mean_read_rel_err: f64,
}

/// Configuration for a validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationConfig {
    /// Number of random walks (paper: 10).
    pub walks: usize,
    /// Locate + read operations per walk (paper: 100).
    pub steps_per_walk: usize,
    /// Logical block size (paper's Figure 1 uses 1 MB).
    pub block: BlockSize,
    /// Slots per tape for the walk (paper tape: 7 GB).
    pub slots_per_tape: u32,
    /// Measurement noise on locates.
    pub locate_noise: NoiseModel,
    /// Measurement noise on reads.
    pub read_noise: NoiseModel,
    /// Base RNG seed; each walk uses `seed + walk_index`.
    pub seed: u64,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            walks: 10,
            steps_per_walk: 100,
            block: BlockSize::from_mb(1),
            slots_per_tape: 7 * 1024,
            locate_noise: NoiseModel::locate_default(),
            read_noise: NoiseModel::read_default(),
            seed: 0x1CDE_1999,
        }
    }
}

/// Runs the random-walk validation and aggregates the errors.
pub fn validate_model(drive: &DriveModel, cfg: &ValidationConfig) -> ValidationReport {
    assert!(cfg.walks > 0, "need at least one walk");
    let walks: Vec<WalkError> = (0..cfg.walks)
        .map(|i| {
            let walk = synthesize_random_walk(
                drive,
                cfg.block,
                cfg.slots_per_tape,
                cfg.steps_per_walk,
                cfg.locate_noise,
                cfg.read_noise,
                cfg.seed + i as u64,
            );
            WalkError {
                locate_rel_err: rel_err(walk.predicted_locate_s(), walk.measured_locate_s()),
                read_rel_err: rel_err(walk.predicted_read_s(), walk.measured_read_s()),
            }
        })
        .collect();
    let n = walks.len() as f64;
    ValidationReport {
        max_locate_rel_err: walks.iter().map(|w| w.locate_rel_err).fold(0.0, f64::max),
        mean_locate_rel_err: walks.iter().map(|w| w.locate_rel_err).sum::<f64>() / n,
        max_read_rel_err: walks.iter().map(|w| w.read_rel_err).fold(0.0, f64::max),
        mean_read_rel_err: walks.iter().map(|w| w.read_rel_err).sum::<f64>() / n,
        walks,
    }
}

fn rel_err(predicted: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        return if predicted == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (predicted - measured).abs() / measured
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_validates_perfectly() {
        let cfg = ValidationConfig {
            locate_noise: NoiseModel::none(),
            read_noise: NoiseModel::none(),
            ..ValidationConfig::default()
        };
        let report = validate_model(&DriveModel::exb8505xl(), &cfg);
        assert_eq!(report.walks.len(), 10);
        assert_eq!(report.max_locate_rel_err, 0.0);
        assert_eq!(report.max_read_rel_err, 0.0);
    }

    #[test]
    fn default_noise_errors_match_paper_magnitudes() {
        // Paper: largest locate error 0.6 %, mean 0.5 %; largest read error
        // 4.6 %, mean 2.6 %. With our default noise the aggregate errors
        // must land in the same order of magnitude (sub-2 % locate,
        // sub-10 % read).
        let report = validate_model(&DriveModel::exb8505xl(), &ValidationConfig::default());
        assert!(
            report.max_locate_rel_err < 0.02,
            "locate err {}",
            report.max_locate_rel_err
        );
        assert!(report.mean_locate_rel_err <= report.max_locate_rel_err);
        assert!(
            report.max_read_rel_err < 0.10,
            "read err {}",
            report.max_read_rel_err
        );
        assert!(report.mean_read_rel_err <= report.max_read_rel_err);
        assert!(report.mean_read_rel_err > 0.0);
    }

    #[test]
    fn validation_is_deterministic() {
        let cfg = ValidationConfig::default();
        let a = validate_model(&DriveModel::exb8505xl(), &cfg);
        let b = validate_model(&DriveModel::exb8505xl(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn rel_err_handles_zero_denominator() {
        assert_eq!(rel_err(0.0, 0.0), 0.0);
        assert!(rel_err(1.0, 0.0).is_infinite());
        assert!((rel_err(11.0, 10.0) - 0.1).abs() < 1e-12);
    }
}
