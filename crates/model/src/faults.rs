//! Deterministic fault injection for the jukebox simulator.
//!
//! The paper's central claim is that block replication buys *availability*
//! as well as response time: when a tape fails, a request whose block has a
//! copy on another tape can still be served. This module provides the fault
//! model that lets the simulator demonstrate that claim:
//!
//! * **media errors** — an individual physical read fails with a small
//!   per-read probability; after a bounded number of retries the copy is
//!   declared bad and the request must fail over to a replica;
//! * **load/eject failures** — a tape exchange fails with a small
//!   probability; after a bounded number of retries the tape itself is
//!   declared failed;
//! * **whole-tape failures** — a tape spontaneously fails with a
//!   configurable mean time between failures (MTBF) and is repaired after
//!   a configurable mean time to repair (MTTR), or never if repairs are
//!   disabled (a permanently lost tape);
//! * **whole-drive failures** — the drive is taken out of service for a
//!   fixed repair interval at exponentially distributed failure times.
//!
//! Every stochastic draw comes from a dedicated [SplitMix64] substream
//! derived from a single top-level `u64` seed via [`substream`], so a run
//! is exactly reproducible from its seed, and enabling one fault class
//! never perturbs the draws of another. An inert configuration
//! ([`FaultConfig::NONE`]) consumes no random numbers at all, which keeps
//! fault-free runs bit-for-bit identical to a simulator without this
//! module.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
#![allow(clippy::cast_precision_loss)] // SplitMix64 bit tricks use the top 53 bits, exact by construction
#![allow(clippy::cast_possible_truncation)] // tape indices fit u16 by geometry construction

use std::collections::{BTreeMap, BTreeSet};

use crate::time::{Micros, SimTime};
use crate::units::{JukeboxGeometry, PhysicalAddr, TapeId};

/// Derives a decorrelated child seed from a top-level seed and a stream
/// offset, using the SplitMix64 output mix. Distinct offsets give
/// statistically independent streams, so every stochastic component of a
/// run can be driven from one user-visible seed without sharing state.
#[inline]
pub const fn substream(seed: u64, offset: u64) -> u64 {
    let mut z = seed ^ offset.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stream offsets for the fault injector's substreams. Offsets below
/// `0x100` are reserved for non-fault components (the workload factory
/// uses the top-level seed directly).
mod stream {
    pub const MEDIA: u64 = 0x101;
    pub const LOAD: u64 = 0x102;
    pub const HEAL: u64 = 0x103;
    pub const TAPE_BASE: u64 = 0x1000;
    pub const DRIVE_BASE: u64 = 0x2000;
}

/// Knobs for the fault model. All classes default to *off*; the zero
/// value ([`FaultConfig::NONE`]) injects nothing and draws nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a single physical read attempt fails with a media
    /// error. Must be in `[0, 1)`.
    pub media_error_per_read: f64,
    /// Extra read attempts after a media error before the copy is
    /// declared bad (so a copy is given `media_retries + 1` attempts).
    pub media_retries: u32,
    /// Probability that a single tape load attempt fails. Must be in
    /// `[0, 1)`.
    pub load_failure_p: f64,
    /// Extra load attempts after a load failure before the tape is
    /// declared failed.
    pub load_retries: u32,
    /// Mean time between spontaneous whole-tape failures (exponentially
    /// distributed, independently per tape). `None` disables spontaneous
    /// tape failures.
    pub tape_mtbf: Option<Micros>,
    /// Mean time to repair a failed tape (exponentially distributed).
    /// `None` makes every tape failure permanent: the tape and all copies
    /// on it are lost for the rest of the run.
    pub tape_mttr: Option<Micros>,
    /// Mean time between whole-drive failures (exponentially
    /// distributed, independently per drive). `None` disables drive
    /// failures.
    pub drive_mtbf: Option<Micros>,
    /// Fixed repair interval for a failed drive.
    pub drive_mttr: Micros,
    /// Mean time for a copy lost to media errors to *heal* (exponentially
    /// distributed per loss): the loss is transient — dirt on the tape
    /// path, a recoverable servo fault — rather than permanent damage.
    /// While a copy is healing its requests wait (or fail over to a
    /// replica) instead of failing permanently. `None` (the default)
    /// keeps the original semantics: a lost copy is lost for the rest of
    /// the run.
    pub copy_heal_mttr: Option<Micros>,
}

impl FaultConfig {
    /// The inert configuration: no faults of any kind.
    pub const NONE: FaultConfig = FaultConfig {
        media_error_per_read: 0.0,
        media_retries: 0,
        load_failure_p: 0.0,
        load_retries: 0,
        tape_mtbf: None,
        tape_mttr: None,
        drive_mtbf: None,
        drive_mttr: Micros::ZERO,
        copy_heal_mttr: None,
    };

    /// True if this configuration injects no faults at all. An inert
    /// injector consumes no random numbers and schedules no events, so a
    /// run with `FaultConfig::NONE` is identical to one without fault
    /// injection.
    pub fn is_inert(&self) -> bool {
        self.media_error_per_read <= 0.0
            && self.load_failure_p <= 0.0
            && self.tape_mtbf.is_none()
            && self.drive_mtbf.is_none()
    }

    /// Validates the probability knobs. Probabilities of exactly 1.0 are
    /// rejected because they would livelock the retry loops.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !(0.0..1.0).contains(&self.media_error_per_read) {
            return Err("media_error_per_read must be in [0, 1)");
        }
        if !(0.0..1.0).contains(&self.load_failure_p) {
            return Err("load_failure_p must be in [0, 1)");
        }
        if matches!(self.tape_mtbf, Some(m) if m.is_zero()) {
            return Err("tape_mtbf must be positive");
        }
        if matches!(self.tape_mttr, Some(m) if m.is_zero()) {
            return Err("tape_mttr must be positive");
        }
        if matches!(self.drive_mtbf, Some(m) if m.is_zero()) {
            return Err("drive_mtbf must be positive");
        }
        if matches!(self.copy_heal_mttr, Some(m) if m.is_zero()) {
            return Err("copy_heal_mttr must be positive");
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::NONE
    }
}

/// A SplitMix64 generator; one per fault substream. The same algorithm is
/// used regardless of the workspace's external RNG dependency so that
/// fault schedules are reproducible across toolchains.
#[derive(Debug, Clone)]
struct FaultRng {
    state: u64,
}

impl FaultRng {
    fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw. Always consumes exactly one value when `p > 0`.
    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed duration with the given mean, clamped to
    /// at least one microsecond so events always make progress.
    fn exp(&mut self, mean: Micros) -> Micros {
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        let d = Micros::from_secs_f64(-u.ln() * mean.as_secs_f64());
        if d.is_zero() {
            Micros::from_micros(1)
        } else {
            d
        }
    }
}

#[derive(Debug, Clone)]
struct TapeState {
    rng: FaultRng,
    online: bool,
    /// Time of the next state change (failure if online, repair
    /// completion if offline). `None` means no further changes.
    next_change: Option<SimTime>,
    /// When the current outage began (meaningful while offline).
    offline_since: SimTime,
    /// Completed downtime so far (open outages are added on query).
    downtime: Micros,
    /// True once the tape has failed with repairs disabled.
    permanent: bool,
}

#[derive(Debug, Clone)]
struct DriveState {
    rng: FaultRng,
    next_fail: Option<SimTime>,
}

/// Deterministic, seeded source of fault events for one simulation run.
///
/// The injector owns all fault state: which tapes are currently offline,
/// which individual copies have been lost to media errors, accumulated
/// per-tape downtime, and the running total of time spent in degraded
/// mode (at least one tape offline). The simulation engines drive it by
/// calling [`FaultInjector::advance`] whenever simulated time moves, and
/// query it at each decision point.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    active: bool,
    media_rng: FaultRng,
    load_rng: FaultRng,
    tapes: Vec<TapeState>,
    drives: Vec<DriveState>,
    /// Sorted list of currently offline tapes, handed to schedulers.
    offline: Vec<TapeId>,
    now: SimTime,
    degraded_since: Option<SimTime>,
    degraded: Micros,
    bad_copies: BTreeSet<(TapeId, u32)>,
    /// Copies transiently lost to media errors, with their heal instants
    /// (only populated when [`FaultConfig::copy_heal_mttr`] is set).
    healing: BTreeMap<(TapeId, u32), SimTime>,
    heal_rng: FaultRng,
    media_errors: u64,
    permanent_damage: bool,
}

impl FaultInjector {
    /// Creates an injector for a jukebox with the given geometry and
    /// number of drives, deriving every substream from `seed`.
    pub fn new(cfg: FaultConfig, geometry: &JukeboxGeometry, drives: usize, seed: u64) -> Self {
        let active = !cfg.is_inert();
        let tapes = (0..geometry.tapes)
            .map(|t| {
                let mut rng = FaultRng::new(substream(seed, stream::TAPE_BASE + t as u64));
                let next_change = if active {
                    cfg.tape_mtbf.map(|mtbf| SimTime::ZERO + rng.exp(mtbf))
                } else {
                    None
                };
                TapeState {
                    rng,
                    online: true,
                    next_change,
                    offline_since: SimTime::ZERO,
                    downtime: Micros::ZERO,
                    permanent: false,
                }
            })
            .collect();
        let drive_states = (0..drives)
            .map(|d| {
                let mut rng = FaultRng::new(substream(seed, stream::DRIVE_BASE + d as u64));
                let next_fail = if active {
                    cfg.drive_mtbf.map(|mtbf| SimTime::ZERO + rng.exp(mtbf))
                } else {
                    None
                };
                DriveState { rng, next_fail }
            })
            .collect();
        FaultInjector {
            cfg,
            active,
            media_rng: FaultRng::new(substream(seed, stream::MEDIA)),
            load_rng: FaultRng::new(substream(seed, stream::LOAD)),
            tapes,
            drives: drive_states,
            offline: Vec::new(),
            now: SimTime::ZERO,
            degraded_since: None,
            degraded: Micros::ZERO,
            bad_copies: BTreeSet::new(),
            healing: BTreeMap::new(),
            heal_rng: FaultRng::new(substream(seed, stream::HEAL)),
            media_errors: 0,
            permanent_damage: false,
        }
    }

    /// Creates an inert injector that never injects anything. Useful as
    /// the default in entry points that thread an injector through.
    pub fn inert(geometry: &JukeboxGeometry) -> Self {
        FaultInjector::new(FaultConfig::NONE, geometry, 1, 0)
    }

    /// The configuration this injector was built with.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True if any fault class is enabled. Engines use this to skip the
    /// fault bookkeeping entirely on the fault-free fast path.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Processes all tape failure/repair events up to and including
    /// `now`, in global chronological order, updating the offline set and
    /// the downtime/degraded accounting.
    pub fn advance(&mut self, now: SimTime) {
        if !self.active {
            return;
        }
        loop {
            let due = self
                .tapes
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.next_change.map(|t| (t, i)))
                .filter(|&(t, _)| t <= now)
                .min();
            let Some((at, idx)) = due else { break };
            self.toggle_tape(idx, at);
        }
        // Tie-break: a copy whose heal instant equals the current event
        // time is already healed — heals are processed *inclusively*, so
        // a mount or read at exactly the heal boundary sees the copy
        // alive again.
        if !self.healing.is_empty() {
            self.healing.retain(|_, &mut heal_at| heal_at > now);
        }
        if now > self.now {
            self.now = now;
        }
    }

    fn toggle_tape(&mut self, idx: usize, at: SimTime) {
        let tape = TapeId(idx as u16);
        let state = &mut self.tapes[idx];
        if state.online {
            // Failure.
            state.online = false;
            state.offline_since = at;
            match self.cfg.tape_mttr {
                Some(mttr) => state.next_change = Some(at + state.rng.exp(mttr)),
                None => {
                    state.next_change = None;
                    state.permanent = true;
                    self.permanent_damage = true;
                }
            }
            if let Err(pos) = self.offline.binary_search(&tape) {
                self.offline.insert(pos, tape);
            }
            if self.degraded_since.is_none() {
                self.degraded_since = Some(at);
            }
        } else {
            // Repair completion.
            state.online = true;
            state.downtime += at.duration_since(state.offline_since);
            state.next_change = self.cfg.tape_mtbf.map(|mtbf| at + state.rng.exp(mtbf));
            if let Ok(pos) = self.offline.binary_search(&tape) {
                self.offline.remove(pos);
            }
            if self.offline.is_empty() {
                if let Some(since) = self.degraded_since.take() {
                    self.degraded += at.duration_since(since);
                }
            }
        }
    }

    /// Forces a tape failure at `now` (used when load retries are
    /// exhausted). Schedules a repair per the configured tape MTTR, or
    /// marks the tape permanently lost if repairs are disabled. No-op if
    /// the tape is already offline.
    pub fn force_tape_failure(&mut self, tape: TapeId, now: SimTime) {
        let idx = tape.index();
        if !self.tapes[idx].online {
            return;
        }
        self.tapes[idx].next_change = Some(now);
        self.toggle_tape(idx, now);
    }

    /// The sorted set of currently offline tapes, as of the last
    /// [`FaultInjector::advance`].
    pub fn offline(&self) -> &[TapeId] {
        &self.offline
    }

    /// True if the given tape is currently offline.
    pub fn is_offline(&self, tape: TapeId) -> bool {
        self.offline.binary_search(&tape).is_ok()
    }

    /// True if the copy at `addr` is unreadable right now: its tape
    /// failed permanently, it was declared bad for the rest of the run,
    /// or it is transiently lost and still healing (as of the last
    /// [`FaultInjector::advance`]).
    pub fn copy_dead(&self, addr: PhysicalAddr) -> bool {
        self.tapes[addr.tape.index()].permanent
            || self.bad_copies.contains(&(addr.tape, addr.slot.0))
            || self.healing.contains_key(&(addr.tape, addr.slot.0))
    }

    /// True if the copy at `addr` can *never* be read again: its tape
    /// failed permanently or the copy was irrecoverably lost. A healing
    /// copy is dead now but not lost forever — its requests should wait
    /// (or fail over) rather than fail. Identical to
    /// [`FaultInjector::copy_dead`] when healing is disabled.
    pub fn copy_lost_forever(&self, addr: PhysicalAddr) -> bool {
        self.tapes[addr.tape.index()].permanent
            || self.bad_copies.contains(&(addr.tape, addr.slot.0))
    }

    /// Declares the copy at `addr` lost at instant `at` after its
    /// media-error retries were exhausted. With
    /// [`FaultConfig::copy_heal_mttr`] set the loss is transient: a heal
    /// instant is drawn from the heal substream and the copy revives when
    /// [`FaultInjector::advance`] passes it. Otherwise the copy is bad
    /// for the rest of the run and counts as permanent damage.
    pub fn mark_bad_copy(&mut self, addr: PhysicalAddr, at: SimTime) {
        match self.cfg.copy_heal_mttr {
            Some(mttr) => {
                let heal_at = at + self.heal_rng.exp(mttr);
                self.healing.insert((addr.tape, addr.slot.0), heal_at);
            }
            None => {
                self.bad_copies.insert((addr.tape, addr.slot.0));
                self.permanent_damage = true;
            }
        }
    }

    /// True once any copy or tape has been permanently lost. While false,
    /// no pending request can be unserviceable forever, so engines skip
    /// the unrecoverable-request scan.
    pub fn has_permanent_damage(&self) -> bool {
        self.permanent_damage
    }

    /// Draws whether a single physical read attempt fails with a media
    /// error. Consumes one random value only when media errors are
    /// enabled.
    pub fn media_error(&mut self) -> bool {
        if self.cfg.media_error_per_read <= 0.0 {
            return false;
        }
        let hit = self.media_rng.chance(self.cfg.media_error_per_read);
        if hit {
            self.media_errors += 1;
        }
        hit
    }

    /// Total media errors drawn so far.
    pub fn media_errors(&self) -> u64 {
        self.media_errors
    }

    /// Draws whether a single tape load attempt fails. Consumes one
    /// random value only when load failures are enabled.
    pub fn load_fails(&mut self) -> bool {
        if self.cfg.load_failure_p <= 0.0 {
            return false;
        }
        self.load_rng.chance(self.cfg.load_failure_p)
    }

    /// If drive `drive` has a failure due at or before `now`, returns the
    /// fixed repair duration and schedules the next failure after the
    /// repair completes. At most one outage is reported per call.
    pub fn drive_outage(&mut self, drive: usize, now: SimTime) -> Option<Micros> {
        let state = self.drives.get_mut(drive)?;
        let due = state.next_fail.filter(|&t| t <= now)?;
        let repair_end = due.max(now) + self.cfg.drive_mttr;
        state.next_fail = self
            .cfg
            .drive_mtbf
            .map(|mtbf| repair_end + state.rng.exp(mtbf));
        Some(self.cfg.drive_mttr)
    }

    /// The next scheduled tape failure/repair or copy-heal event after
    /// `now`, if any. Engines use this to bound idle waits so that a
    /// repaired tape or healed copy (with pending requests) wakes the
    /// simulation.
    pub fn next_event(&self, now: SimTime) -> Option<SimTime> {
        let tape = self
            .tapes
            .iter()
            .filter_map(|s| s.next_change)
            .filter(|&t| t > now)
            .min();
        let heal = self.healing.values().copied().filter(|&t| t > now).min();
        match (tape, heal) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Total downtime per tape up to `end`, including outages still open
    /// at `end`. Call after `advance(end)`.
    pub fn tape_downtime(&self, end: SimTime) -> Vec<Micros> {
        self.tapes
            .iter()
            .map(|s| {
                let open = if s.online {
                    Micros::ZERO
                } else {
                    end.duration_since(s.offline_since)
                };
                s.downtime + open
            })
            .collect()
    }

    /// Total time with at least one tape offline, up to `end`, including
    /// a degraded interval still open at `end`. Call after
    /// `advance(end)`.
    pub fn degraded_time(&self, end: SimTime) -> Micros {
        let open = match self.degraded_since {
            Some(since) => end.duration_since(since),
            None => Micros::ZERO,
        };
        self.degraded + open
    }

    /// Captures the injector's complete mutable state (RNG positions,
    /// per-tape/drive timers, downtime accounting, bad-copy set) for a
    /// checkpoint. The configuration and substream seeds are *not* part
    /// of the snapshot; a restore target must be constructed with the
    /// same [`FaultConfig`], geometry, drive count, and seed.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            media_rng: self.media_rng.state,
            load_rng: self.load_rng.state,
            now_us: self.now.as_micros(),
            degraded_since_us: self.degraded_since.map(SimTime::as_micros),
            degraded_us: self.degraded.as_micros(),
            media_errors: self.media_errors,
            permanent_damage: self.permanent_damage,
            tapes: self
                .tapes
                .iter()
                .map(|t| TapeFaultSnapshot {
                    rng: t.rng.state,
                    online: t.online,
                    next_change_us: t.next_change.map(SimTime::as_micros),
                    offline_since_us: t.offline_since.as_micros(),
                    downtime_us: t.downtime.as_micros(),
                    permanent: t.permanent,
                })
                .collect(),
            drives: self
                .drives
                .iter()
                .map(|d| DriveFaultSnapshot {
                    rng: d.rng.state,
                    next_fail_us: d.next_fail.map(SimTime::as_micros),
                })
                .collect(),
            bad_copies: self
                .bad_copies
                .iter()
                .map(|&(tape, slot)| (tape.0, slot))
                .collect(),
            heal_rng: self.heal_rng.state,
            healing: self
                .healing
                .iter()
                .map(|(&(tape, slot), &at)| (tape.0, slot, at.as_micros()))
                .collect(),
        }
    }

    /// Restores state captured by [`FaultInjector::snapshot`] into an
    /// injector freshly constructed with the same configuration. The
    /// offline set is rebuilt from the per-tape online flags. Errors if
    /// the tape or drive counts disagree with this injector's geometry.
    pub fn restore(&mut self, snap: &FaultSnapshot) -> Result<(), &'static str> {
        if snap.tapes.len() != self.tapes.len() {
            return Err("fault snapshot tape count does not match geometry");
        }
        if snap.drives.len() != self.drives.len() {
            return Err("fault snapshot drive count does not match configuration");
        }
        self.media_rng.state = snap.media_rng;
        self.load_rng.state = snap.load_rng;
        self.now = SimTime::from_micros(snap.now_us);
        self.degraded_since = snap.degraded_since_us.map(SimTime::from_micros);
        self.degraded = Micros::from_micros(snap.degraded_us);
        self.media_errors = snap.media_errors;
        self.permanent_damage = snap.permanent_damage;
        for (state, s) in self.tapes.iter_mut().zip(&snap.tapes) {
            state.rng.state = s.rng;
            state.online = s.online;
            state.next_change = s.next_change_us.map(SimTime::from_micros);
            state.offline_since = SimTime::from_micros(s.offline_since_us);
            state.downtime = Micros::from_micros(s.downtime_us);
            state.permanent = s.permanent;
        }
        for (state, s) in self.drives.iter_mut().zip(&snap.drives) {
            state.rng.state = s.rng;
            state.next_fail = s.next_fail_us.map(SimTime::from_micros);
        }
        self.offline = self
            .tapes
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.online)
            .map(|(i, _)| TapeId(i as u16))
            .collect();
        self.bad_copies = snap
            .bad_copies
            .iter()
            .map(|&(tape, slot)| (TapeId(tape), slot))
            .collect();
        self.heal_rng.state = snap.heal_rng;
        self.healing = snap
            .healing
            .iter()
            .map(|&(tape, slot, at_us)| ((TapeId(tape), slot), SimTime::from_micros(at_us)))
            .collect();
        Ok(())
    }
}

/// Serializable snapshot of one tape's fault state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeFaultSnapshot {
    /// SplitMix64 state of the tape's failure/repair stream.
    pub rng: u64,
    /// Whether the tape is currently online.
    pub online: bool,
    /// Time of the next failure/repair event, in microseconds.
    pub next_change_us: Option<u64>,
    /// Start of the current outage, in microseconds (meaningful offline).
    pub offline_since_us: u64,
    /// Completed downtime so far, in microseconds.
    pub downtime_us: u64,
    /// True once failed with repairs disabled.
    pub permanent: bool,
}

/// Serializable snapshot of one drive's fault state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriveFaultSnapshot {
    /// SplitMix64 state of the drive's failure stream.
    pub rng: u64,
    /// Time of the next drive failure, in microseconds.
    pub next_fail_us: Option<u64>,
}

/// Complete mutable state of a [`FaultInjector`], produced by
///// [`FaultInjector::snapshot`] and consumed by [`FaultInjector::restore`]
/// on an identically configured injector. All times are raw microsecond
/// counts so the snapshot round-trips exactly through a text checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// SplitMix64 state of the media-error stream.
    pub media_rng: u64,
    /// SplitMix64 state of the load-failure stream.
    pub load_rng: u64,
    /// The injector's clock, in microseconds.
    pub now_us: u64,
    /// Start of the open degraded interval, if any, in microseconds.
    pub degraded_since_us: Option<u64>,
    /// Completed degraded time, in microseconds.
    pub degraded_us: u64,
    /// Media errors drawn so far.
    pub media_errors: u64,
    /// True once any copy or tape has been permanently lost.
    pub permanent_damage: bool,
    /// Per-tape state, in tape-id order.
    pub tapes: Vec<TapeFaultSnapshot>,
    /// Per-drive state, in drive order.
    pub drives: Vec<DriveFaultSnapshot>,
    /// Copies declared bad, as `(tape, slot)` pairs in sorted order.
    pub bad_copies: Vec<(u16, u32)>,
    /// SplitMix64 state of the copy-heal stream.
    pub heal_rng: u64,
    /// Copies still healing, as `(tape, slot, heal_at_us)` triples in
    /// sorted order.
    pub healing: Vec<(u16, u32, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::SlotIndex;

    fn geom() -> JukeboxGeometry {
        JukeboxGeometry::FIVE_TAPE
    }

    #[test]
    fn substreams_are_distinct() {
        let seed = 0x1CDE_1999;
        assert_ne!(substream(seed, 1), substream(seed, 2));
        assert_ne!(substream(seed, 1), substream(seed ^ 1, 1));
    }

    #[test]
    fn inert_injector_does_nothing() {
        let mut inj = FaultInjector::inert(&geom());
        assert!(!inj.is_active());
        inj.advance(SimTime::from_secs(1_000_000));
        assert!(inj.offline().is_empty());
        assert!(!inj.media_error());
        assert!(!inj.load_fails());
        assert!(inj.drive_outage(0, SimTime::from_secs(1_000_000)).is_none());
        assert!(inj.next_event(SimTime::ZERO).is_none());
        assert!(!inj.has_permanent_damage());
        assert!(inj.degraded_time(SimTime::from_secs(1_000_000)).is_zero());
    }

    #[test]
    fn tape_fails_and_repairs() {
        let cfg = FaultConfig {
            tape_mtbf: Some(Micros::from_secs(1_000)),
            tape_mttr: Some(Micros::from_secs(100)),
            ..FaultConfig::NONE
        };
        let mut inj = FaultInjector::new(cfg, &geom(), 1, 42);
        let first = inj.next_event(SimTime::ZERO).expect("failure scheduled");
        inj.advance(first);
        assert_eq!(inj.offline().len(), 1, "one tape down at its fail time");
        let down = inj.offline()[0];
        assert!(inj.is_offline(down));
        // Far enough in the future everything cycles; downtime accrues.
        let end = SimTime::from_secs(1_000_000);
        inj.advance(end);
        let dt = inj.tape_downtime(end);
        assert!(dt.iter().any(|d| !d.is_zero()));
        assert!(!inj.degraded_time(end).is_zero());
        assert!(inj.degraded_time(end) <= end.duration_since(SimTime::ZERO));
        // Repairable failures are not permanent damage.
        assert!(!inj.has_permanent_damage());
    }

    #[test]
    fn unrepaired_tape_failure_is_permanent() {
        let cfg = FaultConfig {
            tape_mtbf: Some(Micros::from_secs(10)),
            tape_mttr: None,
            ..FaultConfig::NONE
        };
        let mut inj = FaultInjector::new(cfg, &geom(), 1, 7);
        let end = SimTime::from_secs(1_000_000);
        inj.advance(end);
        assert_eq!(inj.offline().len(), geom().tapes as usize);
        assert!(inj.has_permanent_damage());
        assert!(inj.copy_dead(PhysicalAddr {
            tape: TapeId(0),
            slot: SlotIndex(3),
        }));
        assert!(inj.next_event(end).is_none());
    }

    #[test]
    fn forced_failure_takes_tape_offline_then_repairs() {
        let cfg = FaultConfig {
            load_failure_p: 0.5,
            load_retries: 2,
            tape_mttr: Some(Micros::from_secs(50)),
            ..FaultConfig::NONE
        };
        let mut inj = FaultInjector::new(cfg, &geom(), 1, 3);
        let t0 = SimTime::from_secs(10);
        inj.force_tape_failure(TapeId(2), t0);
        assert!(inj.is_offline(TapeId(2)));
        assert!(!inj.has_permanent_damage());
        let repair = inj.next_event(t0).expect("repair scheduled");
        inj.advance(repair);
        assert!(!inj.is_offline(TapeId(2)));
        let dt = inj.tape_downtime(repair);
        assert_eq!(dt[2], repair.duration_since(t0));
    }

    #[test]
    fn bad_copy_is_dead_but_tape_survives() {
        let cfg = FaultConfig {
            media_error_per_read: 0.01,
            media_retries: 2,
            ..FaultConfig::NONE
        };
        let mut inj = FaultInjector::new(cfg, &geom(), 1, 11);
        let addr = PhysicalAddr {
            tape: TapeId(1),
            slot: SlotIndex(7),
        };
        assert!(!inj.copy_dead(addr));
        inj.mark_bad_copy(addr, SimTime::from_secs(5));
        assert!(inj.copy_dead(addr));
        assert!(inj.copy_lost_forever(addr));
        assert!(inj.has_permanent_damage());
        assert!(!inj.copy_dead(PhysicalAddr {
            tape: TapeId(1),
            slot: SlotIndex(8),
        }));
        assert!(!inj.is_offline(TapeId(1)));
    }

    #[test]
    fn same_seed_gives_identical_schedules() {
        let cfg = FaultConfig {
            media_error_per_read: 0.05,
            tape_mtbf: Some(Micros::from_secs(500)),
            tape_mttr: Some(Micros::from_secs(60)),
            drive_mtbf: Some(Micros::from_secs(2_000)),
            drive_mttr: Micros::from_secs(30),
            ..FaultConfig::NONE
        };
        let mut a = FaultInjector::new(cfg, &geom(), 2, 99);
        let mut b = FaultInjector::new(cfg, &geom(), 2, 99);
        for step in 1..200u64 {
            let t = SimTime::from_secs(step * 37);
            a.advance(t);
            b.advance(t);
            assert_eq!(a.offline(), b.offline());
            assert_eq!(a.media_error(), b.media_error());
            assert_eq!(a.drive_outage(0, t), b.drive_outage(0, t));
        }
        assert_eq!(
            a.tape_downtime(SimTime::from_secs(200 * 37)),
            b.tape_downtime(SimTime::from_secs(200 * 37))
        );
    }

    #[test]
    fn drive_outages_reschedule_after_repair() {
        let cfg = FaultConfig {
            drive_mtbf: Some(Micros::from_secs(100)),
            drive_mttr: Micros::from_secs(10),
            ..FaultConfig::NONE
        };
        let mut inj = FaultInjector::new(cfg, &geom(), 1, 5);
        let mut outages = 0;
        let mut t = SimTime::ZERO;
        for _ in 0..1_000 {
            t += Micros::from_secs(50);
            if let Some(d) = inj.drive_outage(0, t) {
                assert_eq!(d, Micros::from_secs(10));
                outages += 1;
            }
        }
        assert!(outages > 100, "expected many outages, got {outages}");
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let cfg = FaultConfig {
            media_error_per_read: 0.05,
            load_failure_p: 0.02,
            tape_mtbf: Some(Micros::from_secs(500)),
            tape_mttr: Some(Micros::from_secs(60)),
            drive_mtbf: Some(Micros::from_secs(2_000)),
            drive_mttr: Micros::from_secs(30),
            ..FaultConfig::NONE
        };
        let mut live = FaultInjector::new(cfg, &geom(), 2, 99);
        for step in 1..100u64 {
            let t = SimTime::from_secs(step * 37);
            live.advance(t);
            let _ = live.media_error();
            let _ = live.load_fails();
            let _ = live.drive_outage(step as usize % 2, t);
        }
        live.mark_bad_copy(
            PhysicalAddr {
                tape: TapeId(1),
                slot: SlotIndex(4),
            },
            SimTime::from_secs(99 * 37),
        );
        let snap = live.snapshot();
        let mut resumed = FaultInjector::new(cfg, &geom(), 2, 99);
        resumed.restore(&snap).unwrap();
        assert_eq!(resumed.offline(), live.offline());
        assert_eq!(resumed.snapshot(), snap);
        // Every future draw and event agrees exactly.
        for step in 100..200u64 {
            let t = SimTime::from_secs(step * 37);
            live.advance(t);
            resumed.advance(t);
            assert_eq!(live.offline(), resumed.offline());
            assert_eq!(live.media_error(), resumed.media_error());
            assert_eq!(live.load_fails(), resumed.load_fails());
            assert_eq!(live.drive_outage(0, t), resumed.drive_outage(0, t));
            assert_eq!(live.next_event(t), resumed.next_event(t));
        }
        let end = SimTime::from_secs(200 * 37);
        assert_eq!(live.tape_downtime(end), resumed.tape_downtime(end));
        assert_eq!(live.degraded_time(end), resumed.degraded_time(end));
    }

    #[test]
    fn restore_rejects_mismatched_geometry() {
        let cfg = FaultConfig {
            tape_mtbf: Some(Micros::from_secs(500)),
            tape_mttr: Some(Micros::from_secs(60)),
            ..FaultConfig::NONE
        };
        let live = FaultInjector::new(cfg, &geom(), 2, 1);
        let snap = live.snapshot();
        let mut wrong_drives = FaultInjector::new(cfg, &geom(), 3, 1);
        assert!(wrong_drives.restore(&snap).is_err());
    }

    #[test]
    fn transient_copy_loss_heals_and_is_not_permanent() {
        let cfg = FaultConfig {
            media_error_per_read: 0.01,
            copy_heal_mttr: Some(Micros::from_secs(100)),
            ..FaultConfig::NONE
        };
        let mut inj = FaultInjector::new(cfg, &geom(), 1, 11);
        let addr = PhysicalAddr {
            tape: TapeId(1),
            slot: SlotIndex(7),
        };
        let t0 = SimTime::from_secs(10);
        inj.mark_bad_copy(addr, t0);
        assert!(inj.copy_dead(addr), "dead while healing");
        assert!(!inj.copy_lost_forever(addr), "but not lost forever");
        assert!(!inj.has_permanent_damage(), "healing is not damage");
        let heal_at = inj.next_event(t0).expect("heal scheduled");
        assert!(heal_at > t0);
        // Advance to just before the heal instant: still dead.
        inj.advance(SimTime::from_micros(heal_at.as_micros() - 1));
        assert!(inj.copy_dead(addr));
        // Advance to *exactly* the heal instant: the tie-break is
        // inclusive, so a mount boundary at the heal time already sees
        // the copy alive.
        inj.advance(heal_at);
        assert!(!inj.copy_dead(addr), "healed at exactly the boundary");
        assert!(inj.next_event(heal_at).is_none());
    }

    #[test]
    fn healing_state_round_trips_through_snapshot() {
        let cfg = FaultConfig {
            media_error_per_read: 0.05,
            copy_heal_mttr: Some(Micros::from_secs(500)),
            ..FaultConfig::NONE
        };
        let mut live = FaultInjector::new(cfg, &geom(), 1, 23);
        let addr = PhysicalAddr {
            tape: TapeId(2),
            slot: SlotIndex(9),
        };
        live.mark_bad_copy(addr, SimTime::from_secs(50));
        let snap = live.snapshot();
        assert_eq!(snap.healing.len(), 1);
        let mut resumed = FaultInjector::new(cfg, &geom(), 1, 23);
        resumed.restore(&snap).unwrap();
        assert!(resumed.copy_dead(addr));
        assert_eq!(resumed.snapshot(), snap);
        assert_eq!(
            live.next_event(SimTime::from_secs(50)),
            resumed.next_event(SimTime::from_secs(50))
        );
        // Both heal identically.
        let heal_at = live.next_event(SimTime::from_secs(50)).unwrap();
        live.advance(heal_at);
        resumed.advance(heal_at);
        assert!(!live.copy_dead(addr));
        assert!(!resumed.copy_dead(addr));
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut cfg = FaultConfig::NONE;
        assert!(cfg.validate().is_ok());
        cfg.media_error_per_read = 1.0;
        assert!(cfg.validate().is_err());
        cfg.media_error_per_read = 0.0;
        cfg.load_failure_p = -0.1;
        assert!(cfg.validate().is_err());
        cfg.load_failure_p = 0.0;
        cfg.tape_mtbf = Some(Micros::ZERO);
        assert!(cfg.validate().is_err());
        cfg.tape_mtbf = None;
        cfg.copy_heal_mttr = Some(Micros::ZERO);
        assert!(cfg.validate().is_err());
    }
}
