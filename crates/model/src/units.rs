//! Storage units, tape addressing, and jukebox geometry.
//!
//! The unit of storage is a fixed-size *data block* (Section 2 of the paper).
//! Blocks are stored on tape in *physical positions* ("slots") that are
//! consecutively numbered from 0 at the beginning of the tape. The drive's
//! locate model (Section 2.1) is calibrated in megabytes of tape traversed,
//! so distances are always `slot distance x block size in MB`.

use std::fmt;

/// Identifier of a tape within one jukebox.
///
/// The jukebox order used for tie-breaking by the scheduling algorithms is
/// the ascending order of these identifiers ("ascending order of slot
/// number" in the paper's terminology), treated circularly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TapeId(pub u16);

impl TapeId {
    /// The index as a usize, for indexing per-tape tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TapeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tape{}", self.0)
    }
}

/// Physical position of a block on a tape, in block slots from the
/// beginning of tape (slot 0 is the physical beginning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SlotIndex(pub u32);

impl SlotIndex {
    /// The beginning of tape.
    pub const BOT: SlotIndex = SlotIndex(0);

    /// The slot index as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The next slot up-tape (the head position after reading this slot).
    #[inline]
    pub fn next(self) -> SlotIndex {
        SlotIndex(self.0 + 1)
    }

    /// Absolute distance to another slot, in slots.
    #[inline]
    pub fn distance(self, other: SlotIndex) -> u32 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for SlotIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// A physical block address: a tape and a slot on that tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysicalAddr {
    /// The tape holding the copy.
    pub tape: TapeId,
    /// The slot within the tape.
    pub slot: SlotIndex,
}

impl fmt::Display for PhysicalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.tape, self.slot)
    }
}

/// The fixed logical block size of a jukebox, in whole megabytes.
///
/// The paper studies block sizes from under 1 MB to 64 MB (Figure 3) and
/// settles on 16 MB for all subsequent experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockSize {
    mb: u32,
}

impl BlockSize {
    /// The paper's chosen block size for Sections 4.2-4.8.
    pub const PAPER_DEFAULT: BlockSize = BlockSize { mb: 16 };

    /// Creates a block size of `mb` megabytes.
    ///
    /// # Panics
    /// Panics if `mb` is zero.
    pub fn from_mb(mb: u32) -> Self {
        assert!(mb > 0, "block size must be at least 1 MB");
        BlockSize { mb }
    }

    /// The block size in megabytes.
    #[inline]
    pub fn mb(self) -> u32 {
        self.mb
    }

    /// The block size in bytes (1 MB = 2^20 bytes).
    #[inline]
    pub fn bytes(self) -> u64 {
        self.mb as u64 * (1 << 20)
    }

    /// Tape distance in megabytes covered by moving `slots` block slots.
    #[inline]
    pub fn slots_to_mb(self, slots: u32) -> u64 {
        slots as u64 * self.mb as u64
    }

    /// The block size in whole megabytes as a `u64`, for capacity
    /// arithmetic against [`JukeboxGeometry`] totals.
    #[inline]
    pub fn mb_u64(self) -> u64 {
        u64::from(self.mb)
    }

    /// The block size in megabytes as an `f64`, for the continuous
    /// Section 2.1 timing polynomials (lossless: block sizes are small).
    #[inline]
    pub fn mb_f64(self) -> f64 {
        f64::from(self.mb)
    }
}

/// A raw megabyte count entering the continuous timing model.
///
/// This is the single sanctioned `u64 -> f64` crossing for tape
/// distances; everything downstream of it is fitted-model arithmetic in
/// seconds. Distances are bounded by tape capacity (a few thousand MB),
/// far below `f64`'s 2^53 integer range, so the conversion is exact.
#[inline]
#[allow(clippy::cast_precision_loss)] // exact for any physical tape length
pub fn mb_f64(mb: u64) -> f64 {
    mb as f64
}

/// A raw byte count in kilobytes (1 KB = 2^10 bytes), for throughput
/// reporting. The sanctioned `u64 -> f64` crossing for data volumes.
#[inline]
#[allow(clippy::cast_precision_loss)] // exact below 8 PB delivered
pub fn bytes_to_kb_f64(bytes: u64) -> f64 {
    bytes as f64 / 1024.0
}

impl fmt::Display for BlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MB", self.mb)
    }
}

/// Static geometry of one jukebox: how many tapes it holds and how large
/// each tape is.
///
/// The paper's experiments model an Exabyte EXB-210 library: 10 tapes of
/// 7 GB each (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JukeboxGeometry {
    /// Number of tapes in the jukebox.
    pub tapes: u16,
    /// Capacity of each tape in megabytes.
    pub tape_capacity_mb: u64,
}

impl JukeboxGeometry {
    /// The paper's configuration: 10 tapes x 7 GB.
    pub const PAPER_DEFAULT: JukeboxGeometry = JukeboxGeometry {
        tapes: 10,
        tape_capacity_mb: 7 * 1024,
    };

    /// A small 5-tape variant used by the paper's Section 4.8 sensitivity
    /// check.
    pub const FIVE_TAPE: JukeboxGeometry = JukeboxGeometry {
        tapes: 5,
        tape_capacity_mb: 7 * 1024,
    };

    /// Creates a geometry.
    ///
    /// # Panics
    /// Panics if `tapes` or `tape_capacity_mb` is zero.
    pub fn new(tapes: u16, tape_capacity_mb: u64) -> Self {
        assert!(tapes > 0, "jukebox must hold at least one tape");
        assert!(tape_capacity_mb > 0, "tape capacity must be positive");
        JukeboxGeometry {
            tapes,
            tape_capacity_mb,
        }
    }

    /// Number of whole block slots per tape for a given block size.
    #[inline]
    #[allow(clippy::cast_possible_truncation)] // capacity / block size fits u32 slots
    pub fn slots_per_tape(&self, block: BlockSize) -> u32 {
        (self.tape_capacity_mb / block.mb() as u64) as u32
    }

    /// Total block slots across all tapes.
    #[inline]
    pub fn total_slots(&self, block: BlockSize) -> u64 {
        self.slots_per_tape(block) as u64 * self.tapes as u64
    }

    /// Iterator over all tape identifiers in jukebox order.
    pub fn tape_ids(&self) -> impl Iterator<Item = TapeId> {
        (0..self.tapes).map(TapeId)
    }

    /// The tape after `t` in circular jukebox order.
    #[inline]
    pub fn next_tape(&self, t: TapeId) -> TapeId {
        TapeId((t.0 + 1) % self.tapes)
    }

    /// Circular distance from `from` to `to` moving upward in jukebox
    /// order. Zero when they are equal. Used for the paper's tie-breaking
    /// rule "first in jukebox order starting at the currently mounted tape".
    #[inline]
    pub fn circular_distance(&self, from: TapeId, to: TapeId) -> u16 {
        (to.0 + self.tapes - from.0) % self.tapes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_slot_math() {
        let g = JukeboxGeometry::PAPER_DEFAULT;
        assert_eq!(g.tapes, 10);
        // 7 GB = 7168 MB -> 448 slots of 16 MB.
        assert_eq!(g.slots_per_tape(BlockSize::PAPER_DEFAULT), 448);
        assert_eq!(g.total_slots(BlockSize::PAPER_DEFAULT), 4480);
        // 1 MB blocks -> 7168 slots.
        assert_eq!(g.slots_per_tape(BlockSize::from_mb(1)), 7168);
    }

    #[test]
    fn block_size_conversions() {
        let b = BlockSize::from_mb(16);
        assert_eq!(b.bytes(), 16 * 1024 * 1024);
        assert_eq!(b.slots_to_mb(28), 448);
        assert_eq!(BlockSize::PAPER_DEFAULT, b);
    }

    #[test]
    #[should_panic(expected = "at least 1 MB")]
    fn zero_block_size_rejected() {
        let _ = BlockSize::from_mb(0);
    }

    #[test]
    fn slot_distance_is_symmetric() {
        let a = SlotIndex(10);
        let b = SlotIndex(3);
        assert_eq!(a.distance(b), 7);
        assert_eq!(b.distance(a), 7);
        assert_eq!(a.distance(a), 0);
        assert_eq!(SlotIndex(4).next(), SlotIndex(5));
    }

    #[test]
    fn circular_tape_order() {
        let g = JukeboxGeometry::PAPER_DEFAULT;
        assert_eq!(g.next_tape(TapeId(9)), TapeId(0));
        assert_eq!(g.next_tape(TapeId(3)), TapeId(4));
        assert_eq!(g.circular_distance(TapeId(8), TapeId(2)), 4);
        assert_eq!(g.circular_distance(TapeId(2), TapeId(2)), 0);
        assert_eq!(g.circular_distance(TapeId(2), TapeId(8)), 6);
    }

    #[test]
    fn tape_ids_enumerates_in_order() {
        let g = JukeboxGeometry::new(3, 100);
        let ids: Vec<_> = g.tape_ids().collect();
        assert_eq!(ids, vec![TapeId(0), TapeId(1), TapeId(2)]);
    }

    #[test]
    fn display_impls() {
        let addr = PhysicalAddr {
            tape: TapeId(2),
            slot: SlotIndex(17),
        };
        assert_eq!(addr.to_string(), "tape2:slot17");
        assert_eq!(BlockSize::from_mb(8).to_string(), "8MB");
    }
}
