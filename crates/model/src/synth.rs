//! Synthetic drive measurements.
//!
//! The paper calibrates its timing model against 2130 random locates and
//! reads measured on a physical Exabyte EXB-8505XL. We do not have the
//! drive, so this module plays its role: it generates noisy "measurements"
//! by evaluating the fitted model and perturbing it with zero-mean noise
//! whose magnitude matches the residuals the paper reports (locate
//! predictions within ~0.5 % on aggregates; read times with "significant
//! variance"). Downstream code — the Figure 1 scatter/fit and the
//! Section 2.1 random-walk validation — exercises the same code paths it
//! would with real hardware data.
#![allow(clippy::cast_possible_truncation)] // slot offsets are clamped to the tape before narrowing

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::drive::{DriveModel, LocateDirection, ReadContext};
use crate::units::{BlockSize, SlotIndex};

/// Zero-mean Gaussian measurement noise, as a fraction of the true value
/// plus an absolute floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation as a fraction of the modeled time.
    pub rel_sigma: f64,
    /// Absolute standard deviation in seconds, independent of the value.
    pub abs_sigma_s: f64,
}

impl NoiseModel {
    /// Noise level for locate operations (tight: the paper's locate model
    /// predicts aggregate times within 0.5-0.6 %).
    pub fn locate_default() -> Self {
        NoiseModel {
            rel_sigma: 0.05,
            abs_sigma_s: 0.05,
        }
    }

    /// Noise level for read operations (loose: the paper notes the read
    /// measurements "exhibit a significant variance" and validates within
    /// 2.6-4.6 % on aggregates).
    pub fn read_default() -> Self {
        NoiseModel {
            rel_sigma: 0.25,
            abs_sigma_s: 0.1,
        }
    }

    /// No noise at all; measurements equal the model exactly.
    pub fn none() -> Self {
        NoiseModel {
            rel_sigma: 0.0,
            abs_sigma_s: 0.0,
        }
    }

    /// Perturbs a modeled time of `secs` seconds. The result is clamped to
    /// be non-negative (a measured duration cannot be negative).
    pub fn perturb(&self, secs: f64, rng: &mut StdRng) -> f64 {
        let n = standard_normal(rng);
        let sigma = self.rel_sigma * secs + self.abs_sigma_s;
        (secs + n * sigma).max(0.0)
    }
}

/// Draws a standard normal variate via the Box-Muller transform.
///
/// `rand` alone (without `rand_distr`) provides only uniform variates, so
/// we derive the Gaussian ourselves to keep the dependency list minimal.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    // Avoid ln(0) by sampling the half-open interval away from zero.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One synthetic locate measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocateSample {
    /// Head position before the locate.
    pub from: SlotIndex,
    /// Target position.
    pub to: SlotIndex,
    /// Distance traversed, in megabytes.
    pub distance_mb: u64,
    /// Direction of motion.
    pub direction: LocateDirection,
    /// Whether the target was the physical beginning of tape.
    pub to_bot: bool,
    /// The model's prediction in seconds.
    pub predicted_s: f64,
    /// The noisy "measured" time in seconds.
    pub measured_s: f64,
}

/// Generates `n` random locate measurements over a tape of
/// `slots_per_tape` slots, mimicking the paper's 2130-locate calibration
/// run (1 MB logical blocks in the paper's Figure 1).
pub fn synthesize_locates(
    drive: &DriveModel,
    block: BlockSize,
    slots_per_tape: u32,
    n: usize,
    noise: NoiseModel,
    seed: u64,
) -> Vec<LocateSample> {
    assert!(slots_per_tape >= 2, "need at least two slots to locate");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut head = SlotIndex(rng.gen_range(0..slots_per_tape));
    while out.len() < n {
        // A calibration run must cover the short-distance regimes too, so
        // a third of the targets are drawn near the current head.
        let target = if rng.gen::<f64>() < 0.33 {
            let span = 60.min(slots_per_tape - 1);
            let delta = rng.gen_range(0..=2 * span) as i64 - span as i64;
            let raw = head.0 as i64 + delta;
            SlotIndex(raw.clamp(0, slots_per_tape as i64 - 1) as u32)
        } else {
            SlotIndex(rng.gen_range(0..slots_per_tape))
        };
        if target == head {
            continue;
        }
        let (t, dir) = drive.locate(head, target, block);
        // simlint: allow(panic, target != head is checked above so the locate has a direction)
        let dir = dir.expect("nonzero distance implies a direction");
        let predicted_s = t.as_secs_f64();
        let measured_s = noise.perturb(predicted_s, &mut rng);
        out.push(LocateSample {
            from: head,
            to: target,
            distance_mb: block.slots_to_mb(head.distance(target)),
            direction: dir,
            to_bot: target == SlotIndex::BOT,
            predicted_s,
            measured_s,
        });
        head = target;
    }
    out
}

/// One locate + read step of a random walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkStep {
    /// The locate portion.
    pub locate: LocateSample,
    /// Predicted read time in seconds.
    pub read_predicted_s: f64,
    /// Noisy measured read time in seconds.
    pub read_measured_s: f64,
}

/// A complete random walk: a sequence of locate + read operations, with
/// predicted and "measured" totals, mirroring the validation runs of
/// Section 2.1 (ten walks of 100 locates and reads each).
#[derive(Debug, Clone, PartialEq)]
pub struct RandomWalk {
    /// The individual steps.
    pub steps: Vec<WalkStep>,
}

impl RandomWalk {
    /// Total predicted locate time in seconds.
    pub fn predicted_locate_s(&self) -> f64 {
        self.steps.iter().map(|s| s.locate.predicted_s).sum()
    }

    /// Total measured locate time in seconds.
    pub fn measured_locate_s(&self) -> f64 {
        self.steps.iter().map(|s| s.locate.measured_s).sum()
    }

    /// Total predicted read time in seconds.
    pub fn predicted_read_s(&self) -> f64 {
        self.steps.iter().map(|s| s.read_predicted_s).sum()
    }

    /// Total measured read time in seconds.
    pub fn measured_read_s(&self) -> f64 {
        self.steps.iter().map(|s| s.read_measured_s).sum()
    }
}

/// Generates one random walk of `steps` locate + read operations.
pub fn synthesize_random_walk(
    drive: &DriveModel,
    block: BlockSize,
    slots_per_tape: u32,
    steps: usize,
    locate_noise: NoiseModel,
    read_noise: NoiseModel,
    seed: u64,
) -> RandomWalk {
    let locates = synthesize_locates(drive, block, slots_per_tape, steps, locate_noise, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let steps = locates
        .into_iter()
        .map(|locate| {
            let ctx = match locate.direction {
                LocateDirection::Forward => ReadContext::AfterForwardLocate,
                LocateDirection::Reverse => ReadContext::AfterReverseLocate,
            };
            let read_predicted_s = drive.read_block(block, ctx).as_secs_f64();
            let read_measured_s = read_noise.perturb(read_predicted_s, &mut rng);
            WalkStep {
                locate,
                read_predicted_s,
                read_measured_s,
            }
        })
        .collect();
    RandomWalk { steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive() -> DriveModel {
        DriveModel::exb8505xl()
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let b = BlockSize::from_mb(1);
        let a = synthesize_locates(&drive(), b, 7168, 50, NoiseModel::locate_default(), 7);
        let c = synthesize_locates(&drive(), b, 7168, 50, NoiseModel::locate_default(), 7);
        assert_eq!(a, c);
        let d = synthesize_locates(&drive(), b, 7168, 50, NoiseModel::locate_default(), 8);
        assert_ne!(a, d);
    }

    #[test]
    fn samples_form_a_walk() {
        let b = BlockSize::from_mb(1);
        let samples = synthesize_locates(&drive(), b, 100, 30, NoiseModel::none(), 3);
        assert_eq!(samples.len(), 30);
        for pair in samples.windows(2) {
            assert_eq!(pair[0].to, pair[1].from, "head position must chain");
        }
        for s in &samples {
            assert!(s.distance_mb > 0);
            assert_eq!(s.to_bot, s.to == SlotIndex::BOT);
        }
    }

    #[test]
    fn zero_noise_measurements_equal_predictions() {
        let b = BlockSize::from_mb(1);
        let samples = synthesize_locates(&drive(), b, 500, 100, NoiseModel::none(), 11);
        for s in &samples {
            assert_eq!(s.measured_s, s.predicted_s);
        }
    }

    #[test]
    fn noise_is_roughly_unbiased() {
        let b = BlockSize::from_mb(1);
        let samples =
            synthesize_locates(&drive(), b, 7168, 4000, NoiseModel::locate_default(), 999);
        let predicted: f64 = samples.iter().map(|s| s.predicted_s).sum();
        let measured: f64 = samples.iter().map(|s| s.measured_s).sum();
        let rel_err = (measured - predicted).abs() / predicted;
        assert!(rel_err < 0.01, "aggregate bias {rel_err} too large");
    }

    #[test]
    fn perturb_never_negative() {
        let mut rng = StdRng::seed_from_u64(5);
        let noise = NoiseModel {
            rel_sigma: 5.0,
            abs_sigma_s: 5.0,
        };
        for _ in 0..1000 {
            assert!(noise.perturb(0.01, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn random_walk_totals_are_consistent() {
        let b = BlockSize::from_mb(1);
        let walk = synthesize_random_walk(
            &drive(),
            b,
            7168,
            100,
            NoiseModel::none(),
            NoiseModel::none(),
            42,
        );
        assert_eq!(walk.steps.len(), 100);
        assert!(walk.predicted_locate_s() > 0.0);
        assert_eq!(walk.predicted_locate_s(), walk.measured_locate_s());
        assert_eq!(walk.predicted_read_s(), walk.measured_read_s());
        // Read context must match the locate direction.
        for s in &walk.steps {
            let expect = match s.locate.direction {
                LocateDirection::Forward => 0.38 + 1.77,
                LocateDirection::Reverse => 1.77,
            };
            assert!((s.read_predicted_s - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
