//! Tape-library fleet topology: libraries × robots × drives × shelves.
//!
//! The paper's testbed is a single Exabyte EXB-210 — ten shelf slots, one
//! drive, one robot arm. This module generalizes that shape to a *fleet*:
//! several libraries, each with its own shelves, drives, and one or more
//! robot arms, connected by pass-through ports so a tape homed in one
//! library can be mounted by a drive in another (export at the source,
//! a per-hop pass-through walk, import at the destination).
//!
//! Identifier spaces stay **global and contiguous**: library `i` owns the
//! drive indices `[drive_base(i), drive_base(i) + drives_i)`, the robot
//! indices `[robot_base(i), robot_base(i) + robots_i)`, and the tape ids
//! `[tape_base(i), tape_base(i) + tapes_i)`. This keeps every existing
//! `TapeId`/drive-index table working unchanged and makes the
//! library-of-X mappings cheap range lookups.
//!
//! The **legacy contract**: a topology that is exactly one library with
//! one robot arm ([`Topology::is_legacy`]) must be indistinguishable from
//! the pre-fleet model — no cross-library penalties exist (there is
//! nowhere to cross to), and one robot serializes exchanges exactly the
//! way the single `robot_free` clock always has. The simulator and cost
//! model key their fleet-only behavior off `is_legacy()` so single-library
//! runs stay byte-identical to historical traces.

use crate::drive::RobotModel;
use crate::time::Micros;
use crate::units::{JukeboxGeometry, TapeId};
use std::fmt;

/// One library (jukebox cabinet) in a fleet: its shelf count, drive
/// count, and robot-arm pool.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryTopo {
    /// Number of tape drives installed in this library.
    pub drives: u16,
    /// Number of robot arms serving this library's exchanges (≥ 1).
    pub robots: u16,
    /// Number of shelf slots (tapes homed here).
    pub tapes: u16,
    /// Timing model of this library's robot arms (all arms identical).
    pub robot: RobotModel,
}

impl LibraryTopo {
    /// An EXB-210 cabinet: `drives` drives, one 20 s robot, `tapes` shelves.
    pub fn exb210(drives: u16, tapes: u16) -> Self {
        LibraryTopo {
            drives,
            robots: 1,
            tapes,
            robot: RobotModel::exb210(),
        }
    }
}

/// Latency model for moving a tape between libraries through pass-through
/// ports. Libraries are arranged in a line: moving a tape from library
/// `a` to library `b` costs one export, `|a − b|` pass-through hops, and
/// one import.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterLibraryModel {
    /// Seconds for the source library's robot to export the tape into the
    /// pass-through port.
    pub export_s: f64,
    /// Seconds per pass-through hop between adjacent libraries.
    pub pass_through_s: f64,
    /// Seconds for the destination library's robot to import the tape
    /// from the pass-through port.
    pub import_s: f64,
}

impl InterLibraryModel {
    /// No inter-library transfer capability (single-library topologies).
    pub const NONE: InterLibraryModel = InterLibraryModel {
        export_s: 0.0,
        pass_through_s: 0.0,
        import_s: 0.0,
    };

    /// A default pass-through model for fleet studies: 15 s export, 10 s
    /// per hop, 15 s import — the same order as one robot exchange, which
    /// matches published pass-through port mechanics for mid-range
    /// libraries.
    pub const DEFAULT: InterLibraryModel = InterLibraryModel {
        export_s: 15.0,
        pass_through_s: 10.0,
        import_s: 15.0,
    };

    /// Total transfer latency across `hops` adjacent-library hops (zero
    /// when `hops == 0`, i.e. the tape is already home).
    pub fn transfer(&self, hops: u16) -> Micros {
        if hops == 0 {
            return Micros::ZERO;
        }
        Micros::from_secs_f64(self.export_s + self.pass_through_s * f64::from(hops) + self.import_s)
    }
}

/// Errors detected by [`Topology::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The fleet has no libraries.
    NoLibraries,
    /// A library has zero robots (exchanges would never complete).
    NoRobots(usize),
    /// A library has zero shelf slots.
    NoTapes(usize),
    /// The fleet has zero drives in total.
    NoDrives,
    /// A global index space overflowed `u16`.
    IndexOverflow(&'static str),
    /// The fleet's total shelf count disagrees with a
    /// [`JukeboxGeometry`]'s tape count.
    GeometryMismatch {
        /// Shelves summed over all libraries.
        topology_tapes: u16,
        /// Tapes declared by the geometry.
        geometry_tapes: u16,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoLibraries => write!(f, "topology has no libraries"),
            TopologyError::NoRobots(i) => write!(f, "library {i} has no robot arms"),
            TopologyError::NoTapes(i) => write!(f, "library {i} has no shelf slots"),
            TopologyError::NoDrives => write!(f, "topology has no drives"),
            TopologyError::IndexOverflow(space) => {
                write!(f, "fleet {space} index space overflows u16")
            }
            TopologyError::GeometryMismatch {
                topology_tapes,
                geometry_tapes,
            } => write!(
                f,
                "topology holds {topology_tapes} tapes but geometry declares {geometry_tapes}"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A tape-library fleet: the ordered list of libraries plus the
/// inter-library transfer model.
///
/// Construct with [`Topology::single`] (the legacy one-cabinet shape),
/// [`Topology::uniform`] (N identical libraries), or [`Topology::new`]
/// for heterogeneous fleets. All constructors precompute the global
/// index bases so the library-of-drive/tape/robot mappings are O(log L).
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    libraries: Vec<LibraryTopo>,
    /// Pass-through latency between adjacent libraries.
    pub interlib: InterLibraryModel,
    drive_base: Vec<u16>,
    robot_base: Vec<u16>,
    tape_base: Vec<u16>,
}

impl Topology {
    /// Builds a fleet from an explicit library list.
    ///
    /// # Errors
    /// Returns a [`TopologyError`] when any library is degenerate (no
    /// robots or shelves), the fleet has no drives, or a global index
    /// space overflows `u16`.
    pub fn new(
        libraries: Vec<LibraryTopo>,
        interlib: InterLibraryModel,
    ) -> Result<Self, TopologyError> {
        if libraries.is_empty() {
            return Err(TopologyError::NoLibraries);
        }
        let mut drive_base = Vec::with_capacity(libraries.len());
        let mut robot_base = Vec::with_capacity(libraries.len());
        let mut tape_base = Vec::with_capacity(libraries.len());
        let (mut d, mut r, mut t) = (0u16, 0u16, 0u16);
        for (i, lib) in libraries.iter().enumerate() {
            if lib.robots == 0 {
                return Err(TopologyError::NoRobots(i));
            }
            if lib.tapes == 0 {
                return Err(TopologyError::NoTapes(i));
            }
            drive_base.push(d);
            robot_base.push(r);
            tape_base.push(t);
            d = d
                .checked_add(lib.drives)
                .ok_or(TopologyError::IndexOverflow("drive"))?;
            r = r
                .checked_add(lib.robots)
                .ok_or(TopologyError::IndexOverflow("robot"))?;
            t = t
                .checked_add(lib.tapes)
                .ok_or(TopologyError::IndexOverflow("tape"))?;
        }
        if d == 0 {
            return Err(TopologyError::NoDrives);
        }
        Ok(Topology {
            libraries,
            interlib,
            drive_base,
            robot_base,
            tape_base,
        })
    }

    /// The legacy shape: one library, one robot arm, no pass-through.
    /// Runs under this topology are byte-identical to the pre-fleet
    /// engine (see the module docs for the contract).
    ///
    /// # Panics
    /// Panics if `drives` or `tapes` is zero (mirrors
    /// [`JukeboxGeometry::new`]).
    pub fn single(drives: u16, tapes: u16, robot: RobotModel) -> Self {
        assert!(drives > 0, "fleet must have at least one drive");
        assert!(tapes > 0, "library must hold at least one tape");
        Topology::new(
            vec![LibraryTopo {
                drives,
                robots: 1,
                tapes,
                robot,
            }],
            InterLibraryModel::NONE,
        )
        // simlint: allow(panic, single-library invariants asserted above; construction cannot fail)
        .expect("single-library topology is always valid")
    }

    /// `libraries` identical cabinets of `drives`/`robots`/`tapes` each.
    ///
    /// # Errors
    /// Propagates [`Topology::new`] validation.
    pub fn uniform(
        libraries: u16,
        drives: u16,
        robots: u16,
        tapes: u16,
        robot: RobotModel,
        interlib: InterLibraryModel,
    ) -> Result<Self, TopologyError> {
        Topology::new(
            (0..libraries)
                .map(|_| LibraryTopo {
                    drives,
                    robots,
                    tapes,
                    robot,
                })
                .collect(),
            interlib,
        )
    }

    /// The libraries in fleet order.
    pub fn libraries(&self) -> &[LibraryTopo] {
        &self.libraries
    }

    /// Number of libraries in the fleet.
    #[allow(clippy::cast_possible_truncation)] // bounded by the u16 tape index space
    pub fn library_count(&self) -> u16 {
        // simlint: allow(unit-cast, library count bounded by the u16 tape index space)
        self.libraries.len() as u16
    }

    /// Total drives across the fleet.
    pub fn total_drives(&self) -> u16 {
        let last = self.libraries.len() - 1;
        self.drive_base[last] + self.libraries[last].drives
    }

    /// Total robot arms across the fleet.
    pub fn total_robots(&self) -> u16 {
        let last = self.libraries.len() - 1;
        self.robot_base[last] + self.libraries[last].robots
    }

    /// Total shelf slots (tapes) across the fleet.
    pub fn total_tapes(&self) -> u16 {
        let last = self.libraries.len() - 1;
        self.tape_base[last] + self.libraries[last].tapes
    }

    /// First global drive index owned by library `lib`.
    pub fn drive_base(&self, lib: u16) -> u16 {
        self.drive_base[usize::from(lib)]
    }

    /// First global robot index owned by library `lib`.
    pub fn robot_base(&self, lib: u16) -> u16 {
        self.robot_base[usize::from(lib)]
    }

    /// First tape id homed in library `lib`.
    pub fn tape_base(&self, lib: u16) -> u16 {
        self.tape_base[usize::from(lib)]
    }

    /// The library owning global drive index `drive`.
    pub fn library_of_drive(&self, drive: u16) -> u16 {
        Self::library_of(&self.drive_base, drive)
    }

    /// The library owning global robot index `robot`.
    pub fn library_of_robot(&self, robot: u16) -> u16 {
        Self::library_of(&self.robot_base, robot)
    }

    /// The library where tape `tape` is homed.
    pub fn library_of_tape(&self, tape: TapeId) -> u16 {
        Self::library_of(&self.tape_base, tape.0)
    }

    #[allow(clippy::cast_possible_truncation)] // bounded by the u16 base table length
    fn library_of(bases: &[u16], idx: u16) -> u16 {
        // partition_point: first base strictly greater than idx, minus one.
        let pos = bases.partition_point(|&b| b <= idx);
        debug_assert!(pos > 0, "index below first base");
        // simlint: allow(unit-cast, position within the u16-bounded base table)
        (pos - 1) as u16
    }

    /// Pass-through hops between two libraries (libraries form a line).
    pub fn hops(&self, from_lib: u16, to_lib: u16) -> u16 {
        from_lib.abs_diff(to_lib)
    }

    /// Extra latency to bring a tape homed in `tape_lib` to a drive in
    /// `drive_lib`: zero in-library, else export + hops + import.
    pub fn transfer_penalty(&self, drive_lib: u16, tape_lib: u16) -> Micros {
        self.interlib.transfer(self.hops(drive_lib, tape_lib))
    }

    /// Extra mount latency for global drive `drive` mounting `tape`,
    /// relative to an in-library mount. Zero whenever they share a
    /// library — in particular, always zero for legacy topologies.
    pub fn mount_penalty(&self, drive: u16, tape: TapeId) -> Micros {
        self.transfer_penalty(self.library_of_drive(drive), self.library_of_tape(tape))
    }

    /// `true` for the pre-fleet shape: one library, one robot arm. Legacy
    /// runs take the historical code paths exactly (no robot queueing
    /// beyond the single arm, no pass-through, no fleet trace events).
    pub fn is_legacy(&self) -> bool {
        self.libraries.len() == 1 && self.libraries.first().is_some_and(|l| l.robots == 1)
    }

    /// Checks the fleet's shelf total against a jukebox geometry.
    ///
    /// # Errors
    /// Returns [`TopologyError::GeometryMismatch`] when the totals differ.
    pub fn check_geometry(&self, geometry: &JukeboxGeometry) -> Result<(), TopologyError> {
        if self.total_tapes() != geometry.tapes {
            return Err(TopologyError::GeometryMismatch {
                topology_tapes: self.total_tapes(),
                geometry_tapes: geometry.tapes,
            });
        }
        Ok(())
    }

    /// A short stable tag naming the fleet shape, mixed into run
    /// fingerprints so checkpoints from different topologies never
    /// cross-restore. Empty for legacy topologies, which keeps historical
    /// fingerprints (and the golden checkpoint) unchanged.
    pub fn fingerprint_tag(&self) -> String {
        if self.is_legacy() {
            return String::new();
        }
        let mut tag = String::from("fleet");
        for lib in &self.libraries {
            tag.push_str(&format!(":{}d{}r{}t", lib.drives, lib.robots, lib.tapes));
        }
        tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_legacy() {
        let t = Topology::single(2, 10, RobotModel::exb210());
        assert!(t.is_legacy());
        assert_eq!(t.library_count(), 1);
        assert_eq!(t.total_drives(), 2);
        assert_eq!(t.total_robots(), 1);
        assert_eq!(t.total_tapes(), 10);
        assert_eq!(t.mount_penalty(1, TapeId(9)), Micros::ZERO);
        assert_eq!(t.fingerprint_tag(), "");
        assert!(t.check_geometry(&JukeboxGeometry::PAPER_DEFAULT).is_ok());
    }

    #[test]
    fn uniform_fleet_mappings() {
        let t = Topology::uniform(
            3,
            2,
            1,
            10,
            RobotModel::exb210(),
            InterLibraryModel::DEFAULT,
        )
        .unwrap();
        assert!(!t.is_legacy());
        assert_eq!(t.total_drives(), 6);
        assert_eq!(t.total_robots(), 3);
        assert_eq!(t.total_tapes(), 30);
        assert_eq!(t.library_of_drive(0), 0);
        assert_eq!(t.library_of_drive(1), 0);
        assert_eq!(t.library_of_drive(2), 1);
        assert_eq!(t.library_of_drive(5), 2);
        assert_eq!(t.library_of_tape(TapeId(9)), 0);
        assert_eq!(t.library_of_tape(TapeId(10)), 1);
        assert_eq!(t.library_of_tape(TapeId(29)), 2);
        assert_eq!(t.library_of_robot(2), 2);
        assert_eq!(t.drive_base(2), 4);
        assert_eq!(t.tape_base(1), 10);
    }

    #[test]
    fn transfer_penalty_scales_with_hops() {
        let t = Topology::uniform(3, 1, 1, 4, RobotModel::exb210(), InterLibraryModel::DEFAULT)
            .unwrap();
        assert_eq!(t.transfer_penalty(0, 0), Micros::ZERO);
        // 1 hop: 15 + 10 + 15 = 40 s.
        assert_eq!(t.transfer_penalty(0, 1), Micros::from_secs(40));
        // 2 hops: 15 + 20 + 15 = 50 s.
        assert_eq!(t.transfer_penalty(0, 2), Micros::from_secs(50));
        // Symmetric.
        assert_eq!(t.transfer_penalty(2, 0), t.transfer_penalty(0, 2));
        // Per-tape view.
        assert_eq!(t.mount_penalty(0, TapeId(5)), Micros::from_secs(40));
    }

    #[test]
    fn multi_robot_single_library_is_not_legacy() {
        let t = Topology::new(
            vec![LibraryTopo {
                drives: 4,
                robots: 2,
                tapes: 20,
                robot: RobotModel::exb210(),
            }],
            InterLibraryModel::NONE,
        )
        .unwrap();
        assert!(!t.is_legacy());
        assert_eq!(t.fingerprint_tag(), "fleet:4d2r20t");
    }

    #[test]
    fn validation_rejects_degenerate_fleets() {
        assert_eq!(
            Topology::new(vec![], InterLibraryModel::NONE),
            Err(TopologyError::NoLibraries)
        );
        let no_robot = vec![LibraryTopo {
            drives: 1,
            robots: 0,
            tapes: 1,
            robot: RobotModel::exb210(),
        }];
        assert_eq!(
            Topology::new(no_robot, InterLibraryModel::NONE),
            Err(TopologyError::NoRobots(0))
        );
        let no_drives = vec![LibraryTopo {
            drives: 0,
            robots: 1,
            tapes: 1,
            robot: RobotModel::exb210(),
        }];
        assert_eq!(
            Topology::new(no_drives, InterLibraryModel::NONE),
            Err(TopologyError::NoDrives)
        );
        let t = Topology::single(1, 5, RobotModel::exb210());
        assert_eq!(
            t.check_geometry(&JukeboxGeometry::PAPER_DEFAULT),
            Err(TopologyError::GeometryMismatch {
                topology_tapes: 5,
                geometry_tapes: 10,
            })
        );
    }

    #[test]
    fn geometry_roundtrip_tag() {
        let t = Topology::uniform(2, 2, 2, 5, RobotModel::exb210(), InterLibraryModel::DEFAULT)
            .unwrap();
        assert_eq!(t.fingerprint_tag(), "fleet:2d2r5t:2d2r5t");
        assert!(t.check_geometry(&JukeboxGeometry::PAPER_DEFAULT).is_ok());
    }
}
