//! Least-squares line fitting, used to recover the Figure 1 locate-model
//! coefficients from (synthetic) measurements the way the paper recovered
//! them from 2130 hardware measurements.
#![allow(clippy::cast_precision_loss)] // sample counts stay far below 2^53

/// A fitted line `y = intercept + slope * x` with its coefficient of
/// determination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Intercept (the "startup" term of a locate segment).
    pub intercept: f64,
    /// Slope (the per-MB term).
    pub slope: f64,
    /// R-squared of the fit.
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

/// Ordinary least squares over `(x, y)` pairs.
///
/// # Panics
/// Panics with fewer than two points or zero variance in `x`.
pub fn least_squares(points: &[(f64, f64)]) -> LineFit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let mx = sx / n;
    let my = sy / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    assert!(sxx > 0.0, "x values are constant; line is undetermined");
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let e = p.1 - (intercept + slope * p.0);
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LineFit {
        intercept,
        slope,
        r_squared,
        n: points.len(),
    }
}

/// Splits points at `x = threshold` and fits each side separately — the
/// shape of the paper's short/long-distance locate regimes.
pub fn piecewise_fit(points: &[(f64, f64)], threshold: f64) -> (LineFit, LineFit) {
    let short: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|p| p.0 <= threshold)
        .collect();
    let long: Vec<(f64, f64)> = points.iter().copied().filter(|p| p.0 > threshold).collect();
    (least_squares(&short), least_squares(&long))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64, 4.834 + 0.378 * i as f64))
            .collect();
        let fit = least_squares(&pts);
        assert!((fit.intercept - 4.834).abs() < 1e-9);
        assert!((fit.slope - 0.378).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(fit.n, 20);
    }

    #[test]
    fn noisy_line_is_recovered_approximately() {
        // Deterministic pseudo-noise.
        let pts: Vec<(f64, f64)> = (0..500)
            .map(|i| {
                let x = i as f64;
                let noise = ((i * 2654435761_u64 % 1000) as f64 / 1000.0 - 0.5) * 2.0;
                (x, 14.342 + 0.028 * x + noise)
            })
            .collect();
        let fit = least_squares(&pts);
        assert!(
            (fit.intercept - 14.342).abs() < 0.2,
            "intercept {}",
            fit.intercept
        );
        assert!((fit.slope - 0.028).abs() < 0.001, "slope {}", fit.slope);
        assert!(fit.r_squared > 0.9);
    }

    #[test]
    fn piecewise_recovers_both_segments() {
        let mut pts = Vec::new();
        for i in 1..=28 {
            pts.push((i as f64, 4.834 + 0.378 * i as f64));
        }
        for i in 29..200 {
            pts.push((i as f64, 14.342 + 0.028 * i as f64));
        }
        let (short, long) = piecewise_fit(&pts, 28.0);
        assert!((short.intercept - 4.834).abs() < 1e-9);
        assert!((short.slope - 0.378).abs() < 1e-9);
        assert!((long.intercept - 14.342).abs() < 1e-9);
        assert!((long.slope - 0.028).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn too_few_points_panics() {
        least_squares(&[(1.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn degenerate_x_panics() {
        least_squares(&[(1.0, 2.0), (1.0, 3.0)]);
    }
}
