//! Summary statistics for experiment results.
#![allow(clippy::cast_possible_truncation)] // quantile ranks round within sample bounds
#![allow(clippy::cast_precision_loss)] // sample counts stay far below 2^53

/// Mean of a sample. Returns 0 for an empty sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance. Returns 0 for samples of size < 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Half-width of an approximate 95% confidence interval on the mean
/// (normal approximation, 1.96 standard errors).
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * stddev(xs) / (xs.len() as f64).sqrt()
}

/// The `p`-quantile (0..=1) of a sample, by nearest-rank on a sorted copy.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!((0.0..=1.0).contains(&p), "quantile out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Relative change from `base` to `new` (e.g. +0.18 = 18% improvement).
pub fn relative_change(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        return 0.0;
    }
    (new - base) / base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((stddev(&xs) - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(ci95_half_width(&[1.0]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
    }

    #[test]
    fn relative_change_signs() {
        assert!((relative_change(100.0, 118.0) - 0.18).abs() < 1e-12);
        assert!((relative_change(100.0, 87.0) + 0.13).abs() < 1e-12);
        assert_eq!(relative_change(0.0, 5.0), 0.0);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small = [1.0, 2.0, 3.0, 4.0];
        let big: Vec<f64> = (0..64).map(|i| 1.0 + (i % 4) as f64).collect();
        assert!(ci95_half_width(&big) < ci95_half_width(&small));
    }
}
