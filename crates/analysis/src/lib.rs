//! # tapesim-analysis
//!
//! Dependency-free analysis utilities for the tape-jukebox experiment
//! harnesses: summary statistics, ordinary least squares (used to recover
//! the Figure 1 locate-model coefficients), and CSV/aligned-table/ASCII-
//! plot renderers for experiment outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linfit;
pub mod plot;
pub mod stats;
pub mod table;

pub use linfit::{least_squares, piecewise_fit, LineFit};
pub use plot::{ascii_plot, Series};
pub use stats::{ci95_half_width, mean, quantile, relative_change, stddev, variance};
pub use table::{fnum, Table};
