//! CSV and aligned-text table emitters for experiment outputs.
//!
//! Every figure binary prints its series both as CSV (machine-readable,
//! for replotting) and as an aligned table (human-readable, for
//! EXPERIMENTS.md).

use std::fmt::Write as _;

/// A simple table: a header row plus data rows of equal arity.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row arity differs from the header arity.
    pub fn push<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (comma-separated; fields containing commas or
    /// quotes are quoted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |f: &str| -> String {
            if f.contains(',') || f.contains('"') || f.contains('\n') {
                format!("\"{}\"", f.replace('"', "\"\""))
            } else {
                f.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|f| esc(f)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders as an aligned plain-text table.
    pub fn to_aligned(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, f) in row.iter().enumerate() {
                widths[i] = widths[i].max(f.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, row: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>w$}", row[i], w = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float with `prec` decimal places.
pub fn fnum(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["alg", "throughput", "delay"]);
        t.push(["fifo", "12.1", "5000"]);
        t.push(["dynamic max-bandwidth", "190.0", "900"]);
        t
    }

    #[test]
    fn csv_output() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "alg,throughput,delay");
        assert_eq!(lines[1], "fifo,12.1,5000");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["a"]);
        t.push(["x,y"]);
        t.push(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn aligned_output_pads_columns() {
        let txt = sample().to_aligned();
        let lines: Vec<&str> = txt.lines().collect();
        assert!(lines[0].contains("alg"));
        assert!(lines[1].starts_with('-'));
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn markdown_output() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| alg | throughput | delay |"));
        assert!(md.contains("|---|---|---|"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only-one"]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(10.0, 0), "10");
    }
}
