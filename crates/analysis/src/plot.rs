//! ASCII scatter/line plots for terminal output and EXPERIMENTS.md.
//!
//! The paper's parametric graphs plot families of curves (one per
//! algorithm / placement / skew) in the throughput-delay plane. This
//! module renders such families as fixed-size character grids, each
//! series drawn with its own glyph.
#![allow(clippy::cast_possible_truncation)] // axis binning rounds within terminal-width bounds
#![allow(clippy::cast_precision_loss)] // point counts stay far below 2^53

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Glyphs assigned to series in order.
const GLYPHS: &[char] = &[
    '*', '+', 'o', 'x', '#', '@', '%', '&', '=', '~', '^', '$', '!', '?',
];

/// Renders a family of series into an ASCII plot of `width x height`
/// characters (plus axes and a legend).
pub fn ascii_plot(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 10 && height >= 5, "plot too small");
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if pts.is_empty() {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if xmax == xmin {
        xmax = xmin + 1.0;
    }
    if ymax == ymin {
        ymax = ymin + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy; // y grows upward
            grid[row][cx] = glyph;
        }
    }

    let _ = writeln!(out, "{y_label}");
    for (i, row) in grid.iter().enumerate() {
        let edge = if i == 0 {
            format!("{ymax:>10.2} |")
        } else if i == height - 1 {
            format!("{ymin:>10.2} |")
        } else {
            format!("{:>10} |", "")
        };
        let _ = writeln!(out, "{edge}{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>11}+{}", "", "-".repeat(width));
    let _ = writeln!(
        out,
        "{:>12}{xmin:<12.2}{:>w$.2}",
        "",
        xmax,
        w = width.saturating_sub(12)
    );
    let _ = writeln!(out, "{:>12}{x_label}", "");
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", GLYPHS[si % GLYPHS.len()], s.label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_contains_title_axes_and_legend() {
        let s = vec![
            Series::new("fifo", vec![(1.0, 10.0), (1.0, 20.0)]),
            Series::new("dynamic", vec![(5.0, 15.0), (9.0, 30.0)]),
        ];
        let p = ascii_plot("Figure 4", "throughput", "delay", &s, 40, 10);
        assert!(p.contains("Figure 4"));
        assert!(p.contains("throughput"));
        assert!(p.contains("delay"));
        assert!(p.contains("* fifo"));
        assert!(p.contains("+ dynamic"));
        // Both glyphs appear in the grid.
        assert!(p.contains('*'));
        assert!(p.contains('+'));
    }

    #[test]
    fn extreme_points_land_on_grid_edges() {
        let s = vec![Series::new("s", vec![(0.0, 0.0), (1.0, 1.0)])];
        let p = ascii_plot("t", "x", "y", &s, 20, 6);
        let lines: Vec<&str> = p.lines().collect();
        // Top grid row holds the max-y point at the right edge.
        assert!(lines[2].ends_with('*'));
    }

    #[test]
    fn empty_series_is_handled() {
        let p = ascii_plot("t", "x", "y", &[], 20, 6);
        assert!(p.contains("(no data)"));
    }

    #[test]
    fn constant_values_do_not_divide_by_zero() {
        let s = vec![Series::new("s", vec![(2.0, 3.0), (2.0, 3.0)])];
        let p = ascii_plot("t", "x", "y", &s, 20, 6);
        assert!(p.contains('*'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_plot_rejected() {
        ascii_plot("t", "x", "y", &[], 2, 2);
    }
}
