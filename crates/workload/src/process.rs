//! Request generation scenarios (Section 4).
//!
//! Two scenarios are studied:
//!
//! * **closed queuing** — a fixed number of I/O-bound processes: a new
//!   request is generated immediately after each completion, keeping the
//!   request queue length constant. Workload intensity is set by the
//!   queue length.
//! * **open queuing** — a large pool of clients making sporadic requests,
//!   modeled as a Poisson arrival process. Workload intensity is set by
//!   the mean interarrival time, and the arrival rate is independent of
//!   the service rate.
#![allow(clippy::cast_precision_loss)] // request counts stay far below 2^53

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tapesim_model::{Micros, SimTime};

use tapesim_layout::BlockId;

use crate::clustered::ClusteredSampler;
use crate::request::{Request, RequestId};
use crate::skew::BlockSampler;
use crate::zipf::ZipfSampler;

/// The two arrival scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Constant number of outstanding requests.
    Closed {
        /// The fixed queue length (the paper sweeps 20..=140).
        queue_length: u32,
    },
    /// Poisson arrivals.
    OpenPoisson {
        /// Mean interarrival time between requests.
        mean_interarrival: Micros,
    },
}

impl ArrivalProcess {
    /// The number of requests outstanding at simulation start.
    pub fn initial_requests(&self) -> u32 {
        match *self {
            ArrivalProcess::Closed { queue_length } => queue_length,
            ArrivalProcess::OpenPoisson { .. } => 0,
        }
    }
}

/// Where a factory's block ids come from.
#[derive(Debug, Clone)]
enum Stream {
    /// The paper's hot/cold skew (optionally clustered into runs).
    Clustered(ClusteredSampler),
    /// Zipf popularity (extension).
    Zipf(ZipfSampler),
    /// Replay of a recorded trace, cycling if exhausted (extension; used
    /// for common-random-numbers comparisons).
    Trace { blocks: Vec<BlockId>, pos: usize },
}

/// Mints requests: owns the block stream, the RNG, and the id counter.
#[derive(Debug, Clone)]
pub struct RequestFactory {
    stream: Stream,
    process: ArrivalProcess,
    rng: StdRng,
    next_id: u64,
}

impl RequestFactory {
    /// Creates a factory with a deterministic seed and the paper's
    /// independent request stream.
    pub fn new(sampler: BlockSampler, process: ArrivalProcess, seed: u64) -> Self {
        Self::new_clustered(sampler, process, 0.0, seed)
    }

    /// Creates a factory whose stream continues sequential runs with
    /// probability `run_p` (the clustered-workload extension;
    /// `run_p = 0` is exactly the paper's independent stream).
    pub fn new_clustered(
        sampler: BlockSampler,
        process: ArrivalProcess,
        run_p: f64,
        seed: u64,
    ) -> Self {
        RequestFactory {
            stream: Stream::Clustered(ClusteredSampler::new(sampler, run_p)),
            process,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// Creates a factory drawing blocks from a Zipf popularity
    /// distribution (the finer-grained skew extension).
    pub fn new_zipf(sampler: ZipfSampler, process: ArrivalProcess, seed: u64) -> Self {
        RequestFactory {
            stream: Stream::Zipf(sampler),
            process,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// Creates a factory replaying a recorded block trace (cycling when
    /// the trace is exhausted). The seed still drives the arrival-time
    /// randomness of open-queuing workloads.
    ///
    /// # Panics
    /// Panics on an empty trace.
    pub fn from_trace(blocks: Vec<BlockId>, process: ArrivalProcess, seed: u64) -> Self {
        assert!(!blocks.is_empty(), "cannot replay an empty trace");
        RequestFactory {
            stream: Stream::Trace { blocks, pos: 0 },
            process,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// The arrival process this factory models.
    #[inline]
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }

    /// Mints a request arriving at `arrival`.
    pub fn make(&mut self, arrival: SimTime) -> Request {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let block = match &mut self.stream {
            Stream::Clustered(s) => s.sample(&mut self.rng),
            Stream::Zipf(s) => s.sample(&mut self.rng),
            Stream::Trace { blocks, pos } => {
                let b = blocks[*pos % blocks.len()];
                *pos += 1;
                b
            }
        };
        Request { id, block, arrival }
    }

    /// Number of requests minted so far.
    #[inline]
    pub fn minted(&self) -> u64 {
        self.next_id
    }

    /// For an open process, draws the exponential gap until the next
    /// arrival. Returns `None` for closed processes (arrivals are driven
    /// by completions instead).
    pub fn next_interarrival(&mut self) -> Option<Micros> {
        match self.process {
            ArrivalProcess::Closed { .. } => None,
            ArrivalProcess::OpenPoisson { mean_interarrival } => {
                // Inverse-CDF sampling of Exp(1/mean).
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let gap = -u.ln() * mean_interarrival.as_secs_f64();
                Some(Micros::from_secs_f64(gap))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> BlockSampler {
        BlockSampler::new(1000, 100, 40.0)
    }

    #[test]
    fn ids_are_sequential() {
        let mut f = RequestFactory::new(sampler(), ArrivalProcess::Closed { queue_length: 10 }, 7);
        let a = f.make(SimTime::ZERO);
        let b = f.make(SimTime::from_secs(1));
        assert_eq!(a.id, RequestId(0));
        assert_eq!(b.id, RequestId(1));
        assert_eq!(f.minted(), 2);
    }

    #[test]
    fn factory_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut f =
                RequestFactory::new(sampler(), ArrivalProcess::Closed { queue_length: 10 }, seed);
            (0..100)
                .map(|_| f.make(SimTime::ZERO).block)
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn closed_process_has_no_interarrival() {
        let mut f = RequestFactory::new(sampler(), ArrivalProcess::Closed { queue_length: 10 }, 7);
        assert_eq!(f.next_interarrival(), None);
        assert_eq!(f.process().initial_requests(), 10);
    }

    #[test]
    fn poisson_interarrival_mean_is_right() {
        let mean = Micros::from_secs(120);
        let mut f = RequestFactory::new(
            sampler(),
            ArrivalProcess::OpenPoisson {
                mean_interarrival: mean,
            },
            99,
        );
        assert_eq!(f.process().initial_requests(), 0);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| f.next_interarrival().unwrap().as_secs_f64())
            .sum();
        let observed_mean = total / n as f64;
        assert!(
            (observed_mean - 120.0).abs() < 2.5,
            "mean interarrival {observed_mean}"
        );
    }

    #[test]
    fn poisson_gaps_are_memoryless_ish() {
        // Coefficient of variation of an exponential is 1.
        let mean = Micros::from_secs(60);
        let mut f = RequestFactory::new(
            sampler(),
            ArrivalProcess::OpenPoisson {
                mean_interarrival: mean,
            },
            5,
        );
        let xs: Vec<f64> = (0..20_000)
            .map(|_| f.next_interarrival().unwrap().as_secs_f64())
            .collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        let cv = var.sqrt() / m;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }
}
