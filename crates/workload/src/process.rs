//! Request generation scenarios (Section 4).
//!
//! Two scenarios are studied:
//!
//! * **closed queuing** — a fixed number of I/O-bound processes: a new
//!   request is generated immediately after each completion, keeping the
//!   request queue length constant. Workload intensity is set by the
//!   queue length.
//! * **open queuing** — a large pool of clients making sporadic requests,
//!   modeled as a Poisson arrival process. Workload intensity is set by
//!   the mean interarrival time, and the arrival rate is independent of
//!   the service rate.
#![allow(clippy::cast_precision_loss)] // request counts stay far below 2^53

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tapesim_model::{Micros, SimTime};

use tapesim_layout::BlockId;

use crate::clustered::ClusteredSampler;
use crate::request::{Request, RequestId};
use crate::skew::BlockSampler;
use crate::zipf::ZipfSampler;

/// The two arrival scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Constant number of outstanding requests.
    Closed {
        /// The fixed queue length (the paper sweeps 20..=140).
        queue_length: u32,
    },
    /// Poisson arrivals.
    ///
    /// Gaps are quantized to the 1 µs clock and clamped to ≥ 1 µs (see
    /// [`RequestFactory::next_interarrival`]), which biases the realized
    /// rate when `mean_interarrival` approaches the clock tick. Keep the
    /// mean ≥ ~100 µs for a faithful Poisson process; the paper's
    /// figures use means in seconds-to-minutes, where the bias is
    /// unmeasurable.
    OpenPoisson {
        /// Mean interarrival time between requests.
        mean_interarrival: Micros,
    },
}

impl ArrivalProcess {
    /// The number of requests outstanding at simulation start.
    pub fn initial_requests(&self) -> u32 {
        match *self {
            ArrivalProcess::Closed { queue_length } => queue_length,
            ArrivalProcess::OpenPoisson { .. } => 0,
        }
    }
}

/// Where a factory's block ids come from.
#[derive(Debug, Clone)]
enum Stream {
    /// The paper's hot/cold skew (optionally clustered into runs).
    Clustered(ClusteredSampler),
    /// Zipf popularity (extension).
    Zipf(ZipfSampler),
    /// Replay of a recorded trace, cycling if exhausted (extension; used
    /// for common-random-numbers comparisons).
    Trace { blocks: Vec<BlockId>, pos: usize },
}

/// Mints requests: owns the block stream, the RNG, and the id counter.
#[derive(Debug, Clone)]
pub struct RequestFactory {
    stream: Stream,
    process: ArrivalProcess,
    rng: StdRng,
    next_id: u64,
    gaps_drawn: u64,
}

impl RequestFactory {
    /// Creates a factory with a deterministic seed and the paper's
    /// independent request stream.
    pub fn new(sampler: BlockSampler, process: ArrivalProcess, seed: u64) -> Self {
        Self::new_clustered(sampler, process, 0.0, seed)
    }

    /// Creates a factory whose stream continues sequential runs with
    /// probability `run_p` (the clustered-workload extension;
    /// `run_p = 0` is exactly the paper's independent stream).
    pub fn new_clustered(
        sampler: BlockSampler,
        process: ArrivalProcess,
        run_p: f64,
        seed: u64,
    ) -> Self {
        RequestFactory {
            stream: Stream::Clustered(ClusteredSampler::new(sampler, run_p)),
            process,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            gaps_drawn: 0,
        }
    }

    /// Creates a factory drawing blocks from a Zipf popularity
    /// distribution (the finer-grained skew extension).
    pub fn new_zipf(sampler: ZipfSampler, process: ArrivalProcess, seed: u64) -> Self {
        RequestFactory {
            stream: Stream::Zipf(sampler),
            process,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            gaps_drawn: 0,
        }
    }

    /// Creates a factory replaying a recorded block trace (cycling when
    /// the trace is exhausted). The seed still drives the arrival-time
    /// randomness of open-queuing workloads.
    ///
    /// # Panics
    /// Panics on an empty trace.
    pub fn from_trace(blocks: Vec<BlockId>, process: ArrivalProcess, seed: u64) -> Self {
        assert!(!blocks.is_empty(), "cannot replay an empty trace");
        RequestFactory {
            stream: Stream::Trace { blocks, pos: 0 },
            process,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            gaps_drawn: 0,
        }
    }

    /// The arrival process this factory models.
    #[inline]
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }

    /// Mints a request arriving at `arrival`.
    pub fn make(&mut self, arrival: SimTime) -> Request {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let block = match &mut self.stream {
            Stream::Clustered(s) => s.sample(&mut self.rng),
            Stream::Zipf(s) => s.sample(&mut self.rng),
            Stream::Trace { blocks, pos } => {
                let b = blocks[*pos % blocks.len()];
                *pos += 1;
                b
            }
        };
        Request { id, block, arrival }
    }

    /// Number of requests minted so far.
    #[inline]
    pub fn minted(&self) -> u64 {
        self.next_id
    }

    /// For an open process, draws the exponential gap until the next
    /// arrival. Returns `None` for closed processes (arrivals are driven
    /// by completions instead).
    ///
    /// The gap is clamped to at least 1 µs: `Micros::from_secs_f64`
    /// rounds sub-0.5 µs draws to zero, and a zero gap would stamp two
    /// requests with the same arrival time, leaving their completion
    /// order to queue-insertion incidentals.
    ///
    /// The clamp (and the 1 µs quantization generally) trades a small
    /// rate bias for strictly increasing arrival times, and the trade is
    /// only visible when the mean is within a couple of orders of
    /// magnitude of the clock tick: an Exp(1/m) draw falls below the
    /// 0.5 µs rounding threshold with probability `1 − exp(−0.5µs/m)` —
    /// ≈ 39% at m = 1 µs, ≈ 2.5% at m = 20 µs, ≈ 0.5% at m = 100 µs —
    /// and each affected draw is stretched by less than 1 µs, so the
    /// realized mean exceeds the configured one by well under 1% once
    /// m ≥ ~100 µs (`poisson_rate_bias_is_negligible_at_documented_means`
    /// pins this down). Every figure configuration uses means in the
    /// seconds-to-minutes range, where the bias is unmeasurable; for
    /// sub-100 µs means the process is deliberately *not* a faithful
    /// Poisson source — determinism wins over rate fidelity there.
    pub fn next_interarrival(&mut self) -> Option<Micros> {
        match self.process {
            ArrivalProcess::Closed { .. } => None,
            ArrivalProcess::OpenPoisson { mean_interarrival } => {
                // Inverse-CDF sampling of Exp(1/mean).
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let gap = -u.ln() * mean_interarrival.as_secs_f64();
                self.gaps_drawn += 1;
                Some(Micros::from_secs_f64(gap).max(Micros::from_micros(1)))
            }
        }
    }

    /// Number of interarrival gaps drawn so far (checkpoint bookkeeping;
    /// always 0 for closed processes).
    #[inline]
    pub fn gaps_drawn(&self) -> u64 {
        self.gaps_drawn
    }

    /// Replays `makes` request mints and `gaps` interarrival draws against
    /// a freshly constructed factory, restoring the RNG stream and stream
    /// state to the position a checkpointed factory had recorded.
    ///
    /// The runners interleave factory calls in exactly one of two shapes:
    /// closed processes mint only (`gaps == 0`), and open processes lead
    /// with `gaps - makes` interarrival draws and then strictly alternate
    /// mint/draw. Replaying that canonical order consumes the RNG stream
    /// identically to the original run, so every branch the samplers took
    /// is retaken and the stream lands in the same position.
    ///
    /// Errors if this factory is not fresh or the counts cannot have come
    /// from a supported interleave.
    pub fn replay(&mut self, makes: u64, gaps: u64) -> Result<(), &'static str> {
        if self.next_id != 0 || self.gaps_drawn != 0 {
            return Err("replay requires a freshly constructed factory");
        }
        if gaps != 0 && gaps <= makes {
            return Err("open-process checkpoints draw at least one more gap than mint");
        }
        if gaps != 0 && matches!(self.process, ArrivalProcess::Closed { .. }) {
            return Err("closed-process checkpoints cannot have drawn gaps");
        }
        let leading = gaps.saturating_sub(makes);
        for _ in 0..leading {
            let _ = self.next_interarrival();
        }
        for _ in 0..makes {
            let _ = self.make(SimTime::ZERO);
            if gaps != 0 {
                let _ = self.next_interarrival();
            }
        }
        // `make` bumped `next_id` and the draws bumped `gaps_drawn`, so the
        // counters now equal the checkpointed values by construction.
        debug_assert_eq!(self.next_id, makes);
        debug_assert_eq!(self.gaps_drawn, gaps);
        Ok(())
    }

    /// A position-sensitive fingerprint of the request stream: a probe
    /// draw from a *clone* of the RNG (so the stream itself is
    /// undisturbed) folded with the mint/draw counters. Two factories
    /// agree on this value iff they were built from the same seed and
    /// configuration and have consumed the same call sequence — exactly
    /// the property a bit-identical resume needs.
    pub fn stream_fingerprint(&self) -> u64 {
        let mut probe = self.rng.clone();
        let raw: u64 = probe.gen();
        raw ^ self
            .next_id
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            ^ self.gaps_drawn.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
    }

    /// A canonical description of the factory's configuration (process
    /// parameters and block-stream shape), used by checkpoint config
    /// fingerprints to reject resuming into a differently configured run.
    pub fn config_tag(&self) -> String {
        let process = match self.process {
            ArrivalProcess::Closed { queue_length } => format!("closed:{queue_length}"),
            ArrivalProcess::OpenPoisson { mean_interarrival } => {
                format!("open:{}", mean_interarrival.as_micros())
            }
        };
        let stream = match &self.stream {
            Stream::Clustered(s) => s.config_tag(),
            Stream::Zipf(s) => s.config_tag(),
            Stream::Trace { blocks, .. } => {
                // FNV-1a over the block ids: cheap, deterministic, and
                // sensitive to both content and order.
                let mut h: u64 = 0xCBF2_9CE4_8422_2325;
                for b in blocks {
                    h ^= u64::from(b.0);
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                format!("trace:{}:{h:016x}", blocks.len())
            }
        };
        format!("{process};{stream}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> BlockSampler {
        BlockSampler::new(1000, 100, 40.0)
    }

    #[test]
    fn ids_are_sequential() {
        let mut f = RequestFactory::new(sampler(), ArrivalProcess::Closed { queue_length: 10 }, 7);
        let a = f.make(SimTime::ZERO);
        let b = f.make(SimTime::from_secs(1));
        assert_eq!(a.id, RequestId(0));
        assert_eq!(b.id, RequestId(1));
        assert_eq!(f.minted(), 2);
    }

    #[test]
    fn factory_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut f =
                RequestFactory::new(sampler(), ArrivalProcess::Closed { queue_length: 10 }, seed);
            (0..100)
                .map(|_| f.make(SimTime::ZERO).block)
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn closed_process_has_no_interarrival() {
        let mut f = RequestFactory::new(sampler(), ArrivalProcess::Closed { queue_length: 10 }, 7);
        assert_eq!(f.next_interarrival(), None);
        assert_eq!(f.process().initial_requests(), 10);
    }

    #[test]
    fn poisson_interarrival_mean_is_right() {
        let mean = Micros::from_secs(120);
        let mut f = RequestFactory::new(
            sampler(),
            ArrivalProcess::OpenPoisson {
                mean_interarrival: mean,
            },
            99,
        );
        assert_eq!(f.process().initial_requests(), 0);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| f.next_interarrival().unwrap().as_secs_f64())
            .sum();
        let observed_mean = total / n as f64;
        assert!(
            (observed_mean - 120.0).abs() < 2.5,
            "mean interarrival {observed_mean}"
        );
    }

    #[test]
    fn tiny_interarrival_gaps_never_round_to_zero() {
        // Regression: `Micros::from_secs_f64` rounds sub-0.5 µs draws to
        // zero. With a 1 µs mean, ~40% of exponential draws land below
        // 0.5 µs, so a few thousand draws hit the old bug with
        // overwhelming probability.
        for seed in 0..4 {
            let mut f = RequestFactory::new(
                sampler(),
                ArrivalProcess::OpenPoisson {
                    mean_interarrival: Micros::from_micros(1),
                },
                seed,
            );
            for _ in 0..10_000 {
                let gap = f.next_interarrival().unwrap();
                assert!(gap >= Micros::from_micros(1), "gap rounded to {gap:?}");
            }
        }
    }

    #[test]
    fn tiny_mean_arrival_times_stay_strictly_increasing() {
        // The clamp is what guarantees two requests never share a
        // timestamp, whatever the intensity.
        for mean_us in [1u64, 2, 7] {
            let mut f = RequestFactory::new(
                sampler(),
                ArrivalProcess::OpenPoisson {
                    mean_interarrival: Micros::from_micros(mean_us),
                },
                99,
            );
            let mut at = SimTime::ZERO;
            for _ in 0..5_000 {
                let next = at + f.next_interarrival().unwrap();
                assert!(next > at, "arrival time did not advance");
                at = next;
            }
        }
    }

    #[test]
    fn poisson_rate_bias_is_negligible_at_documented_means() {
        // The 1 µs clamp/quantization biases the realized rate only when
        // the mean approaches the clock tick (see `next_interarrival`).
        // At the documented ≥ ~100 µs boundary the realized mean matches
        // the configured one to well under 1%; at a 1 µs mean the
        // distortion is gross — the documented "not a faithful Poisson
        // source" regime.
        let realized_mean_us = |mean_us: u64, n: u32| {
            let mut f = RequestFactory::new(
                sampler(),
                ArrivalProcess::OpenPoisson {
                    mean_interarrival: Micros::from_micros(mean_us),
                },
                77,
            );
            let total_s: f64 = (0..n)
                .map(|_| f.next_interarrival().unwrap().as_secs_f64())
                .sum();
            total_s * 1e6 / f64::from(n)
        };
        let at_100us = realized_mean_us(100, 200_000);
        assert!(
            (at_100us - 100.0).abs() / 100.0 < 0.01,
            "realized mean {at_100us} µs drifted more than 1% from the configured 100 µs"
        );
        let at_1us = realized_mean_us(1, 50_000);
        assert!(
            at_1us > 1.2,
            "expected gross clamp bias at a 1 µs mean, got {at_1us} µs"
        );
    }

    #[test]
    fn replay_restores_open_stream_position() {
        let proc = ArrivalProcess::OpenPoisson {
            mean_interarrival: Micros::from_secs(120),
        };
        let mut live = RequestFactory::new(sampler(), proc, 7);
        // The engine's open-mode interleave: one leading gap, then a
        // strict mint/draw alternation.
        let _ = live.next_interarrival();
        for _ in 0..57 {
            let _ = live.make(SimTime::ZERO);
            let _ = live.next_interarrival();
        }
        let fp = live.stream_fingerprint();
        let mut resumed = RequestFactory::new(sampler(), proc, 7);
        resumed.replay(live.minted(), live.gaps_drawn()).unwrap();
        assert_eq!(resumed.stream_fingerprint(), fp);
        for _ in 0..50 {
            assert_eq!(live.make(SimTime::ZERO), resumed.make(SimTime::ZERO));
            assert_eq!(live.next_interarrival(), resumed.next_interarrival());
        }
    }

    #[test]
    fn replay_restores_closed_stream_and_fingerprint_detects_wrong_seed() {
        let proc = ArrivalProcess::Closed { queue_length: 60 };
        let mut live = RequestFactory::new(sampler(), proc, 11);
        for _ in 0..200 {
            let _ = live.make(SimTime::ZERO);
        }
        let mut resumed = RequestFactory::new(sampler(), proc, 11);
        resumed.replay(live.minted(), live.gaps_drawn()).unwrap();
        assert_eq!(resumed.stream_fingerprint(), live.stream_fingerprint());
        assert_eq!(
            live.make(SimTime::ZERO).block,
            resumed.make(SimTime::ZERO).block
        );
        // A wrong seed replays cleanly but lands on a different stream.
        let mut wrong = RequestFactory::new(sampler(), proc, 12);
        wrong.replay(201, 0).unwrap();
        assert_ne!(wrong.stream_fingerprint(), live.stream_fingerprint());
    }

    #[test]
    fn replay_rejects_dirty_factories_and_impossible_counts() {
        let proc = ArrivalProcess::Closed { queue_length: 60 };
        let mut dirty = RequestFactory::new(sampler(), proc, 1);
        let _ = dirty.make(SimTime::ZERO);
        assert!(dirty.replay(5, 0).is_err());
        let mut fresh = RequestFactory::new(sampler(), proc, 1);
        assert!(fresh.replay(5, 3).is_err(), "gaps <= makes is impossible");
        let mut closed = RequestFactory::new(sampler(), proc, 1);
        assert!(closed.replay(2, 7).is_err(), "closed draws no gaps");
    }

    #[test]
    fn poisson_gaps_are_memoryless_ish() {
        // Coefficient of variation of an exponential is 1.
        let mean = Micros::from_secs(60);
        let mut f = RequestFactory::new(
            sampler(),
            ArrivalProcess::OpenPoisson {
                mean_interarrival: mean,
            },
            5,
        );
        let xs: Vec<f64> = (0..20_000)
            .map(|_| f.next_interarrival().unwrap().as_secs_f64())
            .collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        let cv = var.sqrt() / m;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }
}
