//! Clustered (Markov-run) request streams — an extension beyond the
//! paper's workload assumptions.
//!
//! The paper explicitly assumes independent block requests and notes that
//! it does "not exploit performance gains from clustered or Markov-type
//! data dependencies" (Section 4). This module provides the workload the
//! paper excluded: with probability `run_p` a request continues a
//! sequential run (the block after the previous request, within the same
//! heat class), otherwise it starts a fresh independent draw from the
//! hot/cold sampler. Sequential runs reward schedulers that sweep in
//! position order, so this is a natural ablation of the paper's
//! independence assumption.

use rand::rngs::StdRng;
use rand::Rng;

use tapesim_layout::BlockId;

use crate::skew::BlockSampler;

/// A sampler that produces sequential runs over the hot/cold skew model.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredSampler {
    base: BlockSampler,
    /// Probability of continuing the current run.
    run_p: f64,
    last: Option<BlockId>,
}

impl ClusteredSampler {
    /// Wraps a hot/cold sampler with run probability `run_p` in `[0, 1)`.
    /// `run_p = 0` reproduces the paper's independent stream exactly.
    ///
    /// # Panics
    /// Panics if `run_p` is not in `[0, 1)`.
    pub fn new(base: BlockSampler, run_p: f64) -> Self {
        assert!((0.0..1.0).contains(&run_p), "run_p must be in [0, 1)");
        ClusteredSampler {
            base,
            run_p,
            last: None,
        }
    }

    /// The run-continuation probability.
    #[inline]
    pub fn run_p(&self) -> f64 {
        self.run_p
    }

    /// Expected run length `1 / (1 - run_p)`.
    #[inline]
    pub fn mean_run_length(&self) -> f64 {
        1.0 / (1.0 - self.run_p)
    }

    /// Canonical configuration description for checkpoint fingerprints.
    pub fn config_tag(&self) -> String {
        format!("clustered:{}:{}", self.run_p, self.base.config_tag())
    }

    /// Draws the next block id: continues the current run within the same
    /// heat class, or starts a new independent draw.
    pub fn sample(&mut self, rng: &mut StdRng) -> BlockId {
        let next = match self.last {
            Some(prev) if self.run_p > 0.0 && rng.gen::<f64>() < self.run_p => {
                // Successor within the same class, wrapping at the class
                // boundary so runs never leak between hot and cold.
                let hot = self.base.hot_count();
                let total = self.base.total();
                let succ = prev.0 + 1;
                if prev.0 < hot {
                    BlockId(if succ < hot { succ } else { 0 })
                } else {
                    BlockId(if succ < total { succ } else { hot })
                }
            }
            _ => self.base.sample(rng),
        };
        self.last = Some(next);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn base() -> BlockSampler {
        BlockSampler::new(100, 10, 40.0)
    }

    #[test]
    fn zero_run_p_is_independent() {
        let mut c = ClusteredSampler::new(base(), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        // Count immediate successors; with p = 0 they are rare (~1%).
        let mut succ = 0;
        let mut prev = c.sample(&mut rng);
        for _ in 0..5_000 {
            let x = c.sample(&mut rng);
            if x.0 == prev.0 + 1 {
                succ += 1;
            }
            prev = x;
        }
        assert!(succ < 150, "{succ} successors out of 5000");
    }

    #[test]
    fn high_run_p_produces_long_runs() {
        let mut c = ClusteredSampler::new(base(), 0.9);
        assert!((c.mean_run_length() - 10.0).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(2);
        let mut succ = 0;
        let mut prev = c.sample(&mut rng);
        let n = 5_000;
        for _ in 0..n {
            let x = c.sample(&mut rng);
            if x.0 == prev.0 + 1 || (prev.0 == 9 && x.0 == 0) || (prev.0 == 99 && x.0 == 10) {
                succ += 1;
            }
            prev = x;
        }
        let frac = succ as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.03, "run fraction {frac}");
    }

    #[test]
    fn runs_never_cross_the_heat_boundary() {
        let mut c = ClusteredSampler::new(base(), 0.95);
        let mut rng = StdRng::seed_from_u64(3);
        let mut prev = c.sample(&mut rng);
        for _ in 0..20_000 {
            let x = c.sample(&mut rng);
            if x.0 == prev.0 + 1 {
                // A run step stays within one class.
                assert_eq!(prev.0 < 10, x.0 < 10, "run crossed boundary");
            }
            assert!(x.0 < 100);
            prev = x;
        }
    }

    #[test]
    #[should_panic(expected = "run_p")]
    fn run_p_one_rejected() {
        ClusteredSampler::new(base(), 1.0);
    }
}
