//! The hot/cold skew model (Section 4).
//!
//! Skew is characterized by two parameters: the percent of tape-resident
//! data that are hot (`PH`, a property of the catalog) and the percent of
//! tape requests directed to hot data (`RH`). A hot request selects one of
//! the hot blocks uniformly at random; a cold request selects one of the
//! cold blocks uniformly at random. Requested block numbers are
//! independent of one another.
#![allow(clippy::cast_precision_loss)] // request counts stay far below 2^53

use rand::rngs::StdRng;
use rand::Rng;

use tapesim_layout::{BlockId, Catalog};

/// Uniform-within-class hot/cold block sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSampler {
    hot_count: u32,
    total: u32,
    /// Probability that a request is directed at hot data.
    rh_fraction: f64,
}

impl BlockSampler {
    /// Creates a sampler over `total` blocks whose first `hot_count` are
    /// hot, with `rh_percent` percent of requests directed to hot data.
    ///
    /// If either class is empty, all requests go to the other class
    /// regardless of `rh_percent`.
    ///
    /// # Panics
    /// Panics if `total == 0`, `hot_count > total`, or `rh_percent` is
    /// outside `[0, 100]`.
    pub fn new(total: u32, hot_count: u32, rh_percent: f64) -> Self {
        assert!(total > 0, "cannot sample from an empty catalog");
        assert!(hot_count <= total, "hot count exceeds total");
        assert!(
            (0.0..=100.0).contains(&rh_percent),
            "rh_percent out of range"
        );
        let rh_fraction = if hot_count == 0 {
            0.0
        } else if hot_count == total {
            1.0
        } else {
            rh_percent / 100.0
        };
        BlockSampler {
            hot_count,
            total,
            rh_fraction,
        }
    }

    /// Creates a sampler matching a catalog's hot/cold partition. For an
    /// erasure-striped catalog this samples *logical* blocks (the
    /// request-visible unit), not shard cells; for a plain catalog the
    /// logical accessors are the physical ones, so nothing changes.
    pub fn from_catalog(catalog: &Catalog, rh_percent: f64) -> Self {
        BlockSampler::new(
            catalog.logical_num_blocks(),
            catalog.logical_hot_count(),
            rh_percent,
        )
    }

    /// Draws one block id.
    pub fn sample(&self, rng: &mut StdRng) -> BlockId {
        let hot = self.rh_fraction > 0.0 && rng.gen::<f64>() < self.rh_fraction;
        if hot {
            BlockId(rng.gen_range(0..self.hot_count))
        } else {
            BlockId(rng.gen_range(self.hot_count..self.total))
        }
    }

    /// The number of hot blocks.
    #[inline]
    pub fn hot_count(&self) -> u32 {
        self.hot_count
    }

    /// Canonical configuration description for checkpoint fingerprints.
    pub fn config_tag(&self) -> String {
        format!(
            "skew:{}:{}:{}",
            self.total, self.hot_count, self.rh_fraction
        )
    }

    /// The total number of blocks.
    #[inline]
    pub fn total(&self) -> u32 {
        self.total
    }

    /// The effective probability of a hot request.
    #[inline]
    pub fn rh_fraction(&self) -> f64 {
        self.rh_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn hot_fraction_is_respected() {
        let s = BlockSampler::new(1000, 100, 40.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let hot = (0..n).filter(|_| s.sample(&mut rng).0 < 100).count() as f64;
        let frac = hot / n as f64;
        assert!((frac - 0.4).abs() < 0.01, "hot fraction {frac}");
    }

    #[test]
    fn within_class_is_uniform() {
        let s = BlockSampler::new(100, 10, 50.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[s.sample(&mut rng).index()] += 1;
        }
        // Each hot block ~ 5000, each cold block ~ 555.
        for &c in &counts[..10] {
            assert!((4500..5500).contains(&c), "hot count {c}");
        }
        for &c in &counts[10..] {
            assert!((400..750).contains(&c), "cold count {c}");
        }
    }

    #[test]
    fn zero_hot_blocks_always_cold() {
        let s = BlockSampler::new(50, 0, 90.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(s.sample(&mut rng).0 < 50);
        }
        assert_eq!(s.rh_fraction(), 0.0);
    }

    #[test]
    fn all_hot_blocks_always_hot() {
        let s = BlockSampler::new(50, 50, 10.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(s.sample(&mut rng).0 < 50);
        }
        assert_eq!(s.rh_fraction(), 1.0);
    }

    #[test]
    fn rh_zero_never_samples_hot() {
        let s = BlockSampler::new(100, 10, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(s.sample(&mut rng).0 >= 10);
        }
    }

    #[test]
    fn rh_hundred_always_samples_hot() {
        let s = BlockSampler::new(100, 10, 100.0);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(s.sample(&mut rng).0 < 10);
        }
    }

    #[test]
    #[should_panic(expected = "empty catalog")]
    fn empty_catalog_rejected() {
        BlockSampler::new(0, 0, 50.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rh_rejected() {
        BlockSampler::new(10, 1, 150.0);
    }
}
