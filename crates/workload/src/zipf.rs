//! Zipf-distributed block popularity — a finer-grained skew model than
//! the paper's two-class hot/cold partition.
//!
//! The paper characterizes skew by `(PH, RH)`: PH% of blocks receive RH%
//! of requests, uniformly within each class. Real access distributions
//! are usually closer to a Zipf law, where the `i`-th most popular block
//! is requested with probability proportional to `1 / i^theta`. This
//! module provides such a sampler (block id 0 = most popular, matching
//! the catalog convention that hot blocks are a prefix) so the paper's
//! conclusions can be checked under a smoother skew (`ext_zipf`).
#![allow(clippy::cast_possible_truncation)] // block populations are u32-bounded catalog sizes
#![allow(clippy::cast_precision_loss)] // populations stay far below 2^53

use rand::rngs::StdRng;
use rand::Rng;

use tapesim_layout::BlockId;

/// Samples block ids with Zipf(`theta`) popularity over `total` blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfSampler {
    /// Cumulative distribution over block ids.
    cdf: Vec<f64>,
    theta: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `total` blocks with exponent `theta >= 0`
    /// (0 = uniform; 1 = classic Zipf).
    ///
    /// # Panics
    /// Panics if `total == 0` or `theta` is negative/non-finite.
    pub fn new(total: u32, theta: f64) -> Self {
        assert!(total > 0, "cannot sample from an empty catalog");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be a non-negative finite number"
        );
        let mut cdf = Vec::with_capacity(total as usize);
        let mut acc = 0.0;
        for i in 1..=total as u64 {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let norm = acc;
        for c in &mut cdf {
            *c /= norm;
        }
        ZipfSampler { cdf, theta }
    }

    /// The exponent.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The number of blocks.
    #[inline]
    pub fn total(&self) -> u32 {
        self.cdf.len() as u32
    }

    /// Canonical configuration description for checkpoint fingerprints.
    pub fn config_tag(&self) -> String {
        format!("zipf:{}:{}", self.total(), self.theta)
    }

    /// Draws one block id (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> BlockId {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u);
        BlockId(idx.min(self.cdf.len() - 1) as u32)
    }

    /// Fraction of all requests that hit the `top` most popular blocks —
    /// the Zipf analogue of the paper's RH for PH = `top / total`.
    pub fn mass_of_top(&self, top: u32) -> f64 {
        if top == 0 {
            return 0.0;
        }
        self.cdf[(top.min(self.total()) - 1) as usize]
    }

    /// Finds the exponent whose top-`ph_percent` blocks receive
    /// approximately `rh_percent` of the requests — the Zipf distribution
    /// "equivalent" to a paper `(PH, RH)` skew. Bisection over theta.
    pub fn matching_exponent(total: u32, ph_percent: f64, rh_percent: f64) -> f64 {
        assert!(total > 0);
        assert!((0.0..100.0).contains(&ph_percent) && ph_percent > 0.0);
        assert!((0.0..100.0).contains(&rh_percent) && rh_percent > 0.0);
        let top = ((total as f64 * ph_percent / 100.0).round() as u32).clamp(1, total);
        let target = rh_percent / 100.0;
        let (mut lo, mut hi) = (0.0_f64, 8.0_f64);
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            let mass = ZipfSampler::new(total, mid).mass_of_top(top);
            if mass < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo + hi) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = ZipfSampler::new(100, 0.0);
        assert!((z.mass_of_top(10) - 0.10).abs() < 1e-12);
        assert!((z.mass_of_top(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_grows_with_theta() {
        let m: Vec<f64> = [0.0, 0.5, 1.0, 1.5]
            .iter()
            .map(|&t| ZipfSampler::new(1000, t).mass_of_top(100))
            .collect();
        for w in m.windows(2) {
            assert!(w[1] > w[0], "{w:?}");
        }
        // Classic Zipf over 1000 items: top 10% draw well over half.
        assert!(m[2] > 0.6, "theta=1 mass {}", m[2]);
    }

    #[test]
    fn empirical_frequencies_match_cdf() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| z.sample(&mut rng).0 < 5).count();
        let expect = z.mass_of_top(5);
        let got = hits as f64 / n as f64;
        assert!((got - expect).abs() < 0.01, "got {got}, expect {expect}");
    }

    #[test]
    fn most_popular_block_is_id_zero() {
        let z = ZipfSampler::new(20, 1.2);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 20];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng).index()] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max);
        // Monotone-ish decay.
        assert!(counts[0] > counts[5]);
        assert!(counts[5] > counts[19]);
    }

    #[test]
    fn matching_exponent_hits_the_target_mass() {
        // PH-10 / RH-40 over 4480 blocks (the paper's default jukebox).
        let theta = ZipfSampler::matching_exponent(4480, 10.0, 40.0);
        let z = ZipfSampler::new(4480, theta);
        let mass = z.mass_of_top(448);
        assert!((mass - 0.40).abs() < 0.005, "mass {mass} at theta {theta}");
    }

    #[test]
    #[should_panic(expected = "empty catalog")]
    fn zero_total_rejected() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_theta_rejected() {
        ZipfSampler::new(10, -1.0);
    }
}
