//! Read requests and their identifiers.

use std::fmt;

use tapesim_layout::BlockId;
use tapesim_model::SimTime;

/// Monotonically increasing identifier of a request. Arrival order equals
/// id order, so the "oldest request" policies can compare ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// A read request for one logical block (Section 2.2: the workload
/// consists of random logical block reads; writes go to disk-resident
/// delta files and are outside this study).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Identifier; also encodes arrival order.
    pub id: RequestId,
    /// The requested logical block.
    pub block: BlockId,
    /// When the request entered the system.
    pub arrival: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_order_is_arrival_order() {
        assert!(RequestId(3) < RequestId(10));
        assert_eq!(RequestId(5).to_string(), "req5");
    }

    #[test]
    fn request_is_copy_and_comparable() {
        let r = Request {
            id: RequestId(1),
            block: BlockId(9),
            arrival: SimTime::from_secs(2),
        };
        let s = r;
        assert_eq!(r, s);
    }
}
