//! # tapesim-workload
//!
//! Request generation for the tape-jukebox simulator: the hot/cold skew
//! model (`PH`/`RH`) and the closed- and open-queuing arrival scenarios of
//! Section 4 of *Scheduling and Data Replication to Improve Tape Jukebox
//! Performance* (ICDE 1999).
//!
//! All randomness flows through a seeded [`rand::rngs::StdRng`], so a
//! `(configuration, seed)` pair always reproduces the same request stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustered;
pub mod process;
pub mod request;
pub mod skew;
pub mod trace;
pub mod zipf;

pub use clustered::ClusteredSampler;
pub use process::{ArrivalProcess, RequestFactory};
pub use request::{Request, RequestId};
pub use skew::BlockSampler;
pub use trace::{generate_trace, generate_zipf_trace};
pub use zipf::ZipfSampler;
