//! Request traces: record a block sequence once, replay it under several
//! configurations.
//!
//! Replaying an identical trace is the common-random-numbers variance
//! reduction: two schedulers compared on the *same* request sequence
//! differ only by their scheduling decisions, not by sampling noise.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tapesim_layout::BlockId;

use crate::skew::BlockSampler;
use crate::zipf::ZipfSampler;

/// Generates a trace of `n` block ids from a hot/cold sampler.
pub fn generate_trace(sampler: &BlockSampler, n: usize, seed: u64) -> Vec<BlockId> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| sampler.sample(&mut rng)).collect()
}

/// Generates a trace of `n` block ids from a Zipf sampler.
pub fn generate_zipf_trace(sampler: &ZipfSampler, n: usize, seed: u64) -> Vec<BlockId> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| sampler.sample(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        let s = BlockSampler::new(100, 10, 40.0);
        assert_eq!(generate_trace(&s, 50, 1), generate_trace(&s, 50, 1));
        assert_ne!(generate_trace(&s, 50, 1), generate_trace(&s, 50, 2));
    }

    #[test]
    fn zipf_traces_are_deterministic() {
        let z = ZipfSampler::new(100, 1.0);
        assert_eq!(
            generate_zipf_trace(&z, 50, 1),
            generate_zipf_trace(&z, 50, 1)
        );
    }

    #[test]
    fn trace_respects_sampler_range() {
        let s = BlockSampler::new(30, 3, 50.0);
        for b in generate_trace(&s, 1000, 9) {
            assert!(b.0 < 30);
        }
    }
}
