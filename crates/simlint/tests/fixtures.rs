//! Fixture self-tests: every lint family must fire on its known-bad
//! fixture and stay silent on the known-good ones.
//!
//! Fixtures live in `crates/simlint/fixtures/`, which the workspace
//! walker skips, so the intentionally-bad code never pollutes the live
//! scan. Each fixture is checked under a synthetic `FileCtx` that places
//! it in library code of a unit-carrying crate (`crates/sim/src/`), the
//! strictest scope.

#![forbid(unsafe_code)]

use std::path::Path;

use simlint::diag::Diagnostic;
use simlint::lints::check_file;
use simlint::scan::FileCtx;

fn check_fixture(name: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let ctx = FileCtx::classify(&format!("crates/sim/src/{name}"));
    check_file(&ctx, &src)
}

fn ids(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.lint.id()).collect()
}

#[test]
fn hash_order_fires_on_hash_collections() {
    let diags = check_fixture("bad_hash_order.rs");
    assert_eq!(diags.len(), 5, "{:?}", ids(&diags));
    assert!(diags.iter().all(|d| d.lint.id() == "hash-order"));
}

#[test]
fn wall_clock_fires_everywhere_including_tests() {
    let diags = check_fixture("bad_wall_clock.rs");
    assert_eq!(diags.len(), 3, "{:?}", ids(&diags));
    assert!(diags.iter().all(|d| d.lint.id() == "wall-clock"));
    // One of the three sits inside #[cfg(test)] — wall-clock has no
    // test exemption.
    assert!(diags.iter().any(|d| d.line > 10));
}

#[test]
fn ambient_rng_fires_on_thread_rng_and_random() {
    let diags = check_fixture("bad_ambient_rng.rs");
    assert_eq!(diags.len(), 2, "{:?}", ids(&diags));
    assert!(diags.iter().all(|d| d.lint.id() == "ambient-rng"));
}

#[test]
fn unit_cast_fires_on_unit_carrying_operands_only() {
    let diags = check_fixture("bad_unit_cast.rs");
    // `delay_micros as f64` and `size_mb as u64` are flagged; the
    // unit-less `s as f64` is not.
    assert_eq!(diags.len(), 2, "{:?}", ids(&diags));
    assert!(diags.iter().all(|d| d.lint.id() == "unit-cast"));
}

#[test]
fn unit_const_fires_on_inline_conversion_constants() {
    let diags = check_fixture("bad_unit_const.rs");
    assert_eq!(diags.len(), 2, "{:?}", ids(&diags));
    assert!(diags.iter().all(|d| d.lint.id() == "unit-const"));
}

#[test]
fn panic_fires_on_unwrap_expect_panic_and_const_index() {
    let diags = check_fixture("bad_panic.rs");
    assert_eq!(diags.len(), 4, "{:?}", ids(&diags));
    assert!(diags.iter().all(|d| d.lint.id() == "panic"));
}

#[test]
fn malformed_annotation_is_reported_and_does_not_allow() {
    let diags = check_fixture("bad_malformed_annotation.rs");
    // The reason-less annotation is itself an error, and it suppresses
    // nothing: all three HashMap mentions still fire.
    assert_eq!(
        diags.iter().filter(|d| d.lint.id() == "hash-order").count(),
        3,
        "{:?}",
        ids(&diags)
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("annotation") || d.snippet.contains("allow")),
        "missing malformed-annotation diagnostic: {:?}",
        ids(&diags)
    );
}

#[test]
fn annotated_fixture_is_clean() {
    let diags = check_fixture("good_annotated.rs");
    assert!(diags.is_empty(), "{:?}", ids(&diags));
}

#[test]
fn clean_fixture_is_clean() {
    let diags = check_fixture("good_clean.rs");
    assert!(diags.is_empty(), "{:?}", ids(&diags));
}

#[test]
fn bad_fixtures_are_silent_outside_lint_scope() {
    // The same hash-using source is fine in a bench target: hash-order
    // only guards result-affecting library code.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("bad_hash_order.rs");
    let src = std::fs::read_to_string(path).expect("fixture readable");
    let ctx = FileCtx::classify("crates/bench/benches/bad_hash_order.rs");
    let diags = check_file(&ctx, &src);
    assert!(diags.is_empty(), "{:?}", ids(&diags));
}
