//! Fixture self-tests: every lint family must fire on its known-bad
//! fixture and stay silent on the known-good ones.
//!
//! Fixtures live in `crates/simlint/fixtures/`, which the workspace
//! walker skips, so the intentionally-bad code never pollutes the live
//! scan. Each fixture is checked under a synthetic `FileCtx` that places
//! it in library code of a unit-carrying crate (`crates/sim/src/`), the
//! strictest scope.

#![forbid(unsafe_code)]

use std::path::Path;

use simlint::diag::Diagnostic;
use simlint::lints::check_file;
use simlint::scan::FileCtx;

fn check_fixture(name: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let ctx = FileCtx::classify(&format!("crates/sim/src/{name}"));
    check_file(&ctx, &src)
}

fn ids(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.lint.id()).collect()
}

fn count(diags: &[Diagnostic], id: &str) -> usize {
    diags.iter().filter(|d| d.lint.id() == id).count()
}

#[test]
fn hash_order_fires_on_hash_collections() {
    let diags = check_fixture("bad_hash_order.rs");
    assert_eq!(diags.len(), 5, "{:?}", ids(&diags));
    assert!(diags.iter().all(|d| d.lint.id() == "hash-order"));
}

#[test]
fn wall_clock_fires_everywhere_including_tests() {
    let diags = check_fixture("bad_wall_clock.rs");
    assert_eq!(diags.len(), 3, "{:?}", ids(&diags));
    assert!(diags.iter().all(|d| d.lint.id() == "wall-clock"));
    // One of the three sits inside #[cfg(test)] — wall-clock has no
    // test exemption.
    assert!(diags.iter().any(|d| d.line > 10));
}

#[test]
fn ambient_rng_fires_on_thread_rng_and_random() {
    let diags = check_fixture("bad_ambient_rng.rs");
    assert_eq!(diags.len(), 2, "{:?}", ids(&diags));
    assert!(diags.iter().all(|d| d.lint.id() == "ambient-rng"));
}

#[test]
fn unit_cast_fires_on_unit_carrying_operands_only() {
    let diags = check_fixture("bad_unit_cast.rs");
    // `delay_micros as f64` and `size_mb as u64` are the token lint's
    // findings; the dataflow pass separately sees the mixed-dimension
    // `d + s as f64` and the tracked `s` leaking into a raw cast.
    assert_eq!(count(&diags, "unit-cast"), 2, "{:?}", ids(&diags));
    assert_eq!(count(&diags, "unit-flow"), 2, "{:?}", ids(&diags));
    assert_eq!(diags.len(), 4, "{:?}", ids(&diags));
}

#[test]
fn unit_const_fires_on_inline_conversion_constants() {
    let diags = check_fixture("bad_unit_const.rs");
    assert_eq!(diags.len(), 2, "{:?}", ids(&diags));
    assert!(diags.iter().all(|d| d.lint.id() == "unit-const"));
}

#[test]
fn panic_fires_on_unwrap_expect_panic_and_const_index() {
    let diags = check_fixture("bad_panic.rs");
    assert_eq!(diags.len(), 4, "{:?}", ids(&diags));
    assert!(diags.iter().all(|d| d.lint.id() == "panic"));
}

#[test]
fn malformed_annotation_is_reported_and_does_not_allow() {
    let diags = check_fixture("bad_malformed_annotation.rs");
    // The reason-less annotation is itself an error, and it suppresses
    // nothing: all three HashMap mentions still fire.
    assert_eq!(
        diags.iter().filter(|d| d.lint.id() == "hash-order").count(),
        3,
        "{:?}",
        ids(&diags)
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("annotation") || d.snippet.contains("allow")),
        "missing malformed-annotation diagnostic: {:?}",
        ids(&diags)
    );
}

#[test]
fn annotated_fixture_is_clean() {
    let diags = check_fixture("good_annotated.rs");
    assert!(diags.is_empty(), "{:?}", ids(&diags));
}

#[test]
fn clean_fixture_is_clean() {
    let diags = check_fixture("good_clean.rs");
    assert!(diags.is_empty(), "{:?}", ids(&diags));
}

#[test]
fn unit_flow_fires_on_dataflow_only_mismatches() {
    let diags = check_fixture("bad_unit_flow.rs");
    // Mixed-dimension arithmetic through a binding, a binding whose name
    // contradicts its initializer's scale, and a tracked `Duration`
    // accessor result leaking into a raw cast.
    assert_eq!(count(&diags, "unit-flow"), 3, "{:?}", ids(&diags));
}

#[test]
fn unit_flow_good_fixture_is_clean() {
    let diags = check_fixture("good_unit_flow.rs");
    assert!(diags.is_empty(), "{:?}", ids(&diags));
}

#[test]
fn order_totality_fires_on_partial_orders_and_unstable_ties() {
    let diags = check_fixture("bad_order_totality.rs");
    // partial_cmp().unwrap(), sort_unstable_by with a comparator, a
    // float sort key, and a BinaryHeap over floats. (The `.unwrap()`
    // additionally trips the panic lint — separate family.)
    assert_eq!(count(&diags, "order-totality"), 4, "{:?}", ids(&diags));
    assert!(
        diags
            .iter()
            .filter(|d| d.lint.id() == "order-totality")
            .filter(|d| d.fix.is_some())
            .count()
            >= 2,
        "partial_cmp and sort_unstable_by rewrites expected: {:?}",
        ids(&diags)
    );
}

#[test]
fn order_totality_good_fixture_is_clean() {
    let diags = check_fixture("good_order_totality.rs");
    assert_eq!(count(&diags, "order-totality"), 0, "{:?}", ids(&diags));
}

#[test]
fn par_contract_fires_on_machinery_outside_par_module() {
    let diags = check_fixture("bad_par_contract.rs");
    // Mutex ident + its smuggling alias, thread::spawn, a RefCell built
    // inside the worker closure, and an arrival-order try_recv drain.
    assert_eq!(count(&diags, "par-contract"), 5, "{:?}", ids(&diags));
}

#[test]
fn par_contract_good_fixture_is_clean() {
    let diags = check_fixture("good_par_contract.rs");
    assert!(diags.is_empty(), "{:?}", ids(&diags));
}

#[test]
fn par_contract_primitive_scan_exempts_par_module() {
    // The same machinery under the `par.rs` basename keeps only the
    // everywhere-checks (closure captures, arrival-order drains).
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("bad_par_contract.rs");
    let src = std::fs::read_to_string(path).expect("fixture readable");
    let ctx = FileCtx::classify("crates/sim/src/par.rs");
    let diags = simlint::lints::check_file(&ctx, &src);
    let msgs: Vec<_> = diags
        .iter()
        .filter(|d| d.lint.id() == "par-contract")
        .map(|d| d.message.as_str())
        .collect();
    assert_eq!(msgs.len(), 2, "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("shared-mutable")),
        "{msgs:?}"
    );
    assert!(msgs.iter().any(|m| m.contains("arrival order")), "{msgs:?}");
}

#[test]
fn fix_rewrites_fixable_fixture_and_is_idempotent() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("bad_fixable.rs");
    let src = std::fs::read_to_string(path).expect("fixture readable");
    let ctx = FileCtx::classify("crates/sim/src/bad_fixable.rs");

    let diags = simlint::lints::check_file(&ctx, &src);
    let once = simlint::fixes::apply_to_source(&src, &diags).expect("fixes available");
    assert!(once.contains("use std::collections::BTreeMap;"), "{once}");
    assert!(once.contains("BTreeMap::new()"), "{once}");
    assert!(once.contains("a.total_cmp(b)"), "{once}");
    assert!(once.contains("v.sort_by(|a, b| a.1.cmp(&b.1))"), "{once}");
    assert!(!once.contains("HashMap"), "{once}");
    assert!(!once.contains("partial_cmp"), "{once}");

    // Idempotence: the fixed source has no fixable findings left, so a
    // second `--fix` pass is a no-op.
    let rediags = simlint::lints::check_file(&ctx, &once);
    assert!(
        rediags.iter().all(|d| d.fix.is_none()),
        "{:?}",
        ids(&rediags)
    );
    let twice = simlint::fixes::apply_to_source(&once, &rediags);
    assert!(twice.is_none(), "{twice:?}");
}

#[test]
fn json_report_schema_is_versioned() {
    let diags = check_fixture("bad_order_totality.rs");
    let json = simlint::diag::to_json(&diags, 1, Path::new("/tmp"));
    assert_eq!(simlint::diag::SCHEMA_VERSION, 2);
    assert!(json.contains("\"schema_version\": 2"), "{json}");
    assert!(json.contains("\"fixable\": true"), "{json}");
    assert!(json.contains("\"fixable\": false"), "{json}");
}

#[test]
fn bad_fixtures_are_silent_outside_lint_scope() {
    // The same hash-using source is fine in a bench target: hash-order
    // only guards result-affecting library code.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("bad_hash_order.rs");
    let src = std::fs::read_to_string(path).expect("fixture readable");
    let ctx = FileCtx::classify("crates/bench/benches/bad_hash_order.rs");
    let diags = check_file(&ctx, &src);
    assert!(diags.is_empty(), "{:?}", ids(&diags));
}
