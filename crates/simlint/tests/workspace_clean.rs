//! The gate the CI job enforces: the live workspace carries zero
//! unannotated simlint violations, across all three lint families.

#![forbid(unsafe_code)]

use std::path::Path;

#[test]
fn live_workspace_has_no_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/simlint sits two levels below the workspace root");
    let (diags, files) = simlint::run_workspace(root).expect("workspace scan succeeds");
    assert!(
        files > 90,
        "scan looks truncated: only {files} files visited"
    );
    let rendered: Vec<String> = diags.iter().map(|d| d.render()).collect();
    assert!(
        diags.is_empty(),
        "the workspace has simlint violations; fix them or add a reasoned \
         `// simlint: allow(<lint>, <reason>)`:\n{}",
        rendered.join("\n")
    );
}
