//! Fixture: allow-annotation without a reason is itself an error.
use std::collections::HashMap;

// simlint: allow(hash-order)
pub fn f() -> HashMap<u32, u32> {
    HashMap::new()
}
