//! Fixture: unit mismatches visible only through dataflow.
pub fn deadline(now_micros: u64, len_mb: u64) -> u64 {
    let deadline = now_micros;
    deadline + len_mb
}

pub fn rename(start_micros: u64) -> u64 {
    let elapsed_secs = start_micros;
    elapsed_secs
}

pub fn leak(dur: std::time::Duration) -> f64 {
    let d = dur.as_micros();
    d as f64
}
