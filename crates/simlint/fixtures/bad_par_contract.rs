//! Fixture: concurrency machinery outside the parallel core.
use std::sync::Mutex as Lock;

pub fn spawn_worker(n: u64) {
    std::thread::spawn(move || {
        let cell = RefCell::new(n);
        let _ = cell.borrow();
    });
}

pub fn drain(rx: &Receiver<u64>) -> u64 {
    let mut sum = 0;
    while let Ok(v) = rx.try_recv() {
        sum += v;
    }
    sum
}
