//! Fixture: deterministic, unit-safe, panic-free library code.
use std::collections::BTreeMap;

pub fn index(xs: &[u32]) -> BTreeMap<u32, usize> {
    xs.iter().enumerate().map(|(i, &x)| (x, i)).collect()
}

pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}
