//! Fixture: every violation carries a reasoned annotation.
// simlint: allow(hash-order, membership-only set that is never iterated)
use std::collections::HashSet;

pub fn dedup_count(xs: &[u32]) -> usize {
    // simlint: allow(hash-order, membership-only set that is never iterated)
    let mut seen: HashSet<u32> = HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    seen.len()
}

pub fn tail(xs: &[u32]) -> u32 {
    // simlint: allow(panic, caller guarantees a non-empty slice)
    xs[0]
}
