//! Fixture: total orders, stable sorts, and integer keys.
use std::cmp::Ordering;

pub fn sort_floats(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.total_cmp(b));
}

pub fn plain_unstable(v: &mut Vec<u64>) {
    v.sort_unstable();
}

pub struct Keyed(pub u64);

impl PartialOrd for Keyed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.0.cmp(&other.0))
    }
}

pub fn int_key(v: &mut Vec<(u64, u64)>) {
    v.sort_by_key(|x| (x.0, x.1));
}
