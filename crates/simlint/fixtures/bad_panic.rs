//! Fixture: panics in library code.
pub fn first(xs: &[u32], m: Option<u32>) -> u32 {
    let a = xs[0];
    let b = m.unwrap();
    let c = m.expect("present");
    if a + b + c == 0 {
        panic!("zero");
    }
    a
}
