//! Fixture: result-affecting code iterating hash collections.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    seen.len()
}

pub fn index(xs: &[u32]) -> HashMap<u32, usize> {
    xs.iter().enumerate().map(|(i, &x)| (x, i)).collect()
}
