//! Fixture: every finding here carries a mechanical `--fix` rewrite.
use std::collections::HashMap;

pub fn index(keys: &[u64]) -> HashMap<u64, usize> {
    let mut m = HashMap::with_capacity(keys.len());
    for (i, &k) in keys.iter().enumerate() {
        m.insert(k, i);
    }
    m
}

pub fn rank(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn ties(v: &mut Vec<(u64, u64)>) {
    v.sort_unstable_by(|a, b| a.1.cmp(&b.1));
}
