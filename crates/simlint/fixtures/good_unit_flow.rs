//! Fixture: conversions, rates, and newtypes stay silent under dataflow.
pub fn convert(delay_micros: u64) -> u64 {
    let delay_millis = delay_micros / 1000;
    delay_millis + 5
}

pub fn rate(size_mb: f64, elapsed_secs: f64) -> f64 {
    let mb_per_sec = size_mb / elapsed_secs;
    mb_per_sec
}

pub fn same(seek_micros: u64, settle_micros: u64) -> u64 {
    seek_micros + settle_micros
}

pub fn newtype(raw_micros: u64) -> bool {
    let t: Micros = Micros::from_raw(raw_micros);
    t.is_zero()
}
