//! Fixture: deterministic fan-out with a reasoned allow and counted drain.
pub fn run(seeds: &[u64]) -> Vec<u64> {
    // simlint: allow(par-contract, per-seed fork-join joined in seed order)
    std::thread::scope(|scope| {
        let handles: Vec<_> = seeds.iter().map(|&s| scope.spawn(move || s * 2)).collect();
        handles.into_iter().map(|h| h.join().unwrap_or_default()).collect()
    })
}

pub fn counted(rx: &Receiver<u64>, n: usize) -> Vec<u64> {
    (0..n).map(|_| rx.recv().unwrap_or_default()).collect()
}
