//! Fixture: OS-seeded randomness breaks replay.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    let x: f64 = rand::random();
    let _ = &mut rng;
    x
}
