//! Fixture: raw casts on unit-carrying values.
pub fn report(delay_micros: u64, size_mb: u32) -> f64 {
    let d = delay_micros as f64;
    let s = size_mb as u64;
    d + s as f64
}
