//! Fixture: partial orders and unstable ties in comparator positions.
pub fn sort_floats(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn unstable(v: &mut Vec<u64>) {
    v.sort_unstable_by(|a, b| b.cmp(a));
}

pub fn float_key(v: &mut Vec<u64>) {
    v.sort_by_key(|x| *x as f64);
}

pub fn heap() -> BinaryHeap<(f64, u64)> {
    BinaryHeap::new()
}
