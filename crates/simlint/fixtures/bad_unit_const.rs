//! Fixture: inline unit-conversion constants.
pub fn seconds(micros: f64, bytes: f64) -> (f64, f64) {
    (micros / 1e6, bytes / 1024.0)
}
