//! Fixture: wall-clock reads are forbidden even in tests.
use std::time::Instant;
use std::time::SystemTime;

pub fn elapsed() -> f64 {
    let start = Instant::now();
    let _ = SystemTime::now();
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timed() {
        let _ = std::time::Instant::now();
    }
}
