//! `--fix`: applies the mechanically safe rewrites attached to
//! diagnostics (byte-range edits recorded by the passes).
//!
//! Edits are applied back-to-front so earlier offsets stay valid, and
//! overlapping edits are skipped conservatively (first writer wins). The
//! rewrites are chosen to be idempotent: a fixed file re-lints with no
//! remaining fixable findings, so `--fix` twice is `--fix` once.

use std::fs;
use std::io;
use std::path::Path;

use crate::diag::{Diagnostic, Edit};

/// Applies every fix attached to `diags` to `src`. Returns `None` when
/// there is nothing to do.
pub fn apply_to_source(src: &str, diags: &[Diagnostic]) -> Option<String> {
    let mut edits: Vec<&Edit> = diags
        .iter()
        .filter_map(|d| d.fix.as_ref())
        .flat_map(|f| f.edits.iter())
        .collect();
    if edits.is_empty() {
        return None;
    }
    // Back-to-front, longest-first on ties so replacements at the same
    // offset behave deterministically.
    edits.sort_by_key(|e| (std::cmp::Reverse(e.lo), std::cmp::Reverse(e.hi)));
    let mut out = src.to_string();
    let mut last_lo = usize::MAX;
    for e in edits {
        if e.lo > e.hi || e.hi > out.len() || e.hi > last_lo {
            // Malformed or overlapping a later (already applied) edit:
            // skip; the next `--fix` run picks it up on clean offsets.
            continue;
        }
        if !out.is_char_boundary(e.lo) || !out.is_char_boundary(e.hi) {
            continue;
        }
        out.replace_range(e.lo..e.hi, &e.text);
        last_lo = e.lo;
    }
    Some(out)
}

/// The result of a workspace `--fix` run.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct FixOutcome {
    pub files_changed: usize,
    pub edits_applied: usize,
}

/// Applies every available fix across the workspace, writing files in
/// place. Returns what changed.
pub fn fix_workspace(root: &Path) -> io::Result<FixOutcome> {
    let files = crate::scan::collect_files(root)?;
    let mut outcome = FixOutcome::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        let ctx = crate::scan::FileCtx::classify(&rel);
        let diags = crate::lints::check_file(&ctx, &src);
        let edit_count: usize = diags
            .iter()
            .filter_map(|d| d.fix.as_ref())
            .map(|f| f.edits.len())
            .sum();
        if let Some(fixed) = apply_to_source(&src, &diags) {
            if fixed != src {
                fs::write(path, fixed)?;
                outcome.files_changed += 1;
                outcome.edits_applied += edit_count;
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::check_file;
    use crate::scan::FileCtx;

    fn fix_lib(src: &str) -> String {
        let ctx = FileCtx::classify("crates/sim/src/engine.rs");
        let diags = check_file(&ctx, src);
        apply_to_source(src, &diags).unwrap_or_else(|| src.to_string())
    }

    #[test]
    fn partial_cmp_unwrap_rewrites_to_total_cmp() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let fixed = fix_lib(src);
        assert!(fixed.contains("a.total_cmp(b)"), "{fixed}");
        assert!(!fixed.contains("unwrap"), "{fixed}");
    }

    #[test]
    fn hash_map_rewrites_to_btree_map() {
        let src = "use std::collections::HashMap;\n\
                   fn f() -> HashMap<u32, u32> { HashMap::with_capacity(8) }\n";
        let fixed = fix_lib(src);
        assert!(fixed.contains("use std::collections::BTreeMap;"), "{fixed}");
        assert!(fixed.contains("BTreeMap<u32, u32>"), "{fixed}");
        assert!(fixed.contains("BTreeMap::new()"), "{fixed}");
        assert!(!fixed.contains("HashMap"), "{fixed}");
        assert!(!fixed.contains("with_capacity"), "{fixed}");
    }

    #[test]
    fn sort_unstable_by_rewrites_to_stable() {
        let src = "fn f(v: &mut Vec<u64>) { v.sort_unstable_by_key(|x| x + 1); }\n";
        let fixed = fix_lib(src);
        assert!(fixed.contains("v.sort_by_key(|x| x + 1)"), "{fixed}");
    }

    #[test]
    fn fix_is_idempotent() {
        let src = "use std::collections::HashMap;\n\
                   fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let once = fix_lib(src);
        let twice = fix_lib(&once);
        assert_eq!(once, twice);
        // And the fixed source has no fixable findings left.
        let ctx = FileCtx::classify("crates/sim/src/engine.rs");
        let remaining = check_file(&ctx, &once);
        assert!(remaining.iter().all(|d| d.fix.is_none()), "{remaining:?}");
    }

    #[test]
    fn no_fixes_returns_none() {
        let ctx = FileCtx::classify("crates/sim/src/engine.rs");
        let src = "fn f() -> u32 { 1 }\n";
        let diags = check_file(&ctx, src);
        assert!(apply_to_source(src, &diags).is_none());
    }
}
