//! Per-file symbol resolution: flattened `use`-path lookup and the unit
//! vocabulary shared by the dataflow pass.
//!
//! Unit kinds are deliberately conservative: a kind is assigned only when
//! an identifier (split on `_`) or a whitelisted conversion method names
//! exactly one scale-bearing unit. Names mixing dimensions (`bytes_per_sec`)
//! are rates and get no kind, so dividing or multiplying never produces a
//! false mixed-unit report.

use std::collections::BTreeMap;

use crate::parse::File;

/// The alias table built from a file's `use` declarations: local name ->
/// full path segments.
#[derive(Debug, Default)]
pub struct Imports {
    map: BTreeMap<String, Vec<String>>,
}

impl Imports {
    pub fn build(file: &File) -> Imports {
        let mut map = BTreeMap::new();
        for u in &file.uses {
            if !u.alias.is_empty() && !u.path.is_empty() {
                map.insert(u.alias.clone(), u.path.clone());
            }
        }
        Imports { map }
    }

    /// The imported path a local name resolves to, if any.
    pub fn path_of(&self, name: &str) -> Option<&[String]> {
        self.map.get(name).map(Vec::as_slice)
    }

    /// True if `name` is an alias for (or import of) an item whose real
    /// name matches `pred` — e.g. `use std::sync::Mutex as Lock` makes
    /// `Lock` resolve to a path whose last segment is `Mutex`.
    pub fn resolves_to(&self, name: &str, pred: impl Fn(&str) -> bool) -> bool {
        self.path_of(name)
            .and_then(|p| p.last())
            .is_some_and(|last| pred(last))
    }
}

/// The physical dimension of a quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    Time,
    Size,
    Slot,
}

/// A unit kind: dimension plus scale. Two kinds mix (and are flagged in
/// `+`/`-`/compare) whenever they differ in either component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitKind {
    pub dim: Dim,
    /// Human-readable scale name (`micros`, `megabytes`, ...).
    pub scale: &'static str,
}

impl UnitKind {
    const fn new(dim: Dim, scale: &'static str) -> UnitKind {
        UnitKind { dim, scale }
    }
}

/// Scale-bearing identifier words. Unlike the token lint's broader
/// `UNIT_WORDS` (which includes scaleless words like `delay`), only words
/// that pin an exact scale participate in dataflow.
fn word_kind(w: &str) -> Option<UnitKind> {
    let k = match w {
        "us" | "usec" | "usecs" | "micro" | "micros" => UnitKind::new(Dim::Time, "micros"),
        "ms" | "msec" | "msecs" | "millis" => UnitKind::new(Dim::Time, "millis"),
        "sec" | "secs" | "second" | "seconds" => UnitKind::new(Dim::Time, "secs"),
        "minutes" => UnitKind::new(Dim::Time, "minutes"),
        "hour" | "hours" => UnitKind::new(Dim::Time, "hours"),
        "byte" | "bytes" => UnitKind::new(Dim::Size, "bytes"),
        "kb" | "kib" => UnitKind::new(Dim::Size, "kilobytes"),
        "mb" | "mib" => UnitKind::new(Dim::Size, "megabytes"),
        "gb" | "gib" => UnitKind::new(Dim::Size, "gigabytes"),
        "slot" | "slots" => UnitKind::new(Dim::Slot, "slots"),
        _ => return None,
    };
    Some(k)
}

/// Infers the unit kind an identifier carries from its name. Returns
/// `None` for names with no unit word, with conflicting unit words
/// (`bytes_per_sec`-style rates), or containing `per`.
pub fn unit_of_name(name: &str) -> Option<UnitKind> {
    let lower = name.to_lowercase();
    let mut found: Option<UnitKind> = None;
    for w in lower.split('_') {
        if w == "per" {
            return None;
        }
        if let Some(k) = word_kind(w) {
            match found {
                None => found = Some(k),
                Some(prev) if prev == k => {}
                Some(_) => return None, // mixed words: a rate or conversion
            }
        }
    }
    found
}

/// Whitelisted conversion methods whose return value has a known kind.
/// (`as_bytes` is absent on purpose: `str::as_bytes` is not a size.)
pub fn unit_of_method(name: &str) -> Option<UnitKind> {
    let k = match name {
        "as_micros" => UnitKind::new(Dim::Time, "micros"),
        "as_millis" => UnitKind::new(Dim::Time, "millis"),
        "as_secs" | "as_secs_f64" | "as_secs_f32" => UnitKind::new(Dim::Time, "secs"),
        _ => return None,
    };
    Some(k)
}

/// True for the primitive numeric types whose values can silently carry
/// any unit. Newtypes (e.g. `Micros`) are excluded: the type system
/// already polices those.
pub fn is_numeric_prim(ty: &str) -> bool {
    matches!(
        ty.trim(),
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    #[test]
    fn names_with_one_unit_word_have_kinds() {
        let us = unit_of_name("now_us");
        assert_eq!(us.map(|k| k.scale), Some("micros"));
        assert_eq!(unit_of_name("pos_mb").map(|k| k.scale), Some("megabytes"));
        assert_eq!(unit_of_name("slots").map(|k| k.dim), Some(Dim::Slot));
        assert_eq!(
            unit_of_name("seek_time_us").map(|k| k.scale),
            Some("micros")
        );
    }

    #[test]
    fn rates_and_plain_names_have_no_kind() {
        assert_eq!(unit_of_name("bytes_per_sec"), None);
        assert_eq!(unit_of_name("mb_per_second"), None);
        assert_eq!(unit_of_name("count"), None);
        assert_eq!(unit_of_name("queue_len"), None);
        // Same-dimension different-scale mix is a conversion, not a kind.
        assert_eq!(unit_of_name("us_to_ms"), None);
    }

    #[test]
    fn conversion_methods() {
        assert_eq!(unit_of_method("as_micros").map(|k| k.scale), Some("micros"));
        assert_eq!(unit_of_method("as_secs_f64").map(|k| k.scale), Some("secs"));
        assert_eq!(unit_of_method("as_bytes"), None);
        assert_eq!(unit_of_method("len"), None);
    }

    #[test]
    fn import_alias_resolution() {
        let src = "use std::sync::{Mutex as Lock, mpsc};\n";
        let file = parse(src, &lex(src).tokens);
        let imports = Imports::build(&file);
        assert!(imports.resolves_to("Lock", |n| n == "Mutex"));
        assert!(!imports.resolves_to("Lock", |n| n == "RwLock"));
        assert_eq!(
            imports.path_of("mpsc").map(|p| p.join("::")),
            Some("std::sync::mpsc".to_string())
        );
    }

    #[test]
    fn numeric_primitives() {
        assert!(is_numeric_prim("u64"));
        assert!(is_numeric_prim(" f64 "));
        assert!(!is_numeric_prim("Micros"));
        assert!(!is_numeric_prim("Vec<u64>"));
    }
}
