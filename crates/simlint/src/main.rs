//! CLI entry point: `cargo run -p simlint [-- --json report.json -D]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::diag::{to_json, Severity};
use simlint::scan::find_root;

const USAGE: &str = "\
simlint — determinism / unit-safety / panic-hygiene / contract lints for this workspace

USAGE:
    cargo run -p simlint [-- OPTIONS]

OPTIONS:
    --root <path>    Workspace root (default: auto-detected)
    --json <path>    Write the machine-readable report ('-' for stdout)
    --fix            Apply mechanically safe rewrites in place, then re-lint
    --check          With --fix: apply nothing; fail if any fix would apply
    -D, --deny       Promote advisory (unit-safety) warnings to errors
    -q, --quiet      Suppress per-violation diagnostics, print summary only
    -h, --help       Show this help
";

struct Options {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    deny: bool,
    quiet: bool,
    fix: bool,
    check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: None,
        deny: false,
        quiet: false,
        fix: false,
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root requires a path")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = args.next().ok_or("--json requires a path")?;
                opts.json = Some(PathBuf::from(v));
            }
            "--fix" => opts.fix = true,
            "--check" => opts.check = true,
            "-D" | "--deny" => opts.deny = true,
            "-q" | "--quiet" => opts.quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.check && !opts.fix {
        return Err("--check requires --fix".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("simlint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = find_root(opts.root.as_deref()) else {
        eprintln!("simlint: could not locate the workspace root (try --root)");
        return ExitCode::from(2);
    };

    if opts.fix && !opts.check {
        match simlint::fixes::fix_workspace(&root) {
            Ok(outcome) => {
                println!(
                    "simlint: applied {} edit{} across {} file{}",
                    outcome.edits_applied,
                    if outcome.edits_applied == 1 { "" } else { "s" },
                    outcome.files_changed,
                    if outcome.files_changed == 1 { "" } else { "s" },
                );
            }
            Err(e) => {
                eprintln!("simlint: --fix failed: {e}");
                return ExitCode::from(2);
            }
        }
        // Fall through: re-lint the fixed tree so remaining (unfixable)
        // findings are still reported and gate the exit code.
    }

    let (mut diags, files) = match simlint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.deny {
        for d in &mut diags {
            d.severity = Severity::Error;
        }
    }

    if opts.fix && opts.check {
        let fixable = diags.iter().filter(|d| d.fix.is_some()).count();
        if fixable > 0 {
            if !opts.quiet {
                for d in diags.iter().filter(|d| d.fix.is_some()) {
                    println!("{}", d.render());
                }
            }
            println!(
                "simlint: {fixable} finding{} would be rewritten by --fix",
                if fixable == 1 { "" } else { "s" },
            );
            return ExitCode::FAILURE;
        }
        println!("simlint: no pending fixes — tree is clean under --fix --check");
        return ExitCode::SUCCESS;
    }

    if !opts.quiet {
        for d in &diags {
            println!("{}", d.render());
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    println!(
        "simlint: scanned {files} files — {errors} error{}, {warnings} warning{}",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    );

    if let Some(path) = &opts.json {
        let json = to_json(&diags, files, &root);
        if path.as_os_str() == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, json) {
            eprintln!("simlint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
