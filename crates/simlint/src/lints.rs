//! The lint passes: the shared [`Emitter`], the token-stream checks for
//! the original three families, and orchestration of the tree-level
//! passes (`dataflow`, `contracts`) on top of the `parse` tree.

use crate::diag::{Diagnostic, Edit, Fix, Lint, Severity};
use crate::lexer::{lex, Token, TokenKind};
use crate::scan::{in_test_span, test_spans, Annotations, FileCtx, TestSpans};

/// Identifier words that mark a value as unit-carrying (time, position,
/// or size). A cast operand whose final identifier contains one of these
/// words (split on `_`) is a D2 unit-cast candidate.
const UNIT_WORDS: [&str; 24] = [
    "micros",
    "micro",
    "usec",
    "msec",
    "millis",
    "secs",
    "sec",
    "seconds",
    "minutes",
    "hours",
    "mb",
    "kb",
    "gb",
    "bytes",
    "byte",
    "slot",
    "slots",
    "capacity",
    "delay",
    "delays",
    "bandwidth",
    "elapsed",
    "duration",
    "position",
];

/// Unit-conversion constants that must live behind the units layer.
/// Matched against the literal text with `_` separators removed.
const UNIT_CONSTS: [&str; 8] = [
    "1e6",
    "1000000.0",
    "1e3",
    "1000.0",
    "1024.0",
    "60.0",
    "3600.0",
    "1e9",
];

/// Macros whose expansion is a panic.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Shared diagnostic sink for every pass over one file. Centralizes the
/// scope matrix, `#[cfg(test)]` exemptions, and allow-annotations so the
/// token pass and the tree passes filter identically.
pub struct Emitter<'a> {
    ctx: &'a FileCtx,
    spans: TestSpans,
    ann: Annotations,
    lines: Vec<&'a str>,
    out: Vec<Diagnostic>,
}

impl<'a> Emitter<'a> {
    /// True if `lint` applies to this file at all (cheap pre-filter so
    /// tree passes can skip whole files).
    pub fn in_scope(&self, lint: Lint) -> bool {
        self.ctx.lint_in_scope(lint)
    }

    /// Records a finding at `line:col`, subject to scope, test-span, and
    /// allow-annotation filtering.
    pub fn emit(&mut self, lint: Lint, line: u32, col: u32, message: String, fix: Option<Fix>) {
        if !self.ctx.lint_in_scope(lint) {
            return;
        }
        // The determinism lints for wall-clock/RNG apply even in test
        // code; the rest exempt `#[cfg(test)]` spans.
        let test_exempt = !matches!(lint, Lint::WallClock | Lint::AmbientRng);
        if test_exempt && in_test_span(&self.spans, line) {
            return;
        }
        if self.ann.allows(lint, line) {
            return;
        }
        let snippet = self
            .lines
            .get(line as usize - 1)
            .copied()
            .unwrap_or("")
            .to_string();
        self.out.push(Diagnostic {
            lint,
            severity: lint.default_severity(),
            file: self.ctx.rel.clone(),
            line,
            col,
            message,
            snippet,
            fix,
        });
    }

    /// Convenience: emit at a token's position.
    fn emit_tok(&mut self, lint: Lint, tok: &Token, message: String, fix: Option<Fix>) {
        self.emit(lint, tok.line, tok.col, message, fix);
    }
}

/// Runs every in-scope lint over one file.
pub fn check_file(ctx: &FileCtx, src: &str) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let mut em = Emitter {
        ctx,
        spans: test_spans(&lexed),
        ann: Annotations::parse(&lexed.comments),
        lines: src.lines().collect(),
        out: Vec::new(),
    };
    token_pass(&mut em, &lexed.tokens);
    // The tree passes only run where one of their lints is in scope.
    if em.in_scope(Lint::UnitFlow)
        || em.in_scope(Lint::OrderTotality)
        || em.in_scope(Lint::ParContract)
    {
        let file = crate::parse::parse(src, &lexed.tokens);
        crate::dataflow::check(&mut em, &file);
        crate::contracts::check(&mut em, &file, &lexed.tokens, ctx);
    }

    // Malformed annotations are errors: a typo'd allow must not silently
    // fail to suppress (or silently over-suppress).
    for (line, why) in &em.ann.malformed {
        let snippet = em
            .lines
            .get(*line as usize - 1)
            .copied()
            .unwrap_or("")
            .to_string();
        em.out.push(Diagnostic {
            lint: Lint::Panic,
            severity: Severity::Error,
            file: ctx.rel.clone(),
            line: *line,
            col: 1,
            message: format!("malformed simlint annotation: {why}"),
            snippet,
            fix: None,
        });
    }

    em.out
}

/// The original token-stream checks (determinism, unit-safety, panic
/// hygiene).
fn token_pass(em: &mut Emitter<'_>, toks: &[Token]) {
    for i in 0..toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokenKind::Ident(name) => match name.as_str() {
                "HashMap" | "HashSet" => {
                    let fix = hash_container_fix(toks, i, name);
                    em.emit_tok(
                        Lint::HashOrder,
                        t,
                        format!("`{name}` iteration order is nondeterministic"),
                        fix,
                    );
                }
                "now" if path_prefix(toks, i, &["Instant", "SystemTime"]) => em.emit_tok(
                    Lint::WallClock,
                    t,
                    "wall-clock read makes simulation runs irreproducible".to_string(),
                    None,
                ),
                "thread_rng" => em.emit_tok(
                    Lint::AmbientRng,
                    t,
                    "`thread_rng` is seeded from the OS; use the run seed".to_string(),
                    None,
                ),
                "random" if path_prefix(toks, i, &["rand"]) => em.emit_tok(
                    Lint::AmbientRng,
                    t,
                    "`rand::random` is seeded from the OS; use the run seed".to_string(),
                    None,
                ),
                "as" if cast_target(toks, i).is_some() => {
                    if let Some(word) = unit_cast_operand(toks, i) {
                        let target = cast_target(toks, i).unwrap_or_default();
                        em.emit_tok(
                            Lint::UnitCast,
                            t,
                            format!(
                                "raw `as {target}` cast on unit-carrying value \
                                 (`{word}`) outside the units layer"
                            ),
                            None,
                        );
                    }
                }
                "unwrap" | "expect" if prev_is(toks, i, '.') && next_is(toks, i, '(') => {
                    em.emit_tok(
                        Lint::Panic,
                        t,
                        format!("`.{name}()` can panic in library code"),
                        None,
                    );
                }
                "unwrap" if path_call_position(toks, i) => em.emit_tok(
                    Lint::Panic,
                    t,
                    "`Option::unwrap`/`Result::unwrap` reference can panic".to_string(),
                    None,
                ),
                m if PANIC_MACROS.contains(&m) && next_is(toks, i, '!') => em.emit_tok(
                    Lint::Panic,
                    t,
                    format!("`{m}!` aborts instead of propagating a typed error"),
                    None,
                ),
                _ => {}
            },
            TokenKind::Number(text) => {
                let normalized: String = text.chars().filter(|&c| c != '_').collect();
                if UNIT_CONSTS.contains(&normalized.as_str())
                    && (prev_is(toks, i, '*')
                        || prev_is_div(toks, i)
                        || next_is(toks, i, '*')
                        || next_is(toks, i, '/'))
                {
                    em.emit_tok(
                        Lint::UnitConst,
                        t,
                        format!(
                            "bare unit-conversion constant `{text}` in arithmetic; \
                             name it via the units layer"
                        ),
                        None,
                    );
                }
            }
            TokenKind::Punct('[') if const_index(toks, i) => em.emit_tok(
                Lint::Panic,
                t,
                "constant-index slice access panics when out of bounds".to_string(),
                None,
            ),
            _ => {}
        }
    }
}

/// Builds the `--fix` rewrite for a `HashMap`/`HashSet` occurrence: the
/// ordered-container rename, plus a `::with_capacity(..)` -> `::new()`
/// rewrite when the call directly follows (BTree containers take no
/// capacity hint).
fn hash_container_fix(toks: &[Token], i: usize, name: &str) -> Option<Fix> {
    let replacement = if name == "HashMap" {
        "BTreeMap"
    } else {
        "BTreeSet"
    };
    let t = toks.get(i)?;
    let mut edits = vec![Edit {
        lo: t.lo,
        hi: t.hi,
        text: replacement.to_string(),
    }];
    // `HashMap::with_capacity(n)` / turbofish-free form only.
    if toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
        && toks.get(i + 2).is_some_and(|x| x.is_punct(':'))
        && toks.get(i + 3).is_some_and(|x| x.is_ident("with_capacity"))
        && toks.get(i + 4).is_some_and(|x| x.is_punct('('))
    {
        let mut depth = 0i32;
        let mut k = i + 4;
        while let Some(x) = toks.get(k) {
            if x.is_punct('(') {
                depth += 1;
            } else if x.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    if let (Some(wc), Some(close)) = (toks.get(i + 3), toks.get(k)) {
                        edits.push(Edit {
                            lo: wc.lo,
                            hi: close.hi,
                            text: "new()".to_string(),
                        });
                    }
                    break;
                }
            }
            k += 1;
        }
    }
    Some(Fix { edits })
}

/// True if token `i` is preceded by `::` which is itself preceded by one
/// of `heads` (e.g. `Instant :: now`).
fn path_prefix(toks: &[Token], i: usize, heads: &[&str]) -> bool {
    i >= 3
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks[i - 3].ident().is_some_and(|h| heads.contains(&h))
}

/// True if `unwrap` at `i` is a bare path reference (`Option::unwrap`)
/// rather than a method call.
fn path_call_position(toks: &[Token], i: usize) -> bool {
    path_prefix(toks, i, &["Option", "Result"])
}

fn prev_is(toks: &[Token], i: usize, c: char) -> bool {
    i > 0 && toks[i - 1].is_punct(c)
}

/// `/` needs care: `//` never reaches the token stream (comments), so a
/// plain punct check suffices; kept separate for symmetry/clarity.
fn prev_is_div(toks: &[Token], i: usize) -> bool {
    prev_is(toks, i, '/')
}

fn next_is(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(c))
}

/// If token `i` is an `as` cast to `f64`/`u64`, returns the target type.
fn cast_target(toks: &[Token], i: usize) -> Option<&'static str> {
    match toks.get(i + 1)?.ident()? {
        "f64" => Some("f64"),
        "u64" => Some("u64"),
        _ => None,
    }
}

/// Resolves the final identifier of the cast operand before `as` at `i`
/// and returns the matched unit word, if any.
///
/// Handles the postfix shapes `ident as`, `call(...) as`, `index[...] as`
/// one level deep — enough for real code, and an under-approximation by
/// design (a heuristic lint must not drown the build in false positives).
fn unit_cast_operand(toks: &[Token], i: usize) -> Option<&'static str> {
    if i == 0 {
        return None;
    }
    let j = i - 1;
    let candidate = match &toks[j].kind {
        TokenKind::Ident(s) => Some(s.clone()),
        TokenKind::Punct(')') => ident_before_open(toks, j, '(', ')'),
        TokenKind::Punct(']') => ident_before_open(toks, j, '[', ']'),
        _ => None,
    }?;
    let lower = candidate.to_lowercase();
    lower
        .split('_')
        .find_map(|w| UNIT_WORDS.iter().find(|u| **u == w))
        .copied()
}

/// Walks back from a closing delimiter at `j` to its matching opener and
/// returns the identifier immediately before it (a method/function name
/// for `(...)`, the indexed binding for `[...]`).
fn ident_before_open(toks: &[Token], j: usize, open: char, close: char) -> Option<String> {
    let mut depth = 0i32;
    let mut k = j;
    loop {
        if toks[k].is_punct(close) {
            depth += 1;
        } else if toks[k].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    if k == 0 {
        return None;
    }
    toks[k - 1].ident().map(str::to_string)
}

/// True if `[` at `i` is a postfix index whose content is a single
/// integer literal (`replicas[0]`). Array literals (`[0; 4]`), attributes
/// (`#[...]`), and macro brackets (`vec![...]`) never match: their `[` is
/// not preceded by an identifier/closing delimiter, or holds more tokens.
fn const_index(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let postfix = match &toks[i - 1].kind {
        TokenKind::Ident(name) => {
            // `let [a] = ...` / `if let [x] = ...`: a pattern, not an index.
            name != "let"
        }
        TokenKind::Punct(')') | TokenKind::Punct(']') => true,
        _ => false,
    };
    if !postfix {
        return false;
    }
    matches!(
        (toks.get(i + 1).map(|t| &t.kind), toks.get(i + 2)),
        (Some(TokenKind::Number(_)), Some(t2)) if t2.is_punct(']')
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> Vec<Diagnostic> {
        let ctx = FileCtx::classify("crates/sim/src/engine.rs");
        check_file(&ctx, src)
    }

    fn ids(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.lint.id()).collect()
    }

    #[test]
    fn hash_map_flagged_in_lib_code() {
        let d = lint_lib("use std::collections::HashMap;\n");
        assert_eq!(ids(&d), vec!["hash-order"]);
    }

    #[test]
    fn hash_map_allowed_with_annotation() {
        let d = lint_lib(
            "// simlint: allow(hash-order, membership-only, never iterated)\n\
             use std::collections::HashMap;\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hash_map_in_cfg_test_is_exempt() {
        let d = lint_lib("#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn wall_clock_flagged_even_in_tests() {
        let d = lint_lib("#[cfg(test)]\nmod tests {\n  fn f() { let t = Instant::now(); }\n}\n");
        assert_eq!(ids(&d), vec!["wall-clock"]);
    }

    #[test]
    fn ambient_rng_flagged() {
        let d = lint_lib("fn f() { let mut rng = thread_rng(); let x: u8 = rand::random(); }\n");
        assert_eq!(ids(&d), vec!["ambient-rng", "ambient-rng"]);
    }

    #[test]
    fn unit_cast_on_unit_word_flagged() {
        let d = lint_lib("fn f(bytes: u64, c: M) -> f64 { bytes as f64 / c.as_secs_f64() }\n");
        assert_eq!(ids(&d), vec!["unit-cast"]);
    }

    #[test]
    fn unit_cast_method_operand_flagged() {
        let d = lint_lib("fn f(p: M) -> f64 { p.as_micros() as f64 }\n");
        assert_eq!(ids(&d), vec!["unit-cast"]);
    }

    #[test]
    fn count_cast_not_flagged() {
        let d = lint_lib("fn f(v: &[u8]) -> u64 { v.len() as u64 }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unit_const_flagged() {
        let d = lint_lib("fn f(x: u64) -> f64 { g(x) / 1e6 }\n");
        assert_eq!(ids(&d), vec!["unit-const"]);
    }

    #[test]
    fn unit_const_not_flagged_without_arithmetic() {
        let d = lint_lib("const N: f64 = 1e6;\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unwrap_expect_and_macros_flagged() {
        let d = lint_lib(
            "fn f(x: Option<u8>) -> u8 {\n\
             let a = x.unwrap();\n\
             let b = x.expect(\"msg\");\n\
             if a > b { panic!(\"boom\"); }\n\
             a\n}\n",
        );
        assert_eq!(ids(&d), vec!["panic", "panic", "panic"]);
    }

    #[test]
    fn option_unwrap_path_reference_flagged() {
        let d = lint_lib(
            "fn f(v: Vec<Option<u8>>) -> Vec<u8> { v.into_iter().map(Option::unwrap).collect() }\n",
        );
        assert_eq!(ids(&d), vec!["panic"]);
    }

    #[test]
    fn const_index_flagged_but_patterns_are_not() {
        let d = lint_lib("fn f(v: &[u8]) -> u8 { v[0] }\n");
        assert_eq!(ids(&d), vec!["panic"]);
        let d = lint_lib("fn f(v: &[u8]) -> u8 { if let [a] = v { *a } else { 0 } }\n");
        assert!(d.is_empty(), "{d:?}");
        let d = lint_lib("fn f() -> Vec<u8> { vec![0; 4] }\n");
        assert!(d.is_empty(), "{d:?}");
        let d = lint_lib("#[derive(Debug)]\nstruct S;\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn variable_index_not_flagged() {
        let d = lint_lib("fn f(v: &[u8], i: usize) -> u8 { v[i] }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn panic_exempt_in_cfg_test() {
        let d = lint_lib("#[cfg(test)]\nmod tests {\n  fn f(x: Option<u8>) { x.unwrap(); }\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn bin_targets_exempt_from_panic_but_not_wall_clock() {
        let ctx = FileCtx::classify("crates/bench/src/bin/fig1.rs");
        let d = check_file(
            &ctx,
            "fn main() { foo().unwrap(); let t = Instant::now(); }\n",
        );
        assert_eq!(ids(&d), vec!["wall-clock"]);
    }

    #[test]
    fn units_layer_exempt_from_unit_casts() {
        let ctx = FileCtx::classify("crates/model/src/time.rs");
        let d = check_file(&ctx, "fn f(micros: u64) -> f64 { micros as f64 / 1e6 }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn malformed_annotation_is_an_error() {
        let d = lint_lib("// simlint: allow(hash-order)\nuse std::collections::HashMap;\n");
        assert!(d.iter().any(|x| x.message.contains("malformed")));
        // And the HashMap itself is still reported.
        assert!(d.iter().any(|x| x.lint == Lint::HashOrder));
    }

    #[test]
    fn severity_defaults() {
        let d = lint_lib("fn f(bytes: u64) -> f64 { bytes as f64 }\n");
        assert_eq!(d.first().map(|x| x.severity), Some(Severity::Warning));
        let d = lint_lib("use std::collections::HashSet;\n");
        assert_eq!(d.first().map(|x| x.severity), Some(Severity::Error));
    }
}
