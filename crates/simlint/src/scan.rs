//! Workspace walking, file-context classification, `#[cfg(test)]` span
//! detection, and `// simlint: allow(...)` annotation parsing.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::Lint;
use crate::lexer::{CommentLine, Lexed, Token};

/// What kind of compilation target a file belongs to. Lint scope depends
/// on this: library code is held to the full catalog, harness code (bins,
/// benches, test crates) only to the wall-clock/RNG determinism lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<name>/src/**` excluding `src/bin/` — library code.
    Lib,
    /// `crates/<name>/src/bin/**` — binary targets (CLIs, figure runners).
    Bin,
    /// `crates/<name>/benches/**` — benchmark targets.
    Bench,
    /// `crates/<name>/tests/**` — per-crate integration tests.
    TestTarget,
    /// Top-level `examples/` and `tests/` workspace members.
    Harness,
    /// `crates/vendor/<name>/**` — the in-tree shims for registry crates
    /// (README "Vendored dependencies"). Held to the determinism lints
    /// like every other file, but exempt from the library-hygiene and
    /// unit-safety catalog: they mirror a foreign API surface (panicking
    /// assertion macros, raw integer casts in samplers) by design.
    Vendor,
}

/// Per-file lint context.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// The crate directory name (`sim`, `sched`, ... or `examples`/`tests`).
    pub crate_name: String,
    pub kind: FileKind,
    /// True for the blessed conversion layer (`model::units`,
    /// `model::time`) where raw casts are the implementation.
    pub units_layer: bool,
}

/// Crates whose arithmetic carries paper units (time/position/size) and is
/// therefore in scope for the D2 unit-safety lints.
const UNIT_CRATES: [&str; 7] = [
    "model", "layout", "workload", "sched", "sim", "core", "analysis",
];

/// Files implementing the units layer itself.
const UNITS_LAYER: [&str; 2] = ["crates/model/src/units.rs", "crates/model/src/time.rs"];

impl FileCtx {
    /// Classifies a workspace-relative path.
    pub fn classify(rel: &str) -> FileCtx {
        let parts: Vec<&str> = rel.split('/').collect();
        let (crate_name, kind) = match parts.as_slice() {
            ["crates", "vendor", name, ..] => (*name, FileKind::Vendor),
            ["crates", name, "src", "bin", ..] => (*name, FileKind::Bin),
            ["crates", name, "src", ..] => (*name, FileKind::Lib),
            ["crates", name, "benches", ..] => (*name, FileKind::Bench),
            ["crates", name, "tests", ..] => (*name, FileKind::TestTarget),
            ["examples", ..] => ("examples", FileKind::Harness),
            ["tests", ..] => ("tests", FileKind::Harness),
            [name, ..] => (*name, FileKind::Harness),
            [] => ("", FileKind::Harness),
        };
        FileCtx {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            units_layer: UNITS_LAYER.contains(&rel),
        }
    }

    /// Whether a lint applies to this file (test spans are handled
    /// separately by the caller via [`test_spans`]).
    pub fn lint_in_scope(&self, lint: Lint) -> bool {
        match lint {
            // Wall-clock reads and ambient RNG poison reproducibility no
            // matter where they run — tests and harnesses included.
            Lint::WallClock | Lint::AmbientRng => true,
            // Hash-iteration order and panic hygiene are library-code
            // concerns across every crate.
            Lint::HashOrder | Lint::Panic => self.kind == FileKind::Lib,
            // Unit safety applies to the result-affecting crates, outside
            // the units layer that implements the conversions. The
            // dataflow variant shares the token lint's scope exactly.
            Lint::UnitCast | Lint::UnitConst | Lint::UnitFlow => {
                self.kind == FileKind::Lib
                    && UNIT_CRATES.contains(&self.crate_name.as_str())
                    && !self.units_layer
            }
            // Comparator totality and the parallel contract are library-
            // code concerns: harness code does not feed the goldens, and
            // the vendored shims mirror foreign APIs.
            Lint::OrderTotality | Lint::ParContract => self.kind == FileKind::Lib,
        }
    }
}

/// Inclusive line ranges covered by `#[cfg(test)]` or `#[test]` items.
pub type TestSpans = Vec<(u32, u32)>;

/// True if `line` falls inside any recorded test span.
pub fn in_test_span(spans: &TestSpans, line: u32) -> bool {
    spans.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// Computes the line spans of `#[cfg(test)]` / `#[test]` items by brace
/// matching on the token stream.
pub fn test_spans(lexed: &Lexed) -> TestSpans {
    let toks = &lexed.tokens;
    let mut spans = TestSpans::new();
    let mut i = 0;
    while i < toks.len() {
        if let Some(attr_end) = match_test_attr(toks, i) {
            let start_line = toks[i].line;
            if let Some(end_line) = item_end_line(toks, attr_end) {
                spans.push((start_line, end_line));
                // Continue scanning *after* the item so nested `#[test]`
                // fns inside a `#[cfg(test)] mod` don't add noise.
                i = attr_end;
                while i < toks.len() && toks[i].line <= end_line {
                    i += 1;
                }
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// If tokens at `i` start `#[cfg(test)]` or `#[test]`, returns the index
/// just past the closing `]`.
fn match_test_attr(toks: &[Token], i: usize) -> Option<usize> {
    if !toks.get(i)?.is_punct('#') || !toks.get(i + 1)?.is_punct('[') {
        return None;
    }
    let inner = toks.get(i + 2)?;
    if inner.is_ident("test") && toks.get(i + 3)?.is_punct(']') {
        return Some(i + 4);
    }
    if inner.is_ident("cfg")
        && toks.get(i + 3)?.is_punct('(')
        && toks.get(i + 4)?.is_ident("test")
        && toks.get(i + 5)?.is_punct(')')
        && toks.get(i + 6)?.is_punct(']')
    {
        return Some(i + 7);
    }
    None
}

/// Finds the last line of the item starting at token `i` (skipping any
/// further attributes): either the matching `}` of its first brace block,
/// or the `;` that ends a braceless item.
fn item_end_line(toks: &[Token], mut i: usize) -> Option<u32> {
    // Skip stacked attributes (`#[cfg(test)] #[allow(...)] mod t {`).
    while i < toks.len() && toks[i].is_punct('#') {
        i += 1;
        if i < toks.len() && toks[i].is_punct('[') {
            let mut depth = 0i32;
            while i < toks.len() {
                if toks[i].is_punct('[') {
                    depth += 1;
                } else if toks[i].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
    }
    // Scan to the first `{` or a terminating `;`.
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct(';') {
            return Some(t.line);
        }
        if t.is_punct('{') {
            let mut depth = 0i32;
            while i < toks.len() {
                if toks[i].is_punct('{') {
                    depth += 1;
                } else if toks[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some(toks[i].line);
                    }
                }
                i += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

/// Parsed allow-annotations: line -> lints allowed on that line and the
/// next. Grammar (reason mandatory):
///
/// ```text
/// // simlint: allow(<lint-id>, <reason>)
/// ```
#[derive(Debug, Default)]
pub struct Annotations {
    by_line: BTreeMap<u32, Vec<Lint>>,
    /// Malformed `simlint:` comments (bad lint id or missing reason); the
    /// checker reports these so a typo cannot silently fail to suppress.
    pub malformed: Vec<(u32, String)>,
}

impl Annotations {
    /// Parses annotations out of a file's comment lines.
    pub fn parse(comments: &[CommentLine]) -> Annotations {
        let mut out = Annotations::default();
        for c in comments {
            let Some(rest) = c.text.strip_prefix("simlint:") else {
                continue;
            };
            let rest = rest.trim();
            let parsed = parse_allow(rest);
            match parsed {
                Ok(lint) => out.by_line.entry(c.line).or_default().push(lint),
                Err(why) => out.malformed.push((c.line, why)),
            }
        }
        out
    }

    /// True if `lint` is allowed at `line` — i.e. an annotation sits on
    /// the same line (trailing comment) or on the line directly above.
    pub fn allows(&self, lint: Lint, line: u32) -> bool {
        let covered = |l: u32| self.by_line.get(&l).is_some_and(|v| v.contains(&lint));
        covered(line) || (line > 0 && covered(line - 1))
    }
}

fn parse_allow(rest: &str) -> Result<Lint, String> {
    let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    else {
        return Err(format!(
            "expected `allow(<lint>, <reason>)`, found `{rest}`"
        ));
    };
    let Some((id, reason)) = args.split_once(',') else {
        return Err(format!(
            "missing reason: `allow({args})` — a justification is mandatory"
        ));
    };
    let id = id.trim();
    let Some(lint) = Lint::from_id(id) else {
        return Err(format!("unknown lint id `{id}`"));
    };
    if reason.trim().is_empty() {
        return Err(format!(
            "missing reason: `allow({id},)` — a justification is mandatory"
        ));
    }
    Ok(lint)
}

/// Recursively collects every `.rs` file under the workspace's source
/// directories, skipping build output, VCS metadata, and simlint's own
/// intentionally-bad lint fixtures.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "examples", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "fixtures" | "golden") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: `$CARGO_MANIFEST_DIR/../..` when invoked
/// via `cargo run -p simlint`, else the nearest ancestor of the current
/// directory containing a `[workspace]` manifest.
pub fn find_root(explicit: Option<&Path>) -> Option<PathBuf> {
    if let Some(p) = explicit {
        // An explicit root must actually be a workspace — a typo'd path
        // scanning zero files must not read as a clean pass.
        return is_workspace_root(p).then(|| p.to_path_buf());
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let candidate = Path::new(&manifest).join("../..");
        if is_workspace_root(&candidate) {
            return candidate.canonicalize().ok();
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_root(dir: &Path) -> bool {
    fs::read_to_string(dir.join("Cargo.toml"))
        .map(|s| s.contains("[workspace]"))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classification() {
        let c = FileCtx::classify("crates/sim/src/engine.rs");
        assert_eq!(c.crate_name, "sim");
        assert_eq!(c.kind, FileKind::Lib);
        assert!(!c.units_layer);

        let c = FileCtx::classify("crates/bench/src/bin/fig9_skew.rs");
        assert_eq!(c.kind, FileKind::Bin);

        let c = FileCtx::classify("crates/bench/benches/simulation.rs");
        assert_eq!(c.kind, FileKind::Bench);

        let c = FileCtx::classify("tests/tests/golden.rs");
        assert_eq!(c.kind, FileKind::Harness);

        let c = FileCtx::classify("crates/model/src/units.rs");
        assert!(c.units_layer);
        assert!(!c.lint_in_scope(Lint::UnitCast));

        let c = FileCtx::classify("crates/vendor/rand/src/lib.rs");
        assert_eq!(c.crate_name, "rand");
        assert_eq!(c.kind, FileKind::Vendor);
    }

    #[test]
    fn scope_matrix() {
        let lib = FileCtx::classify("crates/sched/src/envelope.rs");
        assert!(lib.lint_in_scope(Lint::HashOrder));
        assert!(lib.lint_in_scope(Lint::Panic));
        assert!(lib.lint_in_scope(Lint::UnitCast));
        assert!(lib.lint_in_scope(Lint::WallClock));

        let bin = FileCtx::classify("crates/bench/src/bin/all_figures.rs");
        assert!(!bin.lint_in_scope(Lint::Panic));
        assert!(!bin.lint_in_scope(Lint::HashOrder));
        assert!(bin.lint_in_scope(Lint::WallClock));

        let simlint_self = FileCtx::classify("crates/simlint/src/lexer.rs");
        assert!(simlint_self.lint_in_scope(Lint::Panic));
        assert!(!simlint_self.lint_in_scope(Lint::UnitCast));

        // Vendored shims: determinism lints apply, library hygiene and
        // unit safety do not (foreign API surface by design).
        let vendor = FileCtx::classify("crates/vendor/proptest/src/lib.rs");
        assert!(vendor.lint_in_scope(Lint::WallClock));
        assert!(vendor.lint_in_scope(Lint::AmbientRng));
        assert!(!vendor.lint_in_scope(Lint::Panic));
        assert!(!vendor.lint_in_scope(Lint::UnitCast));
    }

    #[test]
    fn cfg_test_mod_span() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn more() {}";
        let spans = test_spans(&lex(src));
        assert_eq!(spans, vec![(2, 5)]);
        assert!(in_test_span(&spans, 4));
        assert!(!in_test_span(&spans, 1));
        assert!(!in_test_span(&spans, 6));
    }

    #[test]
    fn braceless_cfg_test_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}";
        let spans = test_spans(&lex(src));
        assert_eq!(spans, vec![(1, 2)]);
    }

    #[test]
    fn stacked_attributes_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n let x = 1;\n}";
        let spans = test_spans(&lex(src));
        assert_eq!(spans, vec![(1, 5)]);
    }

    #[test]
    fn annotations_cover_same_and_next_line() {
        let src = "\
// simlint: allow(hash-order, membership-only set)
let a = 1;
let b = 2; // simlint: allow(panic, index proven in bounds)
";
        let lexed = lex(src);
        let ann = Annotations::parse(&lexed.comments);
        assert!(ann.allows(Lint::HashOrder, 2));
        assert!(!ann.allows(Lint::HashOrder, 3));
        assert!(ann.allows(Lint::Panic, 3));
        assert!(!ann.allows(Lint::Panic, 2));
        assert!(ann.malformed.is_empty());
    }

    #[test]
    fn annotation_reason_is_mandatory() {
        let lexed = lex("// simlint: allow(hash-order)\nlet x = 1;");
        let ann = Annotations::parse(&lexed.comments);
        assert!(!ann.allows(Lint::HashOrder, 2));
        assert_eq!(ann.malformed.len(), 1);
    }

    #[test]
    fn unknown_lint_id_is_malformed() {
        let lexed = lex("// simlint: allow(hash-ordr, typo)");
        let ann = Annotations::parse(&lexed.comments);
        assert_eq!(ann.malformed.len(), 1);
        assert!(ann
            .malformed
            .first()
            .is_some_and(|(_, m)| m.contains("hash-ordr")));
    }
}
