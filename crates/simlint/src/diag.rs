//! Lint identities, diagnostics, and report rendering (text + JSON).

use std::fmt;
use std::path::Path;

/// Every lint simlint knows about, grouped into the three families from
/// the lint catalog (see README "Static analysis").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// D1: `HashMap`/`HashSet` in result-affecting code — iteration order
    /// is randomized per process and can scramble simulation results.
    HashOrder,
    /// D1: `Instant::now` / `SystemTime::now` — wall-clock reads make
    /// runs irreproducible.
    WallClock,
    /// D1: `thread_rng` / `rand::random` — ambient OS-seeded randomness
    /// bypasses the per-run seed discipline.
    AmbientRng,
    /// D2: a raw `as f64` / `as u64` cast applied to a unit-carrying
    /// value (time/position/size) outside the `model` units layer.
    UnitCast,
    /// D2: a bare unit-conversion constant (`1e6`, `1024.0`, `3600.0`,
    /// ...) in arithmetic outside the `model` units layer.
    UnitConst,
    /// D3: `unwrap`/`expect`/`panic!`-family/constant-index panics in
    /// non-test library code without a documented invariant.
    Panic,
    /// D4: mixed unit kinds reaching `+`/`-`/compare, or a unit quantity
    /// whose kind is only known through dataflow leaking into a raw cast.
    UnitFlow,
    /// D5: comparators that are not provably total (`partial_cmp().
    /// unwrap()`, float sort keys, `BinaryHeap` over floats) or that
    /// forfeit stable order (`sort_unstable_by*`).
    OrderTotality,
    /// D6: the parallel-determinism contract — concurrency primitives
    /// outside `par.rs`, shared-mutable captures in worker closures, and
    /// arrival-order channel drains.
    ParContract,
}

impl Lint {
    /// All lints, in catalog order.
    pub const ALL: [Lint; 9] = [
        Lint::HashOrder,
        Lint::WallClock,
        Lint::AmbientRng,
        Lint::UnitCast,
        Lint::UnitConst,
        Lint::Panic,
        Lint::UnitFlow,
        Lint::OrderTotality,
        Lint::ParContract,
    ];

    /// The stable lint id used in diagnostics and allow-annotations.
    pub fn id(self) -> &'static str {
        match self {
            Lint::HashOrder => "hash-order",
            Lint::WallClock => "wall-clock",
            Lint::AmbientRng => "ambient-rng",
            Lint::UnitCast => "unit-cast",
            Lint::UnitConst => "unit-const",
            Lint::Panic => "panic",
            Lint::UnitFlow => "unit-flow",
            Lint::OrderTotality => "order-totality",
            Lint::ParContract => "par-contract",
        }
    }

    /// The lint family (D1..D6) for reporting.
    pub fn family(self) -> &'static str {
        match self {
            Lint::HashOrder | Lint::WallClock | Lint::AmbientRng => "determinism",
            Lint::UnitCast | Lint::UnitConst => "unit-safety",
            Lint::Panic => "panic-hygiene",
            Lint::UnitFlow => "unit-dataflow",
            Lint::OrderTotality => "ordering-totality",
            Lint::ParContract => "parallel-contract",
        }
    }

    /// Default severity. The unit-safety families are advisory by default
    /// (their heuristics can over-approximate) and are promoted to deny
    /// by the `-D` flag, which CI passes.
    pub fn default_severity(self) -> Severity {
        match self {
            Lint::UnitCast | Lint::UnitConst | Lint::UnitFlow => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Looks a lint up by its annotation id.
    pub fn from_id(id: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.id() == id)
    }

    /// One-line help text appended to every diagnostic.
    pub fn help(self) -> &'static str {
        match self {
            Lint::HashOrder => {
                "use BTreeMap/BTreeSet (or prove order-insensitivity with \
                 `// simlint: allow(hash-order, <reason>)`)"
            }
            Lint::WallClock => {
                "derive all times from the simulation clock (SimTime/Micros); \
                 wall-clock reads are forbidden in simulation code"
            }
            Lint::AmbientRng => {
                "thread every RNG from the run seed (see model::substream); \
                 ambient randomness breaks single-seed reproducibility"
            }
            Lint::UnitCast => {
                "route the conversion through the model units layer \
                 (Micros/SimTime/BlockSize APIs) or annotate \
                 `// simlint: allow(unit-cast, <reason>)`"
            }
            Lint::UnitConst => {
                "name the conversion via the units layer (e.g. \
                 Micros::as_secs_f64) instead of an inline constant, or \
                 annotate `// simlint: allow(unit-const, <reason>)`"
            }
            Lint::Panic => {
                "propagate a typed error (e.g. SimError) or document the \
                 invariant with `// simlint: allow(panic, <reason>)`"
            }
            Lint::UnitFlow => {
                "keep quantities in one unit kind per expression (convert \
                 via the model units layer first), or annotate \
                 `// simlint: allow(unit-flow, <reason>)`"
            }
            Lint::OrderTotality => {
                "use `f64::total_cmp` or a total integer key like `(at, \
                 seq)`, and prefer stable `sort_by*`; run `simlint --fix` \
                 for the mechanical rewrite"
            }
            Lint::ParContract => {
                "keep concurrency primitives inside `par.rs`, capture only \
                 per-task state in worker closures, and drain results in \
                 deterministic order — or annotate \
                 `// simlint: allow(par-contract, <reason>)`"
            }
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One byte-range replacement inside a file.
#[derive(Debug, Clone)]
pub struct Edit {
    /// Byte offset of the first replaced byte.
    pub lo: usize,
    /// Byte offset one past the last replaced byte.
    pub hi: usize,
    /// Replacement text (empty for a deletion).
    pub text: String,
}

/// A mechanically safe rewrite attached to a diagnostic, applied by
/// `simlint --fix`.
#[derive(Debug, Clone)]
pub struct Fix {
    pub edits: Vec<Edit>,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub lint: Lint,
    pub severity: Severity,
    /// Path relative to the workspace root.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// The full source line, for the rustc-style snippet.
    pub snippet: String,
    /// A mechanical rewrite, when one exists (`--fix`).
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// Renders the diagnostic in rustc style:
    ///
    /// ```text
    /// error[simlint::hash-order]: `HashMap` iteration order is nondeterministic
    ///   --> crates/sim/src/engine.rs:177:22
    ///    |
    /// 177|     let mut faulted: HashMap<RequestId, TapeId> = HashMap::new();
    ///    |
    ///    = help: use BTreeMap/BTreeSet (...)
    /// ```
    pub fn render(&self) -> String {
        let line_no = self.line.to_string();
        let gutter = " ".repeat(line_no.len());
        format!(
            "{}[simlint::{}]: {}\n  --> {}:{}:{}\n  {}|\n  {}| {}\n  {}|\n  {}= help: {}\n",
            self.severity.label(),
            self.lint,
            self.message,
            self.file,
            self.line,
            self.col,
            gutter,
            line_no,
            self.snippet.trim_end(),
            gutter,
            gutter,
            self.lint.help(),
        )
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The JSON report schema version. History: 1 = the original report
/// (`"version"` key, no fix information); 2 = renamed the key to
/// `schema_version`, added per-violation `"fixable"`.
pub const SCHEMA_VERSION: u32 = 2;

/// Serializes a full run to the machine-readable JSON report.
pub fn to_json(diags: &[Diagnostic], files_scanned: usize, root: &Path) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!(
        "  \"root\": \"{}\",\n",
        json_escape(&root.display().to_string())
    ));
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    out.push_str(&format!(
        "  \"summary\": {{ \"violations\": {}, \"errors\": {}, \"warnings\": {} }},\n",
        diags.len(),
        errors,
        diags.len() - errors
    ));
    out.push_str("  \"violations\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"lint\": \"{}\", \"family\": \"{}\", \"severity\": \"{}\", \
             \"file\": \"{}\", \"line\": {}, \"col\": {}, \"fixable\": {}, \
             \"message\": \"{}\" }}{}\n",
            d.lint,
            d.lint.family(),
            d.severity.label(),
            json_escape(&d.file),
            d.line,
            d.col,
            d.fix.is_some(),
            json_escape(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample() -> Diagnostic {
        Diagnostic {
            lint: Lint::HashOrder,
            severity: Severity::Error,
            file: "crates/sim/src/engine.rs".into(),
            line: 177,
            col: 22,
            message: "`HashMap` iteration order is nondeterministic".into(),
            snippet: "    let mut faulted: HashMap<RequestId, TapeId> = HashMap::new();".into(),
            fix: None,
        }
    }

    #[test]
    fn render_is_rustc_style() {
        let r = sample().render();
        assert!(r.starts_with("error[simlint::hash-order]:"));
        assert!(r.contains("--> crates/sim/src/engine.rs:177:22"));
        assert!(r.contains("177|"));
        assert!(r.contains("= help:"));
    }

    #[test]
    fn json_report_shape() {
        let json = to_json(&[sample()], 42, &PathBuf::from("/w"));
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"files_scanned\": 42"));
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"lint\": \"hash-order\""));
        assert!(json.contains("\"family\": \"determinism\""));
        assert!(json.contains("\"fixable\": false"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn lint_ids_round_trip() {
        for l in Lint::ALL {
            assert_eq!(Lint::from_id(l.id()), Some(l));
        }
        assert_eq!(Lint::from_id("nope"), None);
    }
}
