//! A minimal Rust lexer, sufficient for token-level and tree-level lint
//! analysis.
//!
//! The container this project builds in has no access to crates.io, so
//! `simlint` cannot use `syn`; instead it tokenizes source text itself.
//! The lexer understands everything needed to avoid false positives from
//! non-code text: line/block comments (nested), string literals (plain,
//! raw, byte, C), char and byte-char literals vs. lifetimes, and numeric
//! literals. Every token carries its byte span so the `--fix` rewriter
//! can splice replacements back into the original source; the parser
//! (`parse`) builds its item/expression tree on top of this stream.

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `as`, `fn`, ...).
    Ident(String),
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    /// A numeric literal, with its exact source text (`1e6`, `0x1F`, ...).
    Number(String),
    /// A string, byte-string, raw-string, char, or byte-char literal
    /// (content dropped).
    StrLit,
    /// A single punctuation character (`.`, `[`, `!`, ...).
    Punct(char),
}

/// One token with its source position (1-based line and column) and its
/// byte span in the original source (`lo..hi`).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
    /// Byte offset of the token's first byte.
    pub lo: usize,
    /// Byte offset one past the token's last byte.
    pub hi: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// True if this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// A `// simlint: allow(...)`-bearing comment, or any plain comment line
/// (recorded so annotation lookup can skip over interleaved comments).
#[derive(Debug, Clone)]
pub struct CommentLine {
    pub line: u32,
    /// Trimmed comment text without the leading `//`.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<CommentLine>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`, returning the token stream and the comment lines.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek() {
        let (line, col, lo) = (cur.line, cur.col, cur.pos);
        let mut push = |kind: TokenKind, cur: &Cursor<'_>| {
            out.tokens.push(Token {
                kind,
                line,
                col,
                lo,
                hi: cur.pos,
            });
        };
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                // Line comment (includes doc comments); capture its text.
                let start = cur.pos;
                while cur.peek().is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                let text = src[start..cur.pos].trim_start_matches('/');
                out.comments.push(CommentLine {
                    line,
                    text: text.trim().to_string(),
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                // Block comment, possibly nested.
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                lex_string(&mut cur);
                push(TokenKind::StrLit, &cur);
            }
            b'b' if cur.peek_at(1) == Some(b'\'') => {
                // Byte-char literal `b'x'` / `b'\xff'` — one token, not an
                // ident `b` followed by a char literal.
                cur.bump();
                lex_char(&mut cur);
                push(TokenKind::StrLit, &cur);
            }
            b'r' | b'b' | b'c' if starts_prefixed_string(&cur) => {
                lex_prefixed_string(&mut cur);
                push(TokenKind::StrLit, &cur);
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) or char literal (`'x'`, `'\n'`).
                if is_char_literal(&cur) {
                    lex_char(&mut cur);
                    push(TokenKind::StrLit, &cur);
                } else {
                    cur.bump();
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    push(TokenKind::Lifetime, &cur);
                }
            }
            b if b.is_ascii_digit() => {
                let start = cur.pos;
                lex_number(&mut cur);
                push(TokenKind::Number(src[start..cur.pos].to_string()), &cur);
            }
            b if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                push(TokenKind::Ident(src[start..cur.pos].to_string()), &cur);
            }
            _ => {
                cur.bump();
                push(TokenKind::Punct(b as char), &cur);
            }
        }
    }
    out
}

/// True if the cursor sits on a prefixed string start: `r"`, `r#"`, `b"`,
/// `br"`, `c"`, etc. (and not on an identifier like `result`).
fn starts_prefixed_string(cur: &Cursor<'_>) -> bool {
    let mut off = 0;
    // Up to two prefix letters (`br`, `cr`...).
    while off < 2 {
        match cur.peek_at(off) {
            Some(b'r' | b'b' | b'c') => off += 1,
            _ => break,
        }
    }
    if off == 0 {
        return false;
    }
    // Then optional `#`s (raw strings) and a quote.
    let mut k = off;
    while cur.peek_at(k) == Some(b'#') {
        k += 1;
    }
    cur.peek_at(k) == Some(b'"') && (k > off || cur.peek_at(off) == Some(b'"'))
}

fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.peek() {
        match b {
            b'\\' => {
                cur.bump();
                cur.bump();
            }
            b'"' => {
                cur.bump();
                return;
            }
            _ => {
                cur.bump();
            }
        }
    }
}

fn lex_prefixed_string(cur: &mut Cursor<'_>) {
    // Consume prefix letters, remembering whether the literal is raw:
    // raw strings (`r"..."`, `br#"..."#`) process no escapes at all, so a
    // backslash before the closing quote must not swallow it. (Treating
    // zero-hash raw strings as escaped used to mislex `r"a\"` and
    // silently skip every token to the next quote.)
    let mut raw = false;
    while let Some(b) = cur.peek() {
        match b {
            b'r' => {
                raw = true;
                cur.bump();
            }
            b'b' | b'c' => {
                cur.bump();
            }
            _ => break,
        }
    }
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    if raw {
        // Raw string: scan to `"` followed by exactly `hashes` `#`s; no
        // escape processing (zero hashes close at the first quote).
        while let Some(b) = cur.bump() {
            if b == b'"' {
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some(b'#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
        }
    } else {
        // Non-raw prefixed string (`b"..."`, `c"..."`): escapes apply.
        while let Some(b) = cur.peek() {
            match b {
                b'\\' => {
                    cur.bump();
                    cur.bump();
                }
                b'"' => {
                    cur.bump();
                    return;
                }
                _ => {
                    cur.bump();
                }
            }
        }
    }
}

/// Distinguishes `'x'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(cur: &Cursor<'_>) -> bool {
    match cur.peek_at(1) {
        Some(b'\\') => true,
        Some(c) if is_ident_start(c) => cur.peek_at(2) == Some(b'\''),
        Some(_) => true, // e.g. '(' or '0' — always a char literal
        None => false,
    }
}

fn lex_char(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    if cur.peek() == Some(b'\\') {
        cur.bump();
        cur.bump();
    } else {
        cur.bump();
    }
    // Consume up to the closing quote (unicode escapes span several bytes).
    while cur.peek().is_some_and(|b| b != b'\'') {
        cur.bump();
    }
    cur.bump();
}

fn lex_number(cur: &mut Cursor<'_>) {
    // Integer part, including radix prefixes and `_` separators.
    while cur
        .peek()
        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
    {
        cur.bump();
    }
    // Fractional part: a dot followed by a digit (not a method call `.fn`
    // and not a range `..`).
    if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        cur.bump();
        while cur
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            cur.bump();
        }
    }
    // Exponent sign (`1e-6`): the alnum loop above stops at `-`.
    if cur.peek() == Some(b'-') || cur.peek() == Some(b'+') {
        let prev = cur.src[cur.pos - 1];
        if prev == b'e' || prev == b'E' {
            cur.bump();
            while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                cur.bump();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn skips_comments_and_strings() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap in a string";
            let r = r#"raw HashMap"#;
            let c = 'H';
        "##;
        assert!(!idents(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn finds_code_identifiers() {
        let src = "use std::collections::HashMap;\nlet m: HashMap<u8, u8>;";
        assert_eq!(idents(src).iter().filter(|s| *s == "HashMap").count(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::StrLit)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn numbers_keep_their_text() {
        let lexed = lex("let x = 1e6 + 1_000_000.0 * 0xFF - 2.5e-3;");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Number(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["1e6", "1_000_000.0", "0xFF", "2.5e-3"]);
    }

    #[test]
    fn comment_text_is_captured_with_line_numbers() {
        let lexed = lex("let a = 1;\n// simlint: allow(panic, reason)\nlet b = 2;");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.starts_with("simlint:"));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn byte_spans_slice_back_to_the_source() {
        let src = "let delay_micros = stop.free_at + 10;";
        for t in lex(src).tokens {
            let text = &src[t.lo..t.hi];
            match &t.kind {
                TokenKind::Ident(s) => assert_eq!(text, s),
                TokenKind::Number(s) => assert_eq!(text, s),
                TokenKind::Punct(c) => assert_eq!(text, c.to_string()),
                _ => {}
            }
        }
    }

    // -- Regression tests: lexer gaps that used to skip or mislex tokens --

    #[test]
    fn regression_nested_block_comments_terminate_correctly() {
        // The token after a nested comment must survive; an unbalanced
        // close must not swallow it.
        let lexed = lex("/* a /* b /* c */ */ */ after");
        assert_eq!(idents("/* a /* b /* c */ */ */ after"), vec!["after"]);
        assert_eq!(lexed.tokens.len(), 1);
        // `/*/` does not close the comment it opens.
        assert_eq!(idents("/*/ still a comment */ after"), vec!["after"]);
        // Unterminated nesting consumes to EOF without panicking.
        assert!(idents("/* open /* deeper */ still open").is_empty());
    }

    #[test]
    fn regression_zero_hash_raw_string_has_no_escapes() {
        // `r"a\"` is a complete raw string (`a\`): the backslash is a
        // literal byte, not an escape. The old escape-processing path
        // swallowed the closing quote and silently skipped every token
        // up to the next `"` in the file.
        let src = "let x = r\"a\\\"; let y = 2;";
        let ids = idents(src);
        assert!(
            ids.contains(&"y".to_string()),
            "tokens after the raw string were skipped: {ids:?}"
        );
        // Same for raw byte strings.
        let src = "let x = br\"a\\\"; let z = 3;";
        assert!(idents(src).contains(&"z".to_string()));
    }

    #[test]
    fn regression_hashed_raw_strings_close_on_exact_hash_count() {
        let src = "let r = r##\"quote \"# inside\"##; next";
        let ids = idents(src);
        assert!(ids.contains(&"next".to_string()), "{ids:?}");
        assert!(!ids.contains(&"inside".to_string()), "{ids:?}");
    }

    #[test]
    fn regression_byte_string_and_byte_char_literals() {
        // Byte strings honor escapes; a `\"` does not close them.
        let ids = idents("let b = b\"x\\\"y\"; tail");
        assert!(ids.contains(&"tail".to_string()), "{ids:?}");
        // Byte-char literals are one StrLit token, not a stray `b` ident
        // (which used to leak into identifier-based lint matching).
        let lexed = lex("let c = b'\\xff'; done");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("b")));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::StrLit)
                .count(),
            1
        );
        assert!(lexed.tokens.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn regression_c_string_literals() {
        let ids = idents("let c = c\"null\\\"ok\"; end");
        assert!(ids.contains(&"end".to_string()), "{ids:?}");
    }
}
