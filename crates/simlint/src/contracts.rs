//! The ordering-totality (`order-totality`) and parallel-determinism
//! (`par-contract`) passes.
//!
//! Ordering totality guards the PR 7 determinism contract: every
//! comparator feeding a sort, min/max, or priority queue must be a total
//! order (NaN-safe, `total_cmp` or integer keys) and sorts must be
//! stable, because tie order is observable in the golden traces.
//!
//! The parallel contract pins where concurrency is allowed to live:
//! primitives only in `par.rs` (reasoned allows elsewhere), no
//! shared-mutable state captured by worker closures, and no
//! arrival-order channel drains anywhere.

use crate::diag::{Edit, Fix, Lint};
use crate::lexer::{Token, TokenKind};
use crate::lints::Emitter;
use crate::parse::{Expr, File};
use crate::resolve::Imports;
use crate::scan::FileCtx;

/// Concurrency primitives banned outside `par.rs`.
fn is_par_primitive(name: &str) -> bool {
    matches!(
        name,
        "Mutex" | "RwLock" | "Condvar" | "Barrier" | "OnceLock" | "LazyLock" | "mpsc"
    ) || name.starts_with("Atomic")
        || matches!(name, "rayon" | "crossbeam")
}

/// Shared-mutable cell types that must not be captured by (or built
/// inside) a worker closure: they make the closure's effects depend on
/// scheduling order.
fn is_shared_mutable(name: &str) -> bool {
    matches!(name, "Rc" | "RefCell" | "Cell" | "UnsafeCell")
}

/// Channel drains whose yield order is arrival order (scheduling-
/// dependent) rather than a deterministic count or key.
fn is_arrival_order_drain(name: &str) -> bool {
    matches!(name, "try_iter" | "try_recv" | "recv_timeout")
}

/// Runs both passes over one file.
pub fn check(em: &mut Emitter<'_>, file: &File, toks: &[Token], ctx: &FileCtx) {
    if em.in_scope(Lint::OrderTotality) {
        order_totality(em, file, toks);
    }
    if em.in_scope(Lint::ParContract) {
        par_contract(em, file, toks, ctx);
    }
}

// ------------------------------------------------------------- ordering

fn order_totality(em: &mut Emitter<'_>, file: &File, toks: &[Token]) {
    file.for_each_fn(&mut |fd| {
        let Some(body) = &fd.body else { return };
        body.for_each_expr(&mut |e| {
            let Expr::Method(m) = e else { return };
            // `x.partial_cmp(y).unwrap()` / `.expect(..)`: panics on NaN
            // and hides the partiality the contract bans.
            if matches!(m.name.as_str(), "unwrap" | "expect") {
                if let Expr::Method(pm) = &m.recv {
                    if pm.name == "partial_cmp" {
                        let fix = Fix {
                            edits: vec![
                                Edit {
                                    lo: pm.name_span.lo,
                                    hi: pm.name_span.hi,
                                    text: "total_cmp".to_string(),
                                },
                                Edit {
                                    lo: m.dot_lo,
                                    hi: m.call_hi,
                                    text: String::new(),
                                },
                            ],
                        };
                        em.emit(
                            Lint::OrderTotality,
                            pm.name_span.line,
                            pm.name_span.col,
                            format!(
                                "`partial_cmp().{}()` is not a total order \
                                 (panics or lies on NaN); use `total_cmp`",
                                m.name
                            ),
                            Some(fix),
                        );
                    }
                }
            }
            // Unstable sorts with custom comparators/keys: tie order is
            // observable in the traces, so stability is required.
            if matches!(m.name.as_str(), "sort_unstable_by" | "sort_unstable_by_key") {
                let stable = if m.name == "sort_unstable_by" {
                    "sort_by"
                } else {
                    "sort_by_key"
                };
                let fix = Fix {
                    edits: vec![Edit {
                        lo: m.name_span.lo,
                        hi: m.name_span.hi,
                        text: stable.to_string(),
                    }],
                };
                em.emit(
                    Lint::OrderTotality,
                    m.name_span.line,
                    m.name_span.col,
                    format!(
                        "`{}` forfeits stable tie order under a custom \
                         comparator; use `{stable}`",
                        m.name
                    ),
                    Some(fix),
                );
            }
            // Float sort/min/max keys: `f64` keys are not a total order.
            if matches!(
                m.name.as_str(),
                "sort_by_key" | "sort_unstable_by_key" | "min_by_key" | "max_by_key"
            ) {
                if let Some(Expr::Closure(c)) = m.args.first() {
                    if let Some(why) = float_evidence(&c.body) {
                        em.emit(
                            Lint::OrderTotality,
                            m.name_span.line,
                            m.name_span.col,
                            format!(
                                "float key in `{}` ({why}) is not a total \
                                 order; use an integer key like `(at, seq)` \
                                 or sort with `total_cmp`",
                                m.name
                            ),
                            None,
                        );
                    }
                }
            }
        });
    });

    // `BinaryHeap<f64...>`: float priorities break `Ord`-based heaps.
    for i in 0..toks.len() {
        if !toks[i].is_ident("BinaryHeap") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            continue;
        }
        let mut depth = 0i32;
        let mut k = i + 1;
        while let Some(t) = toks.get(k) {
            match &t.kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth <= 0 {
                        break;
                    }
                }
                TokenKind::Ident(name) if matches!(name.as_str(), "f64" | "f32") => {
                    em.emit(
                        Lint::OrderTotality,
                        toks[i].line,
                        toks[i].col,
                        format!("`BinaryHeap` keyed by `{name}` is not a total order"),
                        None,
                    );
                    break;
                }
                _ => {}
            }
            k += 1;
        }
    }
}

/// If the closure body computes a float, says how (for the message).
fn float_evidence(body: &Expr) -> Option<&'static str> {
    let mut why = None;
    body.for_each(&mut |e| {
        if why.is_some() {
            return;
        }
        match e {
            Expr::Cast(_, ty, _) if matches!(ty.as_str(), "f32" | "f64") => {
                why = Some("cast to float");
            }
            Expr::Num(text, _) if is_float_literal(text) => {
                why = Some("float literal");
            }
            Expr::Method(m) if matches!(m.name.as_str(), "as_secs_f64" | "as_secs_f32") => {
                why = Some("float conversion");
            }
            _ => {}
        }
    });
    why
}

fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    text.contains('.')
        || text.contains('e')
        || text.contains('E')
        || text.ends_with("f64")
        || text.ends_with("f32")
}

// ------------------------------------------------------------- parallel

fn par_contract(em: &mut Emitter<'_>, file: &File, toks: &[Token], ctx: &FileCtx) {
    let in_par_module = ctx
        .rel
        .rsplit('/')
        .next()
        .is_some_and(|base| base == "par.rs");

    if !in_par_module {
        // Primitive scan: concurrency machinery lives in `par.rs` only.
        for i in 0..toks.len() {
            let Some(name) = toks[i].ident() else {
                continue;
            };
            if is_par_primitive(name) {
                em.emit(
                    Lint::ParContract,
                    toks[i].line,
                    toks[i].col,
                    format!(
                        "concurrency primitive `{name}` outside `par.rs` — \
                         the parallel core owns all thread machinery"
                    ),
                    None,
                );
            } else if name == "thread"
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                em.emit(
                    Lint::ParContract,
                    toks[i].line,
                    toks[i].col,
                    "`thread::` use outside `par.rs` — the parallel core \
                     owns all thread machinery"
                        .to_string(),
                    None,
                );
            }
        }
        // Import aliases: `use std::sync::Mutex as Lock` must not smuggle
        // a primitive past the ident scan.
        let imports = Imports::build(file);
        for u in &file.uses {
            if u.path.last().is_some_and(|s| u.alias != *s)
                && imports.resolves_to(&u.alias, is_par_primitive)
            {
                let real = u.path.last().map(String::as_str).unwrap_or("");
                em.emit(
                    Lint::ParContract,
                    u.span.line,
                    u.span.col,
                    format!(
                        "import aliases concurrency primitive `{real}` as \
                         `{}` outside `par.rs`",
                        u.alias
                    ),
                    None,
                );
            }
        }
    }

    // Worker-closure captures and arrival-order drains apply everywhere,
    // including `par.rs` itself.
    file.for_each_fn(&mut |fd| {
        let Some(body) = &fd.body else { return };
        body.for_each_expr(&mut |e| {
            let (is_spawn, args) = match e {
                Expr::Method(m) if m.name == "spawn" => (true, &m.args),
                Expr::Call(c, args, _) => match c.as_ref() {
                    Expr::Path(segs, _) if segs.last().is_some_and(|s| s == "spawn") => {
                        (true, args)
                    }
                    _ => (false, args),
                },
                _ => return,
            };
            if !is_spawn {
                return;
            }
            for a in args {
                let Expr::Closure(c) = a else { continue };
                c.body.for_each(&mut |inner| {
                    if let Expr::Path(segs, span) = inner {
                        if let Some(seg) = segs.iter().find(|s| is_shared_mutable(s)) {
                            em.emit(
                                Lint::ParContract,
                                span.line,
                                span.col,
                                format!(
                                    "shared-mutable `{seg}` inside a worker \
                                     closure makes results depend on \
                                     scheduling order"
                                ),
                                None,
                            );
                        }
                    }
                });
            }
        });
    });

    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if is_arrival_order_drain(name)
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            em.emit(
                Lint::ParContract,
                toks[i].line,
                toks[i].col,
                format!(
                    "`.{name}()` drains in arrival order (scheduling-\
                     dependent); drain by counted `recv()` loop and commit \
                     in key order"
                ),
                None,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::diag::Lint;
    use crate::lints::check_file;
    use crate::scan::FileCtx;

    fn lint_at(path: &str, src: &str, lint: Lint) -> Vec<String> {
        let ctx = FileCtx::classify(path);
        check_file(&ctx, src)
            .into_iter()
            .filter(|d| d.lint == lint)
            .map(|d| d.message)
            .collect()
    }

    fn order(src: &str) -> Vec<String> {
        lint_at("crates/sim/src/engine.rs", src, Lint::OrderTotality)
    }

    fn par(src: &str) -> Vec<String> {
        lint_at("crates/sim/src/engine.rs", src, Lint::ParContract)
    }

    #[test]
    fn partial_cmp_unwrap_flagged_with_fix() {
        let ctx = FileCtx::classify("crates/sim/src/engine.rs");
        let d: Vec<_> = check_file(
            &ctx,
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
        )
        .into_iter()
        .filter(|d| d.lint == Lint::OrderTotality)
        .collect();
        assert_eq!(d.len(), 1);
        assert!(d[0].fix.is_some(), "fix expected");
    }

    #[test]
    fn total_cmp_is_silent() {
        let d = order("fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn partial_cmp_definition_is_silent() {
        // Implementing `PartialOrd` mentions partial_cmp without calling
        // `.unwrap()` on it — must not fire.
        let d = order(
            "impl PartialOrd for S {\n\
             fn partial_cmp(&self, o: &S) -> Option<Ordering> { Some(self.cmp(o)) }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn sort_unstable_with_comparator_flagged() {
        let d = order("fn f(v: &mut Vec<u64>) { v.sort_unstable_by(|a, b| b.cmp(a)); }\n");
        assert_eq!(d.len(), 1);
        // Plain sort_unstable on Ord is total and injective-agnostic.
        let d = order("fn f(v: &mut Vec<u64>) { v.sort_unstable(); }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn float_sort_key_flagged() {
        let d = order("fn f(v: &mut Vec<u64>) { v.sort_by_key(|x| *x as f64); }\n");
        assert_eq!(d.len(), 1);
        // Integer keys are fine.
        let d = order("fn f(v: &mut Vec<(u64, u64)>) { v.sort_by_key(|x| (x.0, x.1)); }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn binary_heap_of_floats_flagged() {
        let d = order("fn f() { let h: BinaryHeap<(f64, u64)> = BinaryHeap::new(); }\n");
        assert_eq!(d.len(), 1);
        let d = order("fn f() { let h: BinaryHeap<(u64, u64)> = BinaryHeap::new(); }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn primitives_flagged_outside_par_module() {
        let d = par("use std::sync::Mutex;\n");
        assert_eq!(d.len(), 1);
        let d = par("fn f() { let h = std::thread::spawn(|| {}); }\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn par_module_is_exempt_from_primitive_scan() {
        let d = lint_at(
            "crates/sim/src/par.rs",
            "use std::sync::mpsc;\nfn f() { let (tx, rx) = mpsc::channel::<u32>(); }\n",
            Lint::ParContract,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn aliased_primitive_is_caught() {
        let d = par("use std::sync::Mutex as Lock;\n");
        // The direct ident scan sees `Mutex`, and the alias check sees
        // the smuggled name.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|m| m.contains("aliases")));
    }

    #[test]
    fn shared_mutable_capture_in_spawn_flagged_even_in_par_module() {
        let d = lint_at(
            "crates/sim/src/par.rs",
            "fn f(s: &Scope) { s.spawn(move || { let c = RefCell::new(0); c }); }\n",
            Lint::ParContract,
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn arrival_order_drain_flagged_everywhere() {
        let d = lint_at(
            "crates/sim/src/par.rs",
            "fn f(rx: &Receiver<u32>) { for r in rx.try_iter() { use_it(r); } }\n",
            Lint::ParContract,
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn counted_recv_loop_is_silent() {
        let d = lint_at(
            "crates/sim/src/par.rs",
            "fn f(rx: &Receiver<u32>, n: usize) -> Vec<u32> {\n\
             (0..n).map(|_| rx.recv().unwrap_or_default()).collect()\n}\n",
            Lint::ParContract,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_annotation_suppresses_par_contract() {
        let d = par(
            "// simlint: allow(par-contract, per-seed fork-join with deterministic join order)\n\
             fn f() { std::thread::scope(|s| { s; }); }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
