//! The unit-dataflow pass (`unit-flow`): propagates unit kinds through
//! `let` bindings and arithmetic inside each function body, flagging
//! mixed-unit `+`/`-`/comparisons, bindings whose name contradicts their
//! initializer, and dataflow-only unit values leaking into raw casts.
//!
//! Like every tree pass, this under-approximates: a kind is tracked only
//! when the evidence is unambiguous (see `resolve::unit_of_name`), `*`
//! and `/` erase kinds (they legitimately convert), and unknown kinds
//! never conflict with anything.

use std::collections::BTreeMap;

use crate::diag::Lint;
use crate::lints::Emitter;
use crate::parse::{BinOp, Block, Expr, File, FnDef, Item, Stmt};
use crate::resolve::{is_numeric_prim, unit_of_method, unit_of_name, UnitKind};

/// How a binding's kind became known: spelled in its own name, or only
/// through dataflow. The distinction keeps the cast-leak check disjoint
/// from the token-level `unit-cast` lint (which already fires on
/// unit-named operands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prov {
    Name,
    Flow,
}

type Env = BTreeMap<String, (UnitKind, Prov)>;

/// Runs the pass over every function in the file.
pub fn check(em: &mut Emitter<'_>, file: &File) {
    if !em.in_scope(Lint::UnitFlow) {
        return;
    }
    file.for_each_fn(&mut |fd| check_fn(em, fd));
}

fn check_fn(em: &mut Emitter<'_>, fd: &FnDef) {
    let mut env = Env::new();
    for p in &fd.params {
        // Only raw numeric parameters can silently carry a unit; newtype
        // parameters are already policed by the type system.
        if is_numeric_prim(&p.ty) {
            if let Some(k) = unit_of_name(&p.name) {
                env.insert(p.name.clone(), (k, Prov::Name));
            }
        }
    }
    if let Some(body) = &fd.body {
        walk_block(em, body, &mut env);
    }
}

fn walk_block(em: &mut Emitter<'_>, block: &Block, env: &mut Env) {
    // Blocks get a scope copy so inner shadowing cannot leak out.
    let mut scope = env.clone();
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    walk_expr(em, init, &mut scope);
                }
                if let Some(eb) = &l.else_block {
                    walk_block(em, eb, &mut scope);
                }
                bind_let(em, l, &mut scope);
            }
            Stmt::Expr(e) => walk_expr(em, e, &mut scope),
            Stmt::Item(Item::Fn(fd)) => check_fn(em, fd),
            Stmt::Item(_) => {}
        }
    }
}

fn bind_let(em: &mut Emitter<'_>, l: &crate::parse::LetStmt, env: &mut Env) {
    if l.name.is_empty() {
        return;
    }
    // A type annotation that is not a raw numeric primitive means a
    // newtype carries the unit; stop tracking under this name.
    if l.ty.as_deref().is_some_and(|t| !is_numeric_prim(t)) {
        env.remove(&l.name);
        return;
    }
    let name_kind = unit_of_name(&l.name);
    let init_kind = l.init.as_ref().and_then(|e| infer(e, env));
    if let (Some(nk), Some(ik)) = (name_kind, init_kind) {
        if nk != ik {
            em.emit(
                Lint::UnitFlow,
                l.span.line,
                l.span.col,
                format!(
                    "binding `{}` is named in {} but its initializer carries {}",
                    l.name, nk.scale, ik.scale
                ),
                None,
            );
        }
    }
    match (name_kind, init_kind) {
        (Some(k), _) => {
            env.insert(l.name.clone(), (k, Prov::Name));
        }
        (None, Some(k)) => {
            env.insert(l.name.clone(), (k, Prov::Flow));
        }
        (None, None) => {
            // Shadowing with an unknown kind forgets the old binding.
            env.remove(&l.name);
        }
    }
}

/// Recursive expression walk: reports mixed-unit arithmetic and dataflow
/// cast leaks, then recurses into every child.
fn walk_expr(em: &mut Emitter<'_>, e: &Expr, env: &mut Env) {
    match e {
        Expr::Binary(op, l, r, span) => {
            walk_expr(em, l, env);
            walk_expr(em, r, env);
            if op.is_unit_sensitive() {
                if let (Some(kl), Some(kr)) = (infer(l, env), infer(r, env)) {
                    if kl != kr {
                        let what = if matches!(op, BinOp::Add | BinOp::Sub) {
                            "arithmetic"
                        } else {
                            "comparison"
                        };
                        em.emit(
                            Lint::UnitFlow,
                            span.line,
                            span.col,
                            format!("mixed units in {what}: {} vs {}", kl.scale, kr.scale),
                            None,
                        );
                    }
                }
            }
        }
        Expr::Cast(inner, ty, span) => {
            walk_expr(em, inner, env);
            // Leak check: a bare binding whose kind is known only via
            // dataflow, cast to a raw numeric. (Unit-named operands are
            // the token-level `unit-cast` lint's territory.)
            if is_numeric_prim(ty) {
                if let Expr::Path(segs, _) = inner.as_ref() {
                    if let [name] = segs.as_slice() {
                        if let Some((k, Prov::Flow)) = env.get(name) {
                            em.emit(
                                Lint::UnitFlow,
                                span.line,
                                span.col,
                                format!(
                                    "`{name}` carries {} (via dataflow) but leaks \
                                     into a raw `as {ty}` cast",
                                    k.scale
                                ),
                                None,
                            );
                        }
                    }
                }
            }
        }
        Expr::Unary(inner, _) | Expr::Ret(Some(inner), _) => walk_expr(em, inner, env),
        Expr::Call(callee, args, _) => {
            walk_expr(em, callee, env);
            for a in args {
                walk_expr(em, a, env);
            }
        }
        Expr::Method(m) => {
            walk_expr(em, &m.recv, env);
            for a in &m.args {
                walk_expr(em, a, env);
            }
        }
        Expr::Field(inner, _, _) | Expr::Index(inner, _, _) => {
            walk_expr(em, inner, env);
            if let Expr::Index(_, idx, _) = e {
                walk_expr(em, idx, env);
            }
        }
        Expr::Closure(c) => walk_expr(em, &c.body, env),
        Expr::Blk(b) => walk_block(em, b, env),
        Expr::Ctrl(c) => {
            for ex in &c.exprs {
                walk_expr(em, ex, env);
            }
            for b in &c.blocks {
                walk_block(em, b, env);
            }
        }
        Expr::For(f) => {
            walk_expr(em, &f.iter, env);
            walk_block(em, &f.body, env);
        }
        Expr::MacroCall(_, args, _) | Expr::Tuple(args, _) | Expr::Array(args, _) => {
            for a in args {
                walk_expr(em, a, env);
            }
        }
        Expr::StructLit(_, fields, _) => {
            for f in fields {
                walk_expr(em, f, env);
            }
        }
        Expr::Path(..) | Expr::Num(..) | Expr::Str(..) | Expr::Ret(None, _) | Expr::Unknown(_) => {}
    }
}

/// Methods that return a value of the same kind as their receiver.
fn is_passthrough_method(name: &str) -> bool {
    matches!(
        name,
        "min"
            | "max"
            | "clamp"
            | "abs"
            | "floor"
            | "ceil"
            | "round"
            | "saturating_add"
            | "saturating_sub"
            | "wrapping_add"
            | "wrapping_sub"
            | "checked_add"
            | "checked_sub"
            | "unwrap_or"
            | "unwrap_or_default"
    )
}

/// Infers the unit kind of an expression, if unambiguous.
fn infer(e: &Expr, env: &Env) -> Option<UnitKind> {
    match e {
        Expr::Path(segs, _) => match segs.as_slice() {
            [name] => env
                .get(name)
                .map(|(k, _)| *k)
                .or_else(|| unit_of_name(name)),
            [.., last] => unit_of_name(last),
            [] => None,
        },
        Expr::Field(_, name, _) => unit_of_name(name),
        Expr::Method(m) => unit_of_method(&m.name).or_else(|| {
            if is_passthrough_method(&m.name) {
                infer(&m.recv, env)
            } else {
                None
            }
        }),
        Expr::Call(callee, _, _) => match callee.as_ref() {
            Expr::Path(segs, _) => segs.last().and_then(|s| unit_of_name(s)),
            _ => None,
        },
        Expr::Cast(inner, _, _) | Expr::Unary(inner, _) => infer(inner, env),
        // `+`/`-` preserve the (agreeing) operand kind; `*`//` convert.
        Expr::Binary(BinOp::Add | BinOp::Sub, l, r, _) => {
            let kl = infer(l, env);
            let kr = infer(r, env);
            match (kl, kr) {
                (Some(a), Some(b)) if a == b => Some(a),
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use crate::lints::check_file;
    use crate::scan::FileCtx;

    fn lint_lib(src: &str) -> Vec<&'static str> {
        let ctx = FileCtx::classify("crates/sim/src/engine.rs");
        check_file(&ctx, src)
            .into_iter()
            .map(|d| d.lint.id())
            .collect()
    }

    fn unit_flow_count(src: &str) -> usize {
        lint_lib(src)
            .iter()
            .filter(|id| **id == "unit-flow")
            .count()
    }

    #[test]
    fn mixed_unit_addition_flagged() {
        let src = "fn f(now_us: u64, len_mb: u64) -> u64 { now_us + len_mb }\n";
        assert_eq!(unit_flow_count(src), 1);
    }

    #[test]
    fn mixed_scale_comparison_flagged() {
        let src = "fn f(t_us: u64, limit_ms: u64) -> bool { t_us < limit_ms }\n";
        assert_eq!(unit_flow_count(src), 1);
    }

    #[test]
    fn same_unit_arithmetic_silent() {
        let src = "fn f(a_us: u64, b_us: u64) -> u64 { a_us + b_us }\n";
        assert_eq!(unit_flow_count(src), 0);
    }

    #[test]
    fn conversion_via_mul_div_is_silent() {
        // `*`//` legitimately change scale: no kind survives them.
        let src = "fn f(t_us: u64) -> u64 { let t_ms = t_us / 1000; t_ms + 1 }\n";
        assert_eq!(unit_flow_count(src), 0);
    }

    #[test]
    fn mismatch_propagates_through_binding() {
        let src = "fn f(now_us: u64, pos_mb: u64) -> u64 {\n\
                   let deadline = now_us;\n\
                   deadline + pos_mb\n}\n";
        assert_eq!(unit_flow_count(src), 1);
    }

    #[test]
    fn binding_name_contradicting_initializer_flagged() {
        let src = "fn f(start_us: u64) -> u64 { let elapsed_secs = start_us; elapsed_secs }\n";
        assert_eq!(unit_flow_count(src), 1);
    }

    #[test]
    fn flow_only_cast_leak_flagged() {
        // `d`'s kind is invisible in its name — only dataflow knows — so
        // the token-level unit-cast lint cannot see this leak.
        let src = "fn f(dur_us: u64) -> f64 { let d = dur_us; d as f64 }\n";
        assert_eq!(unit_flow_count(src), 1);
    }

    #[test]
    fn named_cast_is_left_to_token_lint() {
        // `dur_micros as f64` is the old lint's finding; unit-flow must
        // not double-report it.
        let src = "fn f(dur_micros: u64) -> f64 { dur_micros as f64 }\n";
        assert_eq!(unit_flow_count(src), 0);
        assert!(lint_lib(src).contains(&"unit-cast"));
    }

    #[test]
    fn rates_never_conflict() {
        let src = "fn f(mb_per_sec: f64, t: f64) -> f64 { mb_per_sec + t }\n";
        assert_eq!(unit_flow_count(src), 0);
    }

    #[test]
    fn newtype_bindings_are_not_tracked() {
        let src = "fn f(t_us: u64) -> bool { let m: Micros = convert(t_us); m > other() }\n";
        assert_eq!(unit_flow_count(src), 0);
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = "fn f(now_us: u64, len_mb: u64) -> u64 {\n\
                   // simlint: allow(unit-flow, proven same scale upstream)\n\
                   now_us + len_mb\n}\n";
        assert_eq!(unit_flow_count(src), 0);
    }

    #[test]
    fn out_of_scope_crates_are_silent() {
        let ctx = FileCtx::classify("crates/simlint/src/foo.rs");
        let n = check_file(&ctx, "fn f(a_us: u64, b_mb: u64) -> u64 { a_us + b_mb }\n")
            .into_iter()
            .filter(|d| d.lint.id() == "unit-flow")
            .count();
        assert_eq!(n, 0);
    }
}
