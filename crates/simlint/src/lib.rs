//! `simlint` — workspace-local static analysis for the tape-jukebox
//! reproduction.
//!
//! Six lint families protect the properties the experiment pipeline
//! depends on (see README "Static analysis" for the catalog and the
//! allow-annotation grammar):
//!
//! - **determinism** (`hash-order`, `wall-clock`, `ambient-rng`) — the
//!   golden-trace and differential suites assume bit-for-bit identical
//!   reruns, so hash-iteration order, wall-clock reads, and OS-seeded
//!   RNGs are forbidden in result-affecting code;
//! - **unit safety** (`unit-cast`, `unit-const`) — the §2.1 positioning
//!   model mixes seconds, megabytes, and slot positions; conversions must
//!   go through the `model` units layer, not raw `as` casts or inline
//!   constants;
//! - **panic hygiene** (`panic`) — library code propagates typed errors
//!   or documents its invariants; it does not abort;
//! - **unit dataflow** (`unit-flow`) — unit kinds inferred from binding
//!   names and `Duration` accessors are propagated through `let` chains
//!   and arithmetic; mixing dimensions under `+`/`-`/comparison, or
//!   casting a tracked quantity to a bare numeric, is flagged even when
//!   no unit word appears at the use site;
//! - **ordering totality** (`order-totality`) — float comparators must be
//!   total (`total_cmp`, not `partial_cmp().unwrap()`), sort keys must
//!   not be floats, `BinaryHeap` must not order floats, and custom
//!   comparators must use stable sorts;
//! - **parallel-determinism contract** (`par-contract`) — concurrency
//!   primitives live in `par.rs` (reasoned allows elsewhere), worker
//!   closures must not capture `Rc`/`RefCell`-style shared-mutable state,
//!   and arrival-order channel drains (`try_recv`, `try_iter`,
//!   `recv_timeout`) are banned everywhere.
//!
//! The container this repository builds in has no crates.io access, so
//! the pass is dependency-free: a hand-rolled lexer (`lexer`) feeds both
//! token-level checks (`lints`) and a tolerant recursive-descent parser
//! (`parse`) whose item/expression tree drives name resolution
//! (`resolve`), the intraprocedural unit-dataflow walk (`dataflow`), and
//! the contract passes (`contracts`). Mechanically safe rewrites attach
//! to diagnostics and are applied by `--fix` (`fixes`).

#![forbid(unsafe_code)]

pub mod contracts;
pub mod dataflow;
pub mod diag;
pub mod fixes;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod resolve;
pub mod scan;

use std::fs;
use std::io;
use std::path::Path;

use diag::Diagnostic;
use scan::FileCtx;

/// Lints every source file in the workspace rooted at `root`. Returns
/// the diagnostics (sorted by file, then line) and the number of files
/// scanned.
pub fn run_workspace(root: &Path) -> io::Result<(Vec<Diagnostic>, usize)> {
    let files = scan::collect_files(root)?;
    let mut diags = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        let ctx = FileCtx::classify(&rel);
        diags.extend(lints::check_file(&ctx, &src));
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok((diags, files.len()))
}
