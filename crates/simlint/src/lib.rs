//! `simlint` — workspace-local static analysis for the tape-jukebox
//! reproduction.
//!
//! Three lint families protect the properties the experiment pipeline
//! depends on (see README "Static analysis" for the catalog and the
//! allow-annotation grammar):
//!
//! - **determinism** (`hash-order`, `wall-clock`, `ambient-rng`) — the
//!   golden-trace and differential suites assume bit-for-bit identical
//!   reruns, so hash-iteration order, wall-clock reads, and OS-seeded
//!   RNGs are forbidden in result-affecting code;
//! - **unit safety** (`unit-cast`, `unit-const`) — the §2.1 positioning
//!   model mixes seconds, megabytes, and slot positions; conversions must
//!   go through the `model` units layer, not raw `as` casts or inline
//!   constants;
//! - **panic hygiene** (`panic`) — library code propagates typed errors
//!   or documents its invariants; it does not abort.
//!
//! The container this repository builds in has no crates.io access, so
//! the pass is dependency-free: a hand-rolled lexer (`lexer`) feeds
//! token-level checks (`lints`) — the same analyses a `syn` AST walk
//! would do for these patterns, without the parse tree.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod lints;
pub mod scan;

use std::fs;
use std::io;
use std::path::Path;

use diag::Diagnostic;
use scan::FileCtx;

/// Lints every source file in the workspace rooted at `root`. Returns
/// the diagnostics (sorted by file, then line) and the number of files
/// scanned.
pub fn run_workspace(root: &Path) -> io::Result<(Vec<Diagnostic>, usize)> {
    let files = scan::collect_files(root)?;
    let mut diags = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        let ctx = FileCtx::classify(&rel);
        diags.extend(lints::check_file(&ctx, &src));
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok((diags, files.len()))
}
