//! A tolerant recursive-descent parser over the `lexer` token stream.
//!
//! The goal is *under-approximation*: build an item/expression tree that
//! is right whenever it claims anything, and degrade to [`Expr::Unknown`]
//! wherever the grammar gets exotic. Lints that walk this tree then err
//! on the side of silence rather than false positives. The parser is
//! total: every path consumes at least one token, and a global fuel
//! counter bounds the walk even on adversarial input.
//!
//! Multi-character operators (`==`, `..`, `=>`, `->`) do not exist at the
//! token level — the lexer emits single-character puncts — so the parser
//! reassembles them via *gluedness*: two adjacent tokens form one operator
//! iff the first ends exactly where the second begins (`tok.hi == next.lo`).

use crate::lexer::Token;

/// A source span: 1-based line/col of the first token plus the byte range
/// `lo..hi` covering the whole node (used by `--fix` to splice rewrites).
#[derive(Debug, Clone, Copy, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
    pub lo: usize,
    pub hi: usize,
}

/// One flattened `use` import: `alias` is the name visible in the file,
/// `path` the full segment list (`use std::sync::Mutex as M` gives
/// alias `M`, path `["std", "sync", "Mutex"]`).
#[derive(Debug, Clone)]
pub struct UseImport {
    pub alias: String,
    pub path: Vec<String>,
    pub span: Span,
}

/// A top-level or nested item. Only the shapes the lints care about are
/// modeled; everything else is `Other`.
#[derive(Debug)]
pub enum Item {
    Fn(FnDef),
    /// Inline `mod name { ... }` with its nested items.
    Mod(String, Vec<Item>),
    /// `impl`/`trait` body members (the contained `fn`s).
    Members(Vec<Item>),
    Other,
}

/// A function definition (or trait-method declaration, with `body: None`).
#[derive(Debug)]
pub struct FnDef {
    pub name: String,
    pub params: Vec<Param>,
    pub body: Option<Block>,
    pub span: Span,
}

/// One function parameter: the binding name (first identifier of the
/// pattern) and the exact source text of its type.
#[derive(Debug)]
pub struct Param {
    pub name: String,
    pub ty: String,
}

#[derive(Debug)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub span: Span,
}

#[derive(Debug)]
pub enum Stmt {
    Let(LetStmt),
    Expr(Expr),
    Item(Item),
}

/// `let [mut] name[: ty] = init [else { .. }];` — `name` is empty when the
/// pattern is not a simple identifier (tuple/struct patterns).
#[derive(Debug)]
pub struct LetStmt {
    pub name: String,
    /// Exact source text of the annotated type, if any.
    pub ty: Option<String>,
    pub init: Option<Expr>,
    pub else_block: Option<Block>,
    pub span: Span,
}

/// Binary operators the dataflow pass distinguishes. Compound assignment
/// is folded onto its base operator with `assign: true` in [`Expr::Binary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    /// Plain `=` assignment.
    Assign,
    /// `..` / `..=` range.
    Range,
}

impl BinOp {
    /// True for `+`/`-` and the six comparisons — the operators where
    /// mixing unit kinds is meaningful and checkable.
    pub fn is_unit_sensitive(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Sub
                | BinOp::Lt
                | BinOp::Gt
                | BinOp::Le
                | BinOp::Ge
                | BinOp::EqEq
                | BinOp::Ne
        )
    }
}

/// A method call with the spans `--fix` needs: `dot_lo..call_hi` covers
/// `.name(args)` so a trailing `.unwrap()` can be deleted, and
/// `name_span` covers just the method name so it can be renamed.
#[derive(Debug)]
pub struct MethodCall {
    pub recv: Expr,
    pub name: String,
    pub args: Vec<Expr>,
    pub name_span: Span,
    /// Byte offset of the `.` introducing this call.
    pub dot_lo: usize,
    /// Byte offset one past the closing `)`.
    pub call_hi: usize,
    pub span: Span,
}

#[derive(Debug)]
pub struct ClosureDef {
    pub is_move: bool,
    /// Parameter binding names (first identifier of each pattern).
    pub params: Vec<String>,
    pub body: Expr,
    pub span: Span,
}

/// `if`/`while`/`match`/`loop`/`unsafe` — conditions, scrutinees, and
/// non-block match-arm bodies in `exprs`; all attached blocks in `blocks`.
#[derive(Debug)]
pub struct CtrlExpr {
    pub exprs: Vec<Expr>,
    pub blocks: Vec<Block>,
    pub span: Span,
}

/// `for pat in iter { body }` — kept distinct from [`CtrlExpr`] so the
/// parallel-contract pass can inspect commit-side iteration sources.
#[derive(Debug)]
pub struct ForExpr {
    /// Exact source text of the loop pattern.
    pub pat: String,
    pub iter: Expr,
    pub body: Block,
    pub span: Span,
}

#[derive(Debug)]
pub enum Expr {
    /// A (possibly qualified) path: `x`, `Foo::Bar`, `self.len` is *not*
    /// a path (that is `Field`).
    Path(Vec<String>, Span),
    /// Numeric literal with its exact text.
    Num(String, Span),
    /// Any string/char literal.
    Str(Span),
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
    /// Prefix `-`/`!`/`&`/`*` or a rhs-only range; operand retained.
    Unary(Box<Expr>, Span),
    Call(Box<Expr>, Vec<Expr>, Span),
    Method(Box<MethodCall>),
    Field(Box<Expr>, String, Span),
    Index(Box<Expr>, Box<Expr>, Span),
    /// `expr as Ty`, with the exact type text.
    Cast(Box<Expr>, String, Span),
    Closure(Box<ClosureDef>),
    Blk(Box<Block>),
    Ctrl(Box<CtrlExpr>),
    For(Box<ForExpr>),
    /// `name!(args)` — args parsed tolerantly as expressions.
    MacroCall(String, Vec<Expr>, Span),
    Tuple(Vec<Expr>, Span),
    Array(Vec<Expr>, Span),
    /// `Path { field: expr, .. }` — the path and the field-value exprs.
    StructLit(Vec<String>, Vec<Expr>, Span),
    /// `return`/`break` with optional value.
    Ret(Option<Box<Expr>>, Span),
    /// Anything the parser declined to understand; spans one+ tokens.
    Unknown(Span),
}

impl Expr {
    pub fn span(&self) -> Span {
        match self {
            Expr::Path(_, s)
            | Expr::Num(_, s)
            | Expr::Str(s)
            | Expr::Binary(_, _, _, s)
            | Expr::Unary(_, s)
            | Expr::Call(_, _, s)
            | Expr::Field(_, _, s)
            | Expr::Index(_, _, s)
            | Expr::Cast(_, _, s)
            | Expr::MacroCall(_, _, s)
            | Expr::Tuple(_, s)
            | Expr::Array(_, s)
            | Expr::StructLit(_, _, s)
            | Expr::Ret(_, s)
            | Expr::Unknown(s) => *s,
            Expr::Method(m) => m.span,
            Expr::Closure(c) => c.span,
            Expr::Blk(b) => b.span,
            Expr::Ctrl(c) => c.span,
            Expr::For(f) => f.span,
        }
    }
}

/// The parse result for one file.
#[derive(Debug, Default)]
pub struct File {
    pub items: Vec<Item>,
    pub uses: Vec<UseImport>,
}

impl File {
    /// Depth-first visit of every function definition in the file.
    pub fn for_each_fn(&self, f: &mut dyn FnMut(&FnDef)) {
        fn walk(items: &[Item], f: &mut dyn FnMut(&FnDef)) {
            for it in items {
                match it {
                    Item::Fn(fd) => f(fd),
                    Item::Mod(_, inner) | Item::Members(inner) => walk(inner, f),
                    Item::Other => {}
                }
            }
        }
        walk(&self.items, f);
    }
}

impl Block {
    /// Depth-first visit of every expression in this block (including
    /// nested blocks, closures, and control-flow bodies).
    pub fn for_each_expr(&self, f: &mut dyn FnMut(&Expr)) {
        for stmt in &self.stmts {
            match stmt {
                Stmt::Let(l) => {
                    if let Some(init) = &l.init {
                        init.for_each(f);
                    }
                    if let Some(eb) = &l.else_block {
                        eb.for_each_expr(f);
                    }
                }
                Stmt::Expr(e) => e.for_each(f),
                Stmt::Item(Item::Fn(fd)) => {
                    if let Some(b) = &fd.body {
                        b.for_each_expr(f);
                    }
                }
                Stmt::Item(_) => {}
            }
        }
    }
}

impl Expr {
    /// Depth-first visit of this expression and every sub-expression.
    pub fn for_each(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Binary(_, l, r, _) => {
                l.for_each(f);
                r.for_each(f);
            }
            Expr::Unary(e, _) | Expr::Cast(e, _, _) | Expr::Field(e, _, _) => e.for_each(f),
            Expr::Index(e, i, _) => {
                e.for_each(f);
                i.for_each(f);
            }
            Expr::Call(c, args, _) => {
                c.for_each(f);
                for a in args {
                    a.for_each(f);
                }
            }
            Expr::Method(m) => {
                m.recv.for_each(f);
                for a in &m.args {
                    a.for_each(f);
                }
            }
            Expr::Closure(c) => c.body.for_each(f),
            Expr::Blk(b) => b.for_each_expr(f),
            Expr::Ctrl(c) => {
                for e in &c.exprs {
                    e.for_each(f);
                }
                for b in &c.blocks {
                    b.for_each_expr(f);
                }
            }
            Expr::For(fl) => {
                fl.iter.for_each(f);
                fl.body.for_each_expr(f);
            }
            Expr::MacroCall(_, args, _) | Expr::Tuple(args, _) | Expr::Array(args, _) => {
                for a in args {
                    a.for_each(f);
                }
            }
            Expr::StructLit(_, fields, _) => {
                for fe in fields {
                    fe.for_each(f);
                }
            }
            Expr::Ret(Some(e), _) => e.for_each(f),
            Expr::Ret(None, _)
            | Expr::Path(..)
            | Expr::Num(..)
            | Expr::Str(..)
            | Expr::Unknown(_) => {}
        }
    }
}

/// Identifiers that cannot begin a path expression.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "match"
            | "for"
            | "loop"
            | "unsafe"
            | "async"
            | "return"
            | "break"
            | "continue"
            | "move"
            | "let"
            | "else"
            | "as"
            | "in"
            | "where"
    )
}

fn is_item_keyword(s: &str) -> bool {
    matches!(
        s,
        "fn" | "struct"
            | "enum"
            | "union"
            | "use"
            | "impl"
            | "trait"
            | "mod"
            | "const"
            | "static"
            | "type"
            | "extern"
            | "macro_rules"
    )
}

struct Parser<'a> {
    src: &'a str,
    toks: &'a [Token],
    pos: usize,
    fuel: usize,
}

/// Parses a lexed file into its item tree.
pub fn parse(src: &str, toks: &[Token]) -> File {
    let mut p = Parser {
        src,
        toks,
        pos: 0,
        // Generous bound: normal parsing touches each token a small
        // constant number of times. Exhaustion aborts to end-of-input.
        fuel: toks.len().saturating_mul(32).saturating_add(64),
    };
    let mut file = File::default();
    p.parse_items(None, &mut file);
    file
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.toks.get(self.pos + off)
    }

    fn bump(&mut self) {
        if self.fuel == 0 {
            self.pos = self.toks.len();
            return;
        }
        self.fuel -= 1;
        if self.pos < self.toks.len() {
            self.pos += 1;
        }
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek().is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(s))
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// True if token `i` ends exactly where token `i+1` begins — i.e. the
    /// two source characters are adjacent and form one operator.
    fn glued(&self, i: usize) -> bool {
        match (self.toks.get(i), self.toks.get(i + 1)) {
            (Some(a), Some(b)) => a.hi == b.lo,
            _ => false,
        }
    }

    /// Punct char of token `pos + off`, if it is a punct.
    fn punct_at(&self, off: usize) -> Option<char> {
        match self.peek_at(off)?.kind {
            crate::lexer::TokenKind::Punct(c) => Some(c),
            _ => None,
        }
    }

    /// Span of the single token at index `i`.
    fn tok_span(&self, i: usize) -> Span {
        match self.toks.get(i) {
            Some(t) => Span {
                line: t.line,
                col: t.col,
                lo: t.lo,
                hi: t.hi,
            },
            None => Span::default(),
        }
    }

    /// Span from token index `start` through the last consumed token.
    fn span_from(&self, start: usize) -> Span {
        let s = self.tok_span(start);
        let end = if self.pos > start {
            self.pos - 1
        } else {
            start
        };
        let hi = self.toks.get(end).map_or(s.hi, |t| t.hi);
        Span { hi, ..s }
    }

    /// Exact source text of tokens `start..end` (token indices).
    fn text(&self, start: usize, end: usize) -> String {
        match (
            self.toks.get(start),
            end.checked_sub(1).and_then(|e| self.toks.get(e)),
        ) {
            (Some(a), Some(b)) if b.hi >= a.lo => {
                self.src.get(a.lo..b.hi).unwrap_or("").to_string()
            }
            _ => String::new(),
        }
    }

    // ---------------------------------------------------------------- items

    /// Parses items until EOF (`end == None`) or a closing `}`.
    fn parse_items(&mut self, end: Option<char>, file: &mut File) -> Vec<Item> {
        let mut items = Vec::new();
        while let Some(t) = self.peek() {
            if let Some(c) = end {
                if t.is_punct(c) {
                    self.bump();
                    break;
                }
            }
            if self.at_punct('#') {
                self.skip_attr();
                continue;
            }
            if self.at_ident("pub") {
                self.bump();
                if self.at_punct('(') {
                    self.skip_balanced('(', ')');
                }
                continue;
            }
            // `unsafe fn` / `async fn` / `const fn` / `extern "C" fn`.
            if (self.at_ident("unsafe") || self.at_ident("async"))
                && self.peek_at(1).is_some_and(|t| t.is_ident("fn"))
            {
                self.bump();
                continue;
            }
            if self.at_ident("const") && self.peek_at(1).is_some_and(|t| t.is_ident("fn")) {
                self.bump();
                continue;
            }
            match self.peek().and_then(|t| t.ident()) {
                Some("fn") => {
                    let fd = self.parse_fn(file);
                    items.push(Item::Fn(fd));
                }
                Some("use") => {
                    self.parse_use(file);
                }
                Some("mod") => {
                    self.bump();
                    let name = self
                        .peek()
                        .and_then(|t| t.ident())
                        .unwrap_or("")
                        .to_string();
                    self.bump();
                    if self.eat_punct('{') {
                        let inner = self.parse_items(Some('}'), file);
                        items.push(Item::Mod(name, inner));
                    } else {
                        self.eat_punct(';');
                    }
                }
                Some("impl") | Some("trait") => {
                    self.bump();
                    self.skip_to_body_brace();
                    if self.eat_punct('{') {
                        let members = self.parse_items(Some('}'), file);
                        items.push(Item::Members(members));
                    }
                }
                Some("struct") | Some("enum") | Some("union") => {
                    self.skip_item_decl();
                    items.push(Item::Other);
                }
                Some("const") | Some("static") | Some("type") => {
                    self.skip_to_semi();
                    items.push(Item::Other);
                }
                Some("extern") => {
                    // `extern crate x;` or `extern "C" { ... }`.
                    self.bump();
                    while let Some(t) = self.peek() {
                        if t.is_punct(';') {
                            self.bump();
                            break;
                        }
                        if t.is_punct('{') {
                            self.skip_balanced('{', '}');
                            break;
                        }
                        self.bump();
                    }
                    items.push(Item::Other);
                }
                Some("macro_rules") => {
                    self.bump(); // macro_rules
                    self.eat_punct('!');
                    self.bump(); // name
                    if self.at_punct('{') {
                        self.skip_balanced('{', '}');
                    }
                    items.push(Item::Other);
                }
                _ => {
                    self.bump();
                }
            }
        }
        if end.is_none() {
            file.items = std::mem::take(&mut items);
            Vec::new()
        } else {
            items
        }
    }

    /// Skips `#[...]` / `#![...]`.
    fn skip_attr(&mut self) {
        self.bump(); // '#'
        self.eat_punct('!');
        if self.at_punct('[') {
            self.skip_balanced('[', ']');
        }
    }

    /// Skips a balanced `open...close` region, starting at `open`.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0u32;
        while let Some(t) = self.peek() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skips tokens to just past the next `;` at bracket depth 0.
    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if let crate::lexer::TokenKind::Punct(c) = t.kind {
                match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    ';' if depth == 0 => {
                        self.bump();
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Skips a struct/enum/union declaration: to `;` or through its `{}`.
    fn skip_item_decl(&mut self) {
        while let Some(t) = self.peek() {
            if t.is_punct(';') {
                self.bump();
                return;
            }
            if t.is_punct('{') {
                self.skip_balanced('{', '}');
                return;
            }
            if t.is_punct('(') {
                // Tuple struct: `struct Foo(u32);`
                self.skip_balanced('(', ')');
                continue;
            }
            self.bump();
        }
    }

    /// Advances to the `{` opening an impl/trait body (angle-aware so
    /// `impl Iterator<Item = Foo>` does not confuse it), without eating it.
    fn skip_to_body_brace(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t.kind {
                crate::lexer::TokenKind::Punct('<') => angle += 1,
                crate::lexer::TokenKind::Punct('>') => angle -= 1,
                crate::lexer::TokenKind::Punct('-')
                    if self.glued(self.pos) && self.punct_at(1) == Some('>') =>
                {
                    self.bump(); // `-`; the `>` is consumed below
                }
                crate::lexer::TokenKind::Punct('{') if angle <= 0 => return,
                crate::lexer::TokenKind::Punct(';') if angle <= 0 => return,
                _ => {}
            }
            self.bump();
        }
    }

    /// Parses a `use` declaration into flattened imports.
    fn parse_use(&mut self, file: &mut File) {
        let start = self.pos;
        self.bump(); // use
        let mut prefix = Vec::new();
        self.parse_use_tree(&mut prefix, file, start);
        // Whatever remains of the declaration.
        if !self.at_punct(';') {
            self.skip_to_semi();
        } else {
            self.bump();
        }
    }

    fn parse_use_tree(&mut self, prefix: &mut Vec<String>, file: &mut File, start: usize) {
        let depth_at_entry = prefix.len();
        loop {
            match self.peek() {
                Some(t) if t.ident().is_some() => {
                    let seg = t.ident().unwrap_or("").to_string();
                    self.bump();
                    if seg == "self" && prefix.len() > depth_at_entry {
                        // `{self, ...}` — imports the prefix itself.
                    } else {
                        prefix.push(seg);
                    }
                    if self.at_punct(':') && self.punct_at(1) == Some(':') {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    // End of one leaf path, possibly with `as alias`.
                    let mut alias = prefix.last().cloned().unwrap_or_default();
                    if self.eat_ident("as") {
                        alias = self
                            .peek()
                            .and_then(|t| t.ident())
                            .unwrap_or("")
                            .to_string();
                        self.bump();
                    }
                    file.uses.push(UseImport {
                        alias,
                        path: prefix.clone(),
                        span: self.span_from(start),
                    });
                    prefix.truncate(depth_at_entry);
                    if !self.eat_punct(',') {
                        return;
                    }
                }
                Some(t) if t.is_punct('{') => {
                    self.bump();
                    loop {
                        if self.eat_punct('}') {
                            break;
                        }
                        let before = self.pos;
                        self.parse_use_tree(prefix, file, start);
                        self.eat_punct(',');
                        if self.pos == before {
                            self.bump();
                        }
                        if self.peek().is_none() {
                            break;
                        }
                    }
                    prefix.truncate(depth_at_entry);
                    if !self.eat_punct(',') {
                        return;
                    }
                }
                Some(t) if t.is_punct('*') => {
                    self.bump();
                    prefix.truncate(depth_at_entry);
                    if !self.eat_punct(',') {
                        return;
                    }
                }
                _ => return,
            }
        }
    }

    // ------------------------------------------------------------ functions

    fn parse_fn(&mut self, file: &mut File) -> FnDef {
        let start = self.pos;
        self.bump(); // fn
        let name = self
            .peek()
            .and_then(|t| t.ident())
            .unwrap_or("")
            .to_string();
        self.bump();
        if self.at_punct('<') {
            self.skip_angles();
        }
        let mut params = Vec::new();
        if self.at_punct('(') {
            params = self.parse_params();
        }
        // Return type and where clause: skip to the body `{` or `;`.
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t.kind {
                crate::lexer::TokenKind::Punct('<') => angle += 1,
                crate::lexer::TokenKind::Punct('>') => angle -= 1,
                crate::lexer::TokenKind::Punct('-')
                    if self.glued(self.pos) && self.punct_at(1) == Some('>') =>
                {
                    self.bump();
                }
                crate::lexer::TokenKind::Punct('(') => {
                    self.skip_balanced('(', ')');
                    continue;
                }
                crate::lexer::TokenKind::Punct('[') => {
                    self.skip_balanced('[', ']');
                    continue;
                }
                crate::lexer::TokenKind::Punct('{') if angle <= 0 => break,
                crate::lexer::TokenKind::Punct(';') if angle <= 0 => break,
                _ => {}
            }
            self.bump();
        }
        let body = if self.at_punct('{') {
            Some(self.parse_block(file))
        } else {
            self.eat_punct(';');
            None
        };
        FnDef {
            name,
            params,
            body,
            span: self.span_from(start),
        }
    }

    /// Parses `( pat: Ty, ... )`, returning (name, type-text) pairs.
    fn parse_params(&mut self) -> Vec<Param> {
        let mut params = Vec::new();
        self.bump(); // '('
        loop {
            if self.eat_punct(')') || self.peek().is_none() {
                break;
            }
            if self.at_punct('#') {
                self.skip_attr();
                continue;
            }
            // One parameter: pattern tokens to `:` at depth 0, then type
            // tokens to `,`/`)` at depth 0.
            let mut name = String::new();
            let mut depth = 0i32;
            let mut saw_colon = false;
            while let Some(t) = self.peek() {
                match &t.kind {
                    crate::lexer::TokenKind::Punct(c) => match c {
                        '(' | '[' | '{' | '<' => depth += 1,
                        ')' if depth == 0 => break,
                        ')' | ']' | '}' | '>' => depth -= 1,
                        ',' if depth == 0 => break,
                        ':' if depth == 0 && !self.glued(self.pos) => {
                            saw_colon = true;
                            self.bump();
                            break;
                        }
                        _ => {}
                    },
                    crate::lexer::TokenKind::Ident(s)
                        if name.is_empty() && s != "mut" && s != "ref" =>
                    {
                        name = s.clone();
                    }
                    _ => {}
                }
                self.bump();
            }
            let ty_start = self.pos;
            if saw_colon {
                let mut depth = 0i32;
                while let Some(t) = self.peek() {
                    if let crate::lexer::TokenKind::Punct(c) = t.kind {
                        match c {
                            '(' | '[' | '{' | '<' => depth += 1,
                            ')' if depth == 0 => break,
                            ')' | ']' | '}' => depth -= 1,
                            '>' => {
                                // `->` inside `fn(..) -> T` types keeps depth.
                                depth -= 1;
                            }
                            ',' if depth == 0 => break,
                            '-' if self.glued(self.pos) && self.punct_at(1) == Some('>') => {
                                self.bump();
                                depth += 1; // cancel the `>` decrement below
                            }
                            _ => {}
                        }
                    }
                    self.bump();
                }
            }
            let ty = self.text(ty_start, self.pos);
            if !name.is_empty() || !ty.is_empty() {
                params.push(Param { name, ty });
            }
            self.eat_punct(',');
        }
        params
    }

    /// Skips a balanced `<...>` generic region starting at `<`.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t.kind {
                crate::lexer::TokenKind::Punct('<') => depth += 1,
                crate::lexer::TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        return;
                    }
                }
                crate::lexer::TokenKind::Punct('-')
                    if self.glued(self.pos) && self.punct_at(1) == Some('>') =>
                {
                    // `->` inside a fn-pointer type: skip both halves.
                    self.bump();
                }
                crate::lexer::TokenKind::Punct('(') => {
                    self.skip_balanced('(', ')');
                    continue;
                }
                crate::lexer::TokenKind::Punct('{') => {
                    self.skip_balanced('{', '}');
                    continue;
                }
                _ => {}
            }
            self.bump();
        }
    }

    // --------------------------------------------------------------- blocks

    fn parse_block(&mut self, file: &mut File) -> Block {
        let start = self.pos;
        self.bump(); // '{'
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct('}') => {
                    self.bump();
                    break;
                }
                Some(t) if t.is_punct(';') => {
                    self.bump();
                }
                Some(t) if t.is_punct('#') => self.skip_attr(),
                Some(t) if t.is_ident("pub") => {
                    self.bump();
                    if self.at_punct('(') {
                        self.skip_balanced('(', ')');
                    }
                }
                Some(t) if t.is_ident("let") => {
                    stmts.push(Stmt::Let(self.parse_let(file)));
                }
                Some(t) if t.is_ident("fn") => {
                    let fd = self.parse_fn(file);
                    stmts.push(Stmt::Item(Item::Fn(fd)));
                }
                Some(t)
                    if t.ident().is_some_and(is_item_keyword)
                        // `const` could be `const { .. }` block or item.
                        && !(t.is_ident("const")
                            && self.peek_at(1).is_some_and(|n| n.is_punct('{'))) =>
                {
                    let before = self.pos;
                    match t.ident() {
                        Some("use") => self.parse_use(file),
                        Some("impl") | Some("trait") => {
                            self.bump();
                            self.skip_to_body_brace();
                            if self.eat_punct('{') {
                                let members = self.parse_items(Some('}'), file);
                                stmts.push(Stmt::Item(Item::Members(members)));
                            }
                        }
                        Some("struct") | Some("enum") | Some("union") => self.skip_item_decl(),
                        Some("mod") => {
                            self.bump();
                            self.bump(); // name
                            if self.eat_punct('{') {
                                let inner = self.parse_items(Some('}'), file);
                                stmts.push(Stmt::Item(Item::Mod(String::new(), inner)));
                            } else {
                                self.eat_punct(';');
                            }
                        }
                        _ => self.skip_to_semi(),
                    }
                    if self.pos == before {
                        self.bump();
                    }
                }
                Some(_) => {
                    let e = self.parse_expr(0, true, file);
                    stmts.push(Stmt::Expr(e));
                    self.eat_punct(';');
                }
            }
        }
        Block {
            stmts,
            span: self.span_from(start),
        }
    }

    fn parse_let(&mut self, file: &mut File) -> LetStmt {
        let start = self.pos;
        self.bump(); // let
        self.eat_ident("mut");
        // Simple-identifier pattern?
        let mut name = String::new();
        if let Some(t) = self.peek() {
            if let Some(id) = t.ident() {
                let next_is_simple = matches!(self.punct_at(1), Some(':' | '=' | ';') | None);
                if !is_expr_keyword(id) && next_is_simple {
                    name = id.to_string();
                    self.bump();
                }
            }
        }
        if name.is_empty() {
            // Complex pattern: skip to `:`/`=`/`;` at depth 0.
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                if let crate::lexer::TokenKind::Punct(c) = t.kind {
                    match c {
                        '(' | '[' | '{' | '<' => depth += 1,
                        ')' | ']' | '}' | '>' => depth -= 1,
                        ':' | '=' | ';' if depth == 0 => break,
                        _ => {}
                    }
                }
                self.bump();
            }
        }
        let mut ty = None;
        if self.at_punct(':') {
            self.bump();
            let ty_start = self.pos;
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                if let crate::lexer::TokenKind::Punct(c) = t.kind {
                    match c {
                        '<' | '(' | '[' => depth += 1,
                        '>' | ')' | ']' => depth -= 1,
                        '=' | ';' if depth == 0 => break,
                        _ => {}
                    }
                }
                self.bump();
            }
            ty = Some(self.text(ty_start, self.pos));
        }
        let mut init = None;
        if self.at_punct('=') && !(self.glued(self.pos) && self.punct_at(1) == Some('=')) {
            self.bump();
            init = Some(self.parse_expr(0, true, file));
        }
        let mut else_block = None;
        if self.at_ident("else") {
            self.bump();
            if self.at_punct('{') {
                else_block = Some(self.parse_block(file));
            }
        }
        self.eat_punct(';');
        LetStmt {
            name,
            ty,
            init,
            else_block,
            span: self.span_from(start),
        }
    }

    // ---------------------------------------------------------- expressions

    /// Pratt-parses an expression. `allow_struct` gates `Path { ... }`
    /// struct literals (false inside `if`/`while`/`match`/`for` heads).
    fn parse_expr(&mut self, min_bp: u8, allow_struct: bool, file: &mut File) -> Expr {
        let start = self.pos;
        let lhs = self.parse_prefix(allow_struct, file);
        let mut lhs = self.parse_postfix(lhs, file);
        loop {
            // `as Ty` casts bind tighter than every binary operator but
            // looser than unary prefix (`*x as f64` is `(*x) as f64`).
            if self.at_ident("as") && min_bp <= 50 {
                self.bump();
                let ty = self.parse_cast_ty();
                let hi = self
                    .pos
                    .checked_sub(1)
                    .map_or(lhs.span().hi, |i| self.tok_span(i).hi);
                let span = Span { hi, ..lhs.span() };
                lhs = Expr::Cast(Box::new(lhs), ty, span);
                continue;
            }
            let Some((op, bp, len)) = self.peek_binop() else {
                break;
            };
            if bp < min_bp {
                break;
            }
            for _ in 0..len {
                self.bump();
            }
            // Range with no rhs (`idx..`): stop if nothing can follow.
            if op == BinOp::Range && self.range_rhs_absent() {
                lhs = Expr::Binary(
                    op,
                    Box::new(lhs),
                    Box::new(Expr::Unknown(self.span_from(self.pos.saturating_sub(1)))),
                    self.span_from(start),
                );
                continue;
            }
            let rhs_min = if op == BinOp::Assign { bp } else { bp + 1 };
            let rhs = self.parse_expr(rhs_min, allow_struct, file);
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), self.span_from(start));
        }
        lhs
    }

    fn range_rhs_absent(&self) -> bool {
        match self.peek() {
            None => true,
            Some(t) => matches!(
                t.kind,
                crate::lexer::TokenKind::Punct(')' | ']' | '}' | ',' | ';' | '=')
            ),
        }
    }

    /// Recognizes the binary operator at the cursor: `(op, binding-power,
    /// token-count)`. Multi-character operators require gluedness.
    fn peek_binop(&self) -> Option<(BinOp, u8, usize)> {
        let c1 = self.punct_at(0)?;
        let g1 = self.glued(self.pos);
        let c2 = if g1 { self.punct_at(1) } else { None };
        let g2 = g1 && self.glued(self.pos + 1);
        let c3 = if g2 { self.punct_at(2) } else { None };
        let r = match (c1, c2, c3) {
            ('<', Some('<'), Some('=')) => (BinOp::Shl, 6, 3),
            ('>', Some('>'), Some('=')) => (BinOp::Shr, 6, 3),
            ('.', Some('.'), Some('=')) => (BinOp::Range, 10, 3),
            ('<', Some('<'), _) => (BinOp::Shl, 38, 2),
            ('>', Some('>'), _) => (BinOp::Shr, 38, 2),
            ('.', Some('.'), _) => (BinOp::Range, 10, 2),
            ('=', Some('='), _) => (BinOp::EqEq, 22, 2),
            ('=', Some('>'), _) => return None, // match arm arrow
            ('!', Some('='), _) => (BinOp::Ne, 22, 2),
            ('<', Some('='), _) => (BinOp::Le, 22, 2),
            ('>', Some('='), _) => (BinOp::Ge, 22, 2),
            ('&', Some('&'), _) => (BinOp::AndAnd, 18, 2),
            ('|', Some('|'), _) => (BinOp::OrOr, 14, 2),
            ('+', Some('='), _) => (BinOp::Add, 6, 2),
            ('-', Some('='), _) => (BinOp::Sub, 6, 2),
            ('*', Some('='), _) => (BinOp::Mul, 6, 2),
            ('/', Some('='), _) => (BinOp::Div, 6, 2),
            ('%', Some('='), _) => (BinOp::Rem, 6, 2),
            ('&', Some('='), _) => (BinOp::BitAnd, 6, 2),
            ('|', Some('='), _) => (BinOp::BitOr, 6, 2),
            ('^', Some('='), _) => (BinOp::BitXor, 6, 2),
            ('-', Some('>'), _) => return None, // stray return arrow
            ('=', _, _) => (BinOp::Assign, 6, 1),
            ('<', _, _) => (BinOp::Lt, 22, 1),
            ('>', _, _) => (BinOp::Gt, 22, 1),
            ('+', _, _) => (BinOp::Add, 42, 1),
            ('-', _, _) => (BinOp::Sub, 42, 1),
            ('*', _, _) => (BinOp::Mul, 46, 1),
            ('/', _, _) => (BinOp::Div, 46, 1),
            ('%', _, _) => (BinOp::Rem, 46, 1),
            ('&', _, _) => (BinOp::BitAnd, 34, 1),
            ('|', _, _) => (BinOp::BitOr, 26, 1),
            ('^', _, _) => (BinOp::BitXor, 30, 1),
            _ => return None,
        };
        Some(r)
    }

    fn parse_prefix(&mut self, allow_struct: bool, file: &mut File) -> Expr {
        let start = self.pos;
        let Some(t) = self.peek() else {
            return Expr::Unknown(self.span_from(start));
        };
        match &t.kind {
            crate::lexer::TokenKind::Number(n) => {
                let n = n.clone();
                self.bump();
                Expr::Num(n, self.span_from(start))
            }
            crate::lexer::TokenKind::StrLit => {
                self.bump();
                Expr::Str(self.span_from(start))
            }
            crate::lexer::TokenKind::Lifetime => {
                // Loop label: `'a: loop { .. }` — skip label and colon.
                self.bump();
                self.eat_punct(':');
                self.parse_prefix(allow_struct, file)
            }
            crate::lexer::TokenKind::Punct(c) => {
                let c = *c;
                match c {
                    '(' => {
                        self.bump();
                        let mut elems = Vec::new();
                        let mut tuple = false;
                        loop {
                            if self.eat_punct(')') || self.peek().is_none() {
                                break;
                            }
                            elems.push(self.parse_expr(0, true, file));
                            if self.eat_punct(',') {
                                tuple = true;
                            } else if !self.at_punct(')') {
                                // Junk we cannot parse: bail to `)`.
                                self.skip_group_tail(')');
                                break;
                            }
                        }
                        let sp = self.span_from(start);
                        if !tuple && elems.len() == 1 {
                            match elems.pop() {
                                Some(e) => e,
                                None => Expr::Unknown(sp),
                            }
                        } else {
                            Expr::Tuple(elems, sp)
                        }
                    }
                    '[' => {
                        self.bump();
                        let mut elems = Vec::new();
                        loop {
                            if self.eat_punct(']') || self.peek().is_none() {
                                break;
                            }
                            elems.push(self.parse_expr(0, true, file));
                            if !self.eat_punct(',') && !self.eat_punct(';') && !self.at_punct(']') {
                                self.skip_group_tail(']');
                                break;
                            }
                        }
                        Expr::Array(elems, self.span_from(start))
                    }
                    '{' => {
                        let b = self.parse_block(file);
                        Expr::Blk(Box::new(b))
                    }
                    '&' | '*' | '-' | '!' => {
                        self.bump();
                        if c == '&' {
                            self.eat_punct('&'); // `&&x`
                            self.eat_ident("mut");
                        }
                        let inner = self.parse_expr(58, allow_struct, file);
                        Expr::Unary(Box::new(inner), self.span_from(start))
                    }
                    '|' => self.parse_closure(false, file),
                    '.' if self.glued(self.pos) && self.punct_at(1) == Some('.') => {
                        // Prefix range `..hi` / `..` / `..=hi`.
                        self.bump();
                        self.bump();
                        if self.at_punct('=') {
                            self.bump();
                        }
                        if self.range_rhs_absent() {
                            Expr::Unknown(self.span_from(start))
                        } else {
                            let inner = self.parse_expr(11, allow_struct, file);
                            Expr::Unary(Box::new(inner), self.span_from(start))
                        }
                    }
                    '#' => {
                        self.skip_attr();
                        self.parse_prefix(allow_struct, file)
                    }
                    _ => {
                        self.bump();
                        Expr::Unknown(self.span_from(start))
                    }
                }
            }
            crate::lexer::TokenKind::Ident(id) => {
                let id = id.clone();
                match id.as_str() {
                    "if" => self.parse_if(file),
                    "while" => {
                        self.bump();
                        let mut exprs = Vec::new();
                        self.parse_cond(&mut exprs, file);
                        let mut blocks = Vec::new();
                        if self.at_punct('{') {
                            blocks.push(self.parse_block(file));
                        }
                        Expr::Ctrl(Box::new(CtrlExpr {
                            exprs,
                            blocks,
                            span: self.span_from(start),
                        }))
                    }
                    "match" => self.parse_match(file),
                    "for" => self.parse_for(file),
                    "loop" | "unsafe" | "async" => {
                        self.bump();
                        self.eat_ident("move");
                        let mut blocks = Vec::new();
                        if self.at_punct('{') {
                            blocks.push(self.parse_block(file));
                        }
                        Expr::Ctrl(Box::new(CtrlExpr {
                            exprs: Vec::new(),
                            blocks,
                            span: self.span_from(start),
                        }))
                    }
                    "const" if self.peek_at(1).is_some_and(|n| n.is_punct('{')) => {
                        self.bump();
                        let b = self.parse_block(file);
                        Expr::Blk(Box::new(b))
                    }
                    "return" | "break" => {
                        self.bump();
                        let val = match self.peek() {
                            Some(t)
                                if !matches!(
                                    t.kind,
                                    crate::lexer::TokenKind::Punct(';' | '}' | ')' | ']' | ',')
                                ) =>
                            {
                                Some(Box::new(self.parse_expr(0, allow_struct, file)))
                            }
                            _ => None,
                        };
                        Expr::Ret(val, self.span_from(start))
                    }
                    "continue" => {
                        self.bump();
                        Expr::Ret(None, self.span_from(start))
                    }
                    "move" => {
                        self.bump();
                        if self.at_punct('|') {
                            self.parse_closure(true, file)
                        } else {
                            Expr::Unknown(self.span_from(start))
                        }
                    }
                    "let" => {
                        // `let pat = expr` as a condition fragment (callers
                        // use parse_cond; this is a safety net).
                        self.bump();
                        Expr::Unknown(self.span_from(start))
                    }
                    _ if is_expr_keyword(&id) => {
                        self.bump();
                        Expr::Unknown(self.span_from(start))
                    }
                    _ => self.parse_path_expr(allow_struct, file),
                }
            }
        }
    }

    /// After a failed element parse inside `(...)` / `[...]`, skips to the
    /// closing delimiter (balanced).
    fn skip_group_tail(&mut self, close: char) {
        let open = match close {
            ')' => '(',
            ']' => '[',
            _ => '{',
        };
        let mut depth = 1i32;
        while let Some(t) = self.peek() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    fn parse_if(&mut self, file: &mut File) -> Expr {
        let start = self.pos;
        self.bump(); // if
        let mut exprs = Vec::new();
        let mut blocks = Vec::new();
        self.parse_cond(&mut exprs, file);
        if self.at_punct('{') {
            blocks.push(self.parse_block(file));
        }
        while self.at_ident("else") {
            self.bump();
            if self.at_ident("if") {
                self.bump();
                self.parse_cond(&mut exprs, file);
                if self.at_punct('{') {
                    blocks.push(self.parse_block(file));
                }
            } else if self.at_punct('{') {
                blocks.push(self.parse_block(file));
                break;
            } else {
                break;
            }
        }
        Expr::Ctrl(Box::new(CtrlExpr {
            exprs,
            blocks,
            span: self.span_from(start),
        }))
    }

    /// Parses an `if`/`while` condition, handling `let`-pattern fragments
    /// and `&&` chains. Pushes each evaluated expression into `exprs`.
    fn parse_cond(&mut self, exprs: &mut Vec<Expr>, file: &mut File) {
        loop {
            if self.at_ident("let") {
                self.bump();
                // Skip the pattern to a lone `=` at depth 0.
                let mut depth = 0i32;
                while let Some(t) = self.peek() {
                    if let crate::lexer::TokenKind::Punct(c) = t.kind {
                        match c {
                            '(' | '[' | '{' | '<' => depth += 1,
                            ')' | ']' | '}' | '>' => depth -= 1,
                            '=' if depth == 0
                                && !(self.glued(self.pos)
                                    && matches!(self.punct_at(1), Some('=' | '>'))) =>
                            {
                                break;
                            }
                            _ => {}
                        }
                    }
                    self.bump();
                }
                self.eat_punct('=');
                exprs.push(self.parse_expr(19, false, file));
            } else {
                exprs.push(self.parse_expr(19, false, file));
            }
            // `&&`-chained condition fragments.
            if self.punct_at(0) == Some('&')
                && self.glued(self.pos)
                && self.punct_at(1) == Some('&')
            {
                self.bump();
                self.bump();
                continue;
            }
            return;
        }
    }

    fn parse_match(&mut self, file: &mut File) -> Expr {
        let start = self.pos;
        self.bump(); // match
        let mut exprs = vec![self.parse_expr(0, false, file)];
        let mut blocks = Vec::new();
        if self.eat_punct('{') {
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct('}') => {
                        self.bump();
                        break;
                    }
                    Some(t) if t.is_punct('#') => {
                        self.skip_attr();
                    }
                    Some(_) => {
                        // Pattern (and optional guard) to `=>` at depth 0.
                        let mut depth = 0i32;
                        while let Some(t) = self.peek() {
                            if let crate::lexer::TokenKind::Punct(c) = t.kind {
                                match c {
                                    '(' | '[' | '{' | '<' => depth += 1,
                                    ')' | ']' | '>' => depth -= 1,
                                    '}' => {
                                        if depth == 0 {
                                            break;
                                        }
                                        depth -= 1;
                                    }
                                    '=' if depth == 0
                                        && self.glued(self.pos)
                                        && self.punct_at(1) == Some('>') =>
                                    {
                                        break;
                                    }
                                    _ => {}
                                }
                            }
                            self.bump();
                        }
                        if self.at_punct('}') {
                            continue;
                        }
                        self.bump(); // `=`
                        self.bump(); // `>`
                        if self.at_punct('{') {
                            blocks.push(self.parse_block(file));
                        } else {
                            exprs.push(self.parse_expr(0, true, file));
                        }
                        self.eat_punct(',');
                    }
                }
            }
        }
        Expr::Ctrl(Box::new(CtrlExpr {
            exprs,
            blocks,
            span: self.span_from(start),
        }))
    }

    fn parse_for(&mut self, file: &mut File) -> Expr {
        let start = self.pos;
        self.bump(); // for
        let pat_start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match &t.kind {
                crate::lexer::TokenKind::Ident(s) if s == "in" && depth == 0 => break,
                crate::lexer::TokenKind::Punct(c) => match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    _ => {}
                },
                _ => {}
            }
            self.bump();
        }
        let pat = self.text(pat_start, self.pos);
        self.eat_ident("in");
        let iter = self.parse_expr(0, false, file);
        let body = if self.at_punct('{') {
            self.parse_block(file)
        } else {
            Block {
                stmts: Vec::new(),
                span: self.span_from(self.pos),
            }
        };
        Expr::For(Box::new(ForExpr {
            pat,
            iter,
            body,
            span: self.span_from(start),
        }))
    }

    fn parse_closure(&mut self, is_move: bool, file: &mut File) -> Expr {
        let start = self.pos;
        self.bump(); // first `|`
        let mut params = Vec::new();
        if !(self.at_punct('|') && {
            // `||` empty params: the second pipe is glued to the first.
            let prev = self.pos.checked_sub(1);
            prev.is_some_and(|p| self.glued(p))
        }) {
            // Parse params until the closing `|` at depth 0.
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct('|') => break,
                    Some(_) => {
                        // One pattern: first ident is the binding name.
                        let mut name = String::new();
                        let mut depth = 0i32;
                        while let Some(t) = self.peek() {
                            match &t.kind {
                                crate::lexer::TokenKind::Punct(c) => match c {
                                    '(' | '[' | '<' => depth += 1,
                                    ')' | ']' | '>' => depth -= 1,
                                    ',' if depth == 0 => break,
                                    '|' if depth == 0 => break,
                                    _ => {}
                                },
                                crate::lexer::TokenKind::Ident(s)
                                    if name.is_empty() && s != "mut" && s != "ref" =>
                                {
                                    name = s.clone();
                                }
                                _ => {}
                            }
                            self.bump();
                        }
                        if !name.is_empty() {
                            params.push(name);
                        }
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                }
            }
        }
        self.eat_punct('|');
        // Optional `-> Ty` before a brace body.
        if self.punct_at(0) == Some('-') && self.glued(self.pos) && self.punct_at(1) == Some('>') {
            self.bump();
            self.bump();
            while let Some(t) = self.peek() {
                if t.is_punct('{') {
                    break;
                }
                self.bump();
            }
        }
        let body = if self.at_punct('{') {
            Expr::Blk(Box::new(self.parse_block(file)))
        } else {
            self.parse_expr(0, true, file)
        };
        Expr::Closure(Box::new(ClosureDef {
            is_move,
            params,
            body,
            span: self.span_from(start),
        }))
    }

    /// Parses a path expression and, depending on what follows, a macro
    /// call or struct literal.
    fn parse_path_expr(&mut self, allow_struct: bool, file: &mut File) -> Expr {
        let start = self.pos;
        let mut segs = Vec::new();
        loop {
            match self.peek().and_then(|t| t.ident()) {
                Some(id) if !is_expr_keyword(id) || matches!(id, "self" | "crate") => {
                    segs.push(id.to_string());
                    self.bump();
                }
                _ => break,
            }
            if self.punct_at(0) == Some(':')
                && self.glued(self.pos)
                && self.punct_at(1) == Some(':')
            {
                self.bump();
                self.bump();
                if self.at_punct('<') {
                    // Turbofish `::<T>`.
                    self.skip_angles();
                    if !(self.punct_at(0) == Some(':')
                        && self.glued(self.pos)
                        && self.punct_at(1) == Some(':'))
                    {
                        break;
                    }
                    self.bump();
                    self.bump();
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            self.bump();
            return Expr::Unknown(self.span_from(start));
        }
        // Macro call: `name!(..)` / `name![..]` / `name!{..}`.
        if self.at_punct('!') && self.glued(self.pos) {
            let name = segs.join("::");
            self.bump(); // !
            let args = match self.punct_at(0) {
                Some('(') => self.parse_macro_args(')', file),
                Some('[') => self.parse_macro_args(']', file),
                Some('{') => {
                    self.skip_balanced('{', '}');
                    Vec::new()
                }
                _ => Vec::new(),
            };
            return Expr::MacroCall(name, args, self.span_from(start));
        }
        // Struct literal: `Path { field: .. }` (only in allow_struct
        // position, and only when it plausibly is one).
        if allow_struct && self.at_punct('{') && self.looks_like_struct_lit(&segs) {
            self.bump(); // {
            let mut fields = Vec::new();
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct('}') => {
                        self.bump();
                        break;
                    }
                    Some(t) if t.is_punct('.') => {
                        // `..base`
                        self.bump();
                        self.eat_punct('.');
                        fields.push(self.parse_expr(0, true, file));
                        self.eat_punct(',');
                    }
                    Some(_) => {
                        let fstart = self.pos;
                        self.bump(); // field name
                        if self.eat_punct(':') {
                            fields.push(self.parse_expr(0, true, file));
                        } else {
                            // Shorthand `field,`.
                            let name = self.text(fstart, self.pos);
                            fields.push(Expr::Path(vec![name], self.span_from(fstart)));
                        }
                        self.eat_punct(',');
                    }
                }
            }
            return Expr::StructLit(segs, fields, self.span_from(start));
        }
        Expr::Path(segs, self.span_from(start))
    }

    /// Heuristic filter for `Path {`: struct names are capitalized or
    /// qualified, and the body must open like a field list.
    fn looks_like_struct_lit(&self, segs: &[String]) -> bool {
        let plausible_name = segs.len() > 1
            || segs
                .last()
                .and_then(|s| s.chars().next())
                .is_some_and(|c| c.is_ascii_uppercase());
        if !plausible_name {
            return false;
        }
        // After `{`: `}`, `ident :`, `ident ,`, `ident }`, or `..`.
        match self.peek_at(1) {
            None => false,
            Some(t) if t.is_punct('}') => true,
            Some(t) if t.is_punct('.') => true,
            Some(t) if t.ident().is_some() => matches!(self.punct_at(2), Some(':' | ',' | '}')),
            _ => false,
        }
    }

    /// Parses macro arguments `(a, b, ...)` tolerantly: each element is
    /// parsed as an expression, and anything unparseable is skipped to the
    /// next comma or the closing delimiter.
    fn parse_macro_args(&mut self, close: char, file: &mut File) -> Vec<Expr> {
        self.bump(); // open delim
        let mut args = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct(close) => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    args.push(self.parse_expr(0, true, file));
                    if self.eat_punct(',') {
                        continue;
                    }
                    if self.peek().is_some_and(|t| t.is_punct(close)) {
                        continue;
                    }
                    // Unparseable tail (patterns, format specs): skip to
                    // the next comma or the close, balanced.
                    let mut depth = 0i32;
                    while let Some(t) = self.peek() {
                        if let crate::lexer::TokenKind::Punct(c) = t.kind {
                            match c {
                                '(' | '[' | '{' => depth += 1,
                                ')' | ']' | '}' => {
                                    if depth == 0 && c == close {
                                        break;
                                    }
                                    depth -= 1;
                                }
                                ',' if depth == 0 => break,
                                _ => {}
                            }
                        }
                        self.bump();
                    }
                    self.eat_punct(',');
                }
            }
        }
        args
    }

    /// Applies postfix operators: `.method(..)`, `.field`, `(..)` calls,
    /// `[..]` indexing, `?`, and `as Ty` casts.
    fn parse_postfix(&mut self, mut lhs: Expr, file: &mut File) -> Expr {
        let start_lo = lhs.span();
        loop {
            match self.peek() {
                Some(t) if t.is_punct('?') => {
                    self.bump();
                }
                Some(t) if t.is_punct('.') => {
                    // Not a range: `..` is handled by the binop loop.
                    if self.glued(self.pos) && self.punct_at(1) == Some('.') {
                        return lhs;
                    }
                    let dot_lo = t.lo;
                    self.bump();
                    match self.peek() {
                        Some(nt) if nt.ident().is_some() => {
                            let name = nt.ident().unwrap_or("").to_string();
                            let name_span = self.tok_span(self.pos);
                            self.bump();
                            // Optional turbofish before the call parens.
                            if self.punct_at(0) == Some(':')
                                && self.glued(self.pos)
                                && self.punct_at(1) == Some(':')
                            {
                                self.bump();
                                self.bump();
                                if self.at_punct('<') {
                                    self.skip_angles();
                                }
                            }
                            if self.at_punct('(') {
                                let args = self.parse_call_args(file);
                                let call_hi = self
                                    .pos
                                    .checked_sub(1)
                                    .map_or(name_span.hi, |i| self.tok_span(i).hi);
                                let span = Span {
                                    line: start_lo.line,
                                    col: start_lo.col,
                                    lo: start_lo.lo,
                                    hi: call_hi,
                                };
                                lhs = Expr::Method(Box::new(MethodCall {
                                    recv: lhs,
                                    name,
                                    args,
                                    name_span,
                                    dot_lo,
                                    call_hi,
                                    span,
                                }));
                            } else {
                                let span = Span {
                                    line: start_lo.line,
                                    col: start_lo.col,
                                    lo: start_lo.lo,
                                    hi: name_span.hi,
                                };
                                lhs = Expr::Field(Box::new(lhs), name, span);
                            }
                        }
                        Some(nt) if matches!(nt.kind, crate::lexer::TokenKind::Number(_)) => {
                            // Tuple index `.0`.
                            let name = match &nt.kind {
                                crate::lexer::TokenKind::Number(n) => n.clone(),
                                _ => String::new(),
                            };
                            let hi = nt.hi;
                            self.bump();
                            let span = Span {
                                line: start_lo.line,
                                col: start_lo.col,
                                lo: start_lo.lo,
                                hi,
                            };
                            lhs = Expr::Field(Box::new(lhs), name, span);
                        }
                        _ => return lhs,
                    }
                }
                Some(t) if t.is_punct('(') => {
                    // Only paths/fields/closures etc. are callable; this
                    // is expression position so a call is the right read.
                    let args = self.parse_call_args(file);
                    let hi = self
                        .pos
                        .checked_sub(1)
                        .map_or(start_lo.hi, |i| self.tok_span(i).hi);
                    let span = Span { hi, ..start_lo };
                    lhs = Expr::Call(Box::new(lhs), args, span);
                }
                Some(t) if t.is_punct('[') => {
                    self.bump();
                    let idx = self.parse_expr(0, true, file);
                    if !self.eat_punct(']') {
                        self.skip_group_tail(']');
                    }
                    let hi = self
                        .pos
                        .checked_sub(1)
                        .map_or(start_lo.hi, |i| self.tok_span(i).hi);
                    let span = Span { hi, ..start_lo };
                    lhs = Expr::Index(Box::new(lhs), Box::new(idx), span);
                }
                _ => return lhs,
            }
        }
    }

    /// Scans the type after `as`: path segments with optional generics,
    /// returning the exact source text.
    fn parse_cast_ty(&mut self) -> String {
        let ty_start = self.pos;
        loop {
            match self.peek() {
                Some(t) if t.ident().is_some() => {
                    self.bump();
                    if self.punct_at(0) == Some(':')
                        && self.glued(self.pos)
                        && self.punct_at(1) == Some(':')
                    {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    // Generic args only when `<` is glued to the type
                    // name (`Vec<` vs the comparison `x as u64 < y`).
                    if self.at_punct('<') && self.glued(self.pos.saturating_sub(1)) {
                        self.skip_angles();
                    }
                    break;
                }
                Some(t) if t.is_punct('&') || t.is_punct('*') => {
                    self.bump();
                }
                _ => break,
            }
        }
        self.text(ty_start, self.pos)
    }

    /// Parses `( arg, arg, ... )` starting at `(`.
    fn parse_call_args(&mut self, file: &mut File) -> Vec<Expr> {
        self.bump(); // (
        let mut args = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct(')') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    args.push(self.parse_expr(0, true, file));
                    if self.eat_punct(',') {
                        continue;
                    }
                    if self.at_punct(')') {
                        continue;
                    }
                    self.skip_group_tail(')');
                    break;
                }
            }
        }
        args
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> File {
        let lexed = lex(src);
        parse(src, &lexed.tokens)
    }

    fn only_fn(file: &File) -> &FnDef {
        let mut found = None;
        for it in &file.items {
            if let Item::Fn(fd) = it {
                assert!(found.is_none(), "more than one fn");
                found = Some(fd);
            }
        }
        match found {
            Some(fd) => fd,
            None => panic!("no fn parsed"),
        }
    }

    #[test]
    fn fn_signature_and_let_bindings() {
        let src = "fn seek(from_mb: f64, to_mb: f64) -> Micros {\n    let dist = from_mb - to_mb;\n    let t: Micros = cost(dist);\n    t\n}";
        let file = parse_src(src);
        let fd = only_fn(&file);
        assert_eq!(fd.name, "seek");
        assert_eq!(fd.params.len(), 2);
        assert_eq!(fd.params[0].name, "from_mb");
        assert_eq!(fd.params[0].ty, "f64");
        let body = fd.body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 3);
        let Stmt::Let(l) = &body.stmts[0] else {
            panic!("expected let")
        };
        assert_eq!(l.name, "dist");
        assert!(matches!(l.init, Some(Expr::Binary(BinOp::Sub, _, _, _))));
        let Stmt::Let(l2) = &body.stmts[1] else {
            panic!("expected let")
        };
        assert_eq!(l2.ty.as_deref(), Some("Micros"));
        assert!(matches!(l2.init, Some(Expr::Call(_, _, _))));
    }

    #[test]
    fn method_chain_records_fix_spans() {
        let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }";
        let file = parse_src(src);
        let fd = only_fn(&file);
        let body = fd.body.as_ref().expect("body");
        let Stmt::Expr(Expr::Method(outer)) = &body.stmts[0] else {
            panic!("expected method call")
        };
        assert_eq!(outer.name, "unwrap");
        // The fix span `.unwrap()` slices back exactly.
        assert_eq!(&src[outer.dot_lo..outer.call_hi], ".unwrap()");
        let Expr::Method(inner) = &outer.recv else {
            panic!("expected inner method")
        };
        assert_eq!(inner.name, "partial_cmp");
        assert_eq!(&src[inner.name_span.lo..inner.name_span.hi], "partial_cmp");
        assert_eq!(inner.args.len(), 1);
    }

    #[test]
    fn closure_params_and_body() {
        let src = "fn f(v: &mut Vec<u64>) { v.sort_by_key(|x| *x as f64); }";
        let file = parse_src(src);
        let fd = only_fn(&file);
        let body = fd.body.as_ref().expect("body");
        let Stmt::Expr(Expr::Method(m)) = &body.stmts[0] else {
            panic!("expected method call")
        };
        assert_eq!(m.name, "sort_by_key");
        let Some(Expr::Closure(c)) = m.args.first() else {
            panic!("expected closure arg")
        };
        assert_eq!(c.params, vec!["x".to_string()]);
        assert!(matches!(c.body, Expr::Cast(_, ref ty, _) if ty == "f64"));
    }

    #[test]
    fn if_condition_does_not_eat_block_as_struct_lit() {
        let src = "fn f(q: usize) -> bool { if q > 0 { true } else { false } }";
        let file = parse_src(src);
        let fd = only_fn(&file);
        let body = fd.body.as_ref().expect("body");
        let Stmt::Expr(Expr::Ctrl(c)) = &body.stmts[0] else {
            panic!("expected if")
        };
        assert_eq!(c.exprs.len(), 1);
        assert_eq!(c.blocks.len(), 2);
        assert!(matches!(c.exprs[0], Expr::Binary(BinOp::Gt, _, _, _)));
    }

    #[test]
    fn struct_literal_in_expr_position() {
        let src = "fn f() -> Ev { Ev { at: now_us + delay_us, seq: 0 } }";
        let file = parse_src(src);
        let fd = only_fn(&file);
        let body = fd.body.as_ref().expect("body");
        let Stmt::Expr(Expr::StructLit(path, fields, _)) = &body.stmts[0] else {
            panic!("expected struct literal")
        };
        assert_eq!(path, &vec!["Ev".to_string()]);
        assert_eq!(fields.len(), 2);
        assert!(matches!(fields[0], Expr::Binary(BinOp::Add, _, _, _)));
    }

    #[test]
    fn for_loop_iter_and_body() {
        let src = "fn f(m: &BTreeMap<u64, u64>) { for (k, v) in m.iter() { touch(k, v); } }";
        let file = parse_src(src);
        let fd = only_fn(&file);
        let body = fd.body.as_ref().expect("body");
        let Stmt::Expr(Expr::For(fl)) = &body.stmts[0] else {
            panic!("expected for loop")
        };
        assert_eq!(fl.pat, "(k, v)");
        let Expr::Method(m) = &fl.iter else {
            panic!("expected method iter")
        };
        assert_eq!(m.name, "iter");
        assert_eq!(fl.body.stmts.len(), 1);
    }

    #[test]
    fn use_tree_flattening_with_aliases() {
        let src = "use std::sync::{Mutex as Mx, mpsc};\nuse std::collections::BTreeMap;\n";
        let file = parse_src(src);
        let find = |alias: &str| {
            file.uses
                .iter()
                .find(|u| u.alias == alias)
                .map(|u| u.path.join("::"))
        };
        assert_eq!(find("Mx").as_deref(), Some("std::sync::Mutex"));
        assert_eq!(find("mpsc").as_deref(), Some("std::sync::mpsc"));
        assert_eq!(
            find("BTreeMap").as_deref(),
            Some("std::collections::BTreeMap")
        );
    }

    #[test]
    fn impl_methods_are_visited() {
        let src = "impl Drive {\n    pub fn rewind(&mut self) -> Micros { self.pos = 0; REWIND_US }\n    fn helper() {}\n}";
        let file = parse_src(src);
        let mut names = Vec::new();
        file.for_each_fn(&mut |fd| names.push(fd.name.clone()));
        assert_eq!(names, vec!["rewind".to_string(), "helper".to_string()]);
    }

    #[test]
    fn match_arms_parse_bodies() {
        let src = "fn f(x: Option<u64>) -> u64 { match x { Some(v) => v + 1, None => { 0 } } }";
        let file = parse_src(src);
        let fd = only_fn(&file);
        let body = fd.body.as_ref().expect("body");
        let Stmt::Expr(Expr::Ctrl(c)) = &body.stmts[0] else {
            panic!("expected match")
        };
        // Scrutinee + one non-block arm body.
        assert_eq!(c.exprs.len(), 2);
        assert_eq!(c.blocks.len(), 1);
    }

    #[test]
    fn tolerance_unknown_makes_progress() {
        // Deliberately weird input must terminate and produce a tree.
        let src = "fn f() { let x = @#$ ?? ::: y!{ macro junk }; x }";
        let file = parse_src(src);
        let fd = only_fn(&file);
        assert!(fd.body.is_some());
    }

    #[test]
    fn generic_fn_and_turbofish() {
        let src = "fn f<T: Ord>(v: Vec<T>) -> usize { v.iter().collect::<Vec<_>>().len() }";
        let file = parse_src(src);
        let fd = only_fn(&file);
        assert_eq!(fd.name, "f");
        assert_eq!(fd.params.len(), 1);
        assert_eq!(fd.params[0].ty, "Vec<T>");
        let body = fd.body.as_ref().expect("body");
        let Stmt::Expr(Expr::Method(m)) = &body.stmts[0] else {
            panic!("expected method chain")
        };
        assert_eq!(m.name, "len");
    }
}
